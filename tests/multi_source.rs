//! Multi-source batched BFS equivalence: the 64-wide mask-word kernel must
//! be **bit-identical** to running k independent single-source BFS
//! traversals — for every batch width, on every graph family, at every
//! thread count.
//!
//! This is the correctness backbone of the serving engine's throughput
//! lever (`Engine::bfs_batch`): the batch amortizes one graph pass over up
//! to 64 queries, and these tests pin down that the amortization is
//! invisible in the results — each query gets exactly the level vector a
//! dedicated traversal would have produced, deterministically across
//! thread counts.

use essentials::prelude::*;
use essentials_algos::bfs::bfs;
use essentials_algos::multi_source::{bfs_multi_source, MAX_BATCH};
use essentials_gen as gen;
use proptest::prelude::*;

/// Batch widths exercising both word edges (bit 0, the full word) and the
/// interior.
const WIDTHS: [usize; 4] = [1, 2, 63, 64];

/// Thread counts: sequential fallback, minimal real parallelism, and
/// oversubscribed.
const THREADS: [usize; 3] = [1, 2, 8];

/// Asserts batched == k independent runs, bit for bit, on one context.
fn assert_batch_matches(ctx: &Context, g: &Graph<()>, sources: &[VertexId]) {
    let batch = bfs_multi_source(execution::par, ctx, g, sources);
    assert_eq!(batch.batch, sources.len());
    for (s, &src) in sources.iter().enumerate() {
        let single = bfs(execution::par, ctx, g, src);
        assert_eq!(
            batch.source_levels(s),
            single.level,
            "lane {s} (source {src}) diverged from its dedicated traversal"
        );
    }
    batch.recycle(ctx);
}

/// Spreads `k` sources deterministically over the vertex range (duplicates
/// allowed when k > n — the kernel must handle repeated sources).
fn spread_sources(n: usize, k: usize) -> Vec<VertexId> {
    (0..k)
        .map(|i| ((i * 2_654_435_761) % n.max(1)) as VertexId)
        .collect()
}

#[test]
fn rmat_batches_match_independent_runs_at_every_width_and_thread_count() {
    let g: Graph<()> = Graph::from_coo(&gen::rmat(10, 8, gen::RmatParams::default(), 42));
    let n = g.num_vertices();
    for &threads in &THREADS {
        let ctx = Context::new(threads);
        for &k in &WIDTHS {
            assert_batch_matches(&ctx, &g, &spread_sources(n, k));
        }
    }
}

#[test]
fn grid_batches_match_independent_runs_at_every_width_and_thread_count() {
    // High-diameter counterpart to R-MAT: many BSP iterations, small
    // frontiers — the regime where per-iteration overheads would show up
    // as level skew if the lock-step advance were wrong.
    let g: Graph<()> = Graph::from_coo(&gen::grid2d(40, 25));
    let n = g.num_vertices();
    for &threads in &THREADS {
        let ctx = Context::new(threads);
        for &k in &WIDTHS {
            assert_batch_matches(&ctx, &g, &spread_sources(n, k));
        }
    }
}

#[test]
fn full_width_batch_on_disconnected_graph() {
    // Star + isolated tail: most lanes see a 1-hop world, lanes rooted in
    // the tail see only themselves; unvisited entries must stay UNVISITED
    // in every lane.
    let mut edges: Vec<(VertexId, VertexId, ())> = Vec::new();
    for v in 1..32 {
        edges.push((0, v, ()));
    }
    let g: Graph<()> = Graph::from_coo(&Coo::from_edges(96, edges));
    let sources: Vec<VertexId> = (0..MAX_BATCH as VertexId).collect();
    for &threads in &THREADS {
        assert_batch_matches(&Context::new(threads), &g, &sources);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random directed graphs, random source multisets (duplicates
    /// allowed), random batch width in 1..=64: batched output is
    /// bit-identical to k independent runs at 1, 2, and 8 threads.
    #[test]
    fn bfs_multi_source_matches_independent_runs(
        (g, sources) in (2usize..48).prop_flat_map(|n| {
            let edge = (0..n as VertexId, 0..n as VertexId);
            let edges = prop::collection::vec(edge, 0..220);
            let srcs = prop::collection::vec(0..n as VertexId, 1..MAX_BATCH + 1);
            (edges, srcs).prop_map(move |(edges, srcs)| {
                let coo = Coo::from_edges(n, edges.into_iter().map(|(s, d)| (s, d, ())));
                (Graph::<()>::from_coo(&coo), srcs)
            })
        })
    ) {
        let mut per_thread: Vec<Vec<u32>> = Vec::new();
        for &threads in &THREADS {
            let ctx = Context::new(threads);
            let batch = bfs_multi_source(execution::par, &ctx, &g, &sources);
            for (s, &src) in sources.iter().enumerate() {
                let single = bfs(execution::par, &ctx, &g, src);
                prop_assert_eq!(
                    batch.source_levels(s),
                    single.level,
                    "lane {} (source {}) diverged at {} threads",
                    s,
                    src,
                    threads
                );
            }
            per_thread.push(batch.levels.clone());
            batch.recycle(&ctx);
        }
        // Determinism across thread counts: the full level table is one
        // bit pattern, not merely per-lane equivalent.
        prop_assert_eq!(&per_thread[0], &per_thread[1]);
        prop_assert_eq!(&per_thread[1], &per_thread[2]);
    }
}
