//! Property test for the fused-dedup advance: `neighbors_expand_unique`
//! must equal `neighbors_expand` followed by `uniquify()` — as a set, on
//! every graph, under every execution policy and thread count. Exercised on
//! random R-MAT (power-law, the stress case for edge balancing) and
//! Erdős–Rényi graphs.

use essentials::prelude::*;
use essentials_gen as gen;
use proptest::prelude::*;

/// Pseudo-random frontier: roughly a third of all vertices, seed-derived.
fn random_frontier(n: usize, seed: u64) -> SparseFrontier {
    let mut x = seed | 1;
    let mut v = Vec::new();
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x.is_multiple_of(3) {
            v.push(i as VertexId);
        }
    }
    if v.is_empty() {
        v.push(0);
    }
    SparseFrontier::from_vec(v)
}

/// Sorted contents of a frontier (set comparison).
fn sorted(f: &SparseFrontier) -> Vec<VertexId> {
    let mut v = f.as_slice().to_vec();
    v.sort_unstable();
    v
}

/// Runs both operators under one policy and compares. The condition must be
/// pure for this identity to hold exactly (a stateful condition sees the
/// same edges but may admit different ones per interleaving).
fn check<P: ExecutionPolicy + Copy>(policy: P, ctx: &Context, g: &Graph<()>, f: &SparseFrontier) {
    for parity in [None, Some(0), Some(1)] {
        let cond = move |_s: VertexId, d: VertexId, _e: EdgeId, _w: ()| match parity {
            None => true,
            Some(p) => d % 2 == p,
        };
        let mut reference = neighbors_expand(policy, ctx, g, f, cond);
        reference.uniquify();
        let unique = neighbors_expand_unique(policy, ctx, g, f, cond);
        let unique_sorted = sorted(&unique);
        // Duplicate-free …
        let mut deduped = unique_sorted.clone();
        deduped.dedup();
        assert_eq!(unique_sorted, deduped, "unique output contains duplicates");
        // … and the same set as expand + uniquify.
        assert_eq!(
            unique_sorted,
            reference.as_slice().to_vec(),
            "unique output diverges from expand + uniquify"
        );
    }
}

fn check_all_policies_and_threads(g: &Graph<()>, fseed: u64) {
    let f = random_frontier(g.num_vertices(), fseed);
    for threads in [1, 2, 8] {
        let ctx = Context::new(threads);
        // Repeat under one context so scratch reuse (dirty bitmap, retained
        // buffers) is also exercised, not just the cold path.
        for _ in 0..2 {
            check(execution::seq, &ctx, g, &f);
            check(execution::par, &ctx, g, &f);
            check(execution::par_nosync, &ctx, g, &f);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn unique_equals_expand_then_uniquify_on_rmat(
        scale in 5u32..9,
        edge_factor in 4usize..10,
        seed in 0u64..10_000,
        fseed in 0u64..10_000,
    ) {
        let coo = gen::rmat(scale, edge_factor, gen::RmatParams::default(), seed);
        let g = Graph::from_coo(&coo);
        check_all_policies_and_threads(&g, fseed);
    }

    #[test]
    fn unique_equals_expand_then_uniquify_on_erdos_renyi(
        n in 2usize..300,
        edge_factor in 0usize..6,
        seed in 0u64..10_000,
        fseed in 0u64..10_000,
    ) {
        let coo = gen::gnm(n, n * edge_factor, seed);
        let g = Graph::from_coo(&coo);
        check_all_policies_and_threads(&g, fseed);
    }
}
