//! The paper's four listings, exercised end-to-end through the public API.
//! These tests pin the Rust spelling of each listing so refactors cannot
//! silently drift from the paper.

use essentials::prelude::*;

/// Listing 1: a CSR behind a graph-focused API.
#[test]
fn listing1_csr_graph_api() {
    // struct csr_t { rows, cols, row_offsets, column_indices, values }
    let csr = Csr::from_raw(vec![0, 2, 3, 3], vec![1, 2, 2], vec![0.5f32, 1.5, 2.5]);
    // struct graph_t : csr_t { float get_edge_weight(e) { return values[e] } }
    let g = Graph::from_csr(csr);
    assert_eq!(g.get_edge_weight(0), 0.5);
    assert_eq!(g.get_edge_weight(2), 2.5);
    assert_eq!(g.get_num_vertices(), 3);
    assert_eq!(g.get_dest_vertex(1), 2);
}

/// Listing 2: the sparse frontier with the paper's method names.
#[test]
fn listing2_sparse_frontier() {
    let mut f = SparseFrontier::new();
    assert_eq!(f.size(), 0);
    f.add_vertex(4);
    f.add_vertex(9);
    assert_eq!(f.size(), 2);
    assert_eq!(f.get_active_vertex(0), 4);
    assert_eq!(f.get_active_vertex(1), 9);
}

/// Listing 3: `neighbors_expand` with execution policies — identical
/// results, different execution.
#[test]
fn listing3_neighbors_expand_policies() {
    let g: Graph<f32> = GraphBuilder::new(5)
        .edges([
            (0, 1, 1.0),
            (0, 2, 5.0),
            (1, 3, 1.0),
            (2, 4, 1.0),
            (3, 4, 9.0),
        ])
        .build();
    let ctx = Context::new(2);
    let f = SparseFrontier::from_vec(vec![0, 1, 3]);
    // Condition: only expand along edges lighter than 2.0.
    let cond = |_s: VertexId, _d: VertexId, _e: EdgeId, w: f32| w < 2.0;
    let mut seq = neighbors_expand(execution::seq, &ctx, &g, &f, cond);
    let mut par = neighbors_expand(execution::par, &ctx, &g, &f, cond);
    let mut nos = neighbors_expand(execution::par_nosync, &ctx, &g, &f, cond);
    let mut mux = neighbors_expand_mutex(execution::par, &ctx, &g, &f, cond);
    for out in [&mut seq, &mut par, &mut nos, &mut mux] {
        out.uniquify();
    }
    assert_eq!(seq.as_slice(), &[1, 3]);
    assert_eq!(seq, par);
    assert_eq!(seq, nos);
    assert_eq!(seq, mux);
}

/// Listing 4: the complete SSSP — init, seed, while-loop with
/// `neighbors_expand` + atomic-min relaxation, convergence on empty
/// frontier.
#[test]
fn listing4_sssp_structure_and_result() {
    let g: Graph<f32> = GraphBuilder::new(4)
        .edges([(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0), (2, 3, 1.0)])
        .build();
    let ctx = Context::new(2);
    let r = essentials::algos::sssp::sssp(execution::par, &ctx, &g, 0);
    assert_eq!(r.dist, vec![0.0, 1.0, 3.0, 4.0]);
    // The loop ran until the frontier emptied (trace ends at 0) and did not
    // hit any cap.
    assert_eq!(*r.stats.frontier_trace.last().unwrap(), 0);
    assert!(!r.stats.hit_iteration_cap);
}
