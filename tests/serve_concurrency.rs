//! Concurrency contract of the serving engine, written to run under
//! ThreadSanitizer (this binary is in the TSan CI matrix).
//!
//! Eight client threads hammer one [`Engine`] with a mixed
//! BFS / batched-BFS / PageRank workload and every response is checked
//! against a sequential oracle computed up front — so any cross-request
//! scratch aliasing, lost admission permit, or torn level table shows up
//! as a wrong answer, not just as a sanitizer report. A separate
//! poisoned-scratch canary leases raw pool slots from many threads and
//! verifies both the CAS exclusivity of the lease protocol and the
//! integrity of data parked in a leased slot. Finally, rejected requests
//! (expired deadline, pre-cancelled token) must leave the engine fully
//! reusable.

use essentials::prelude::*;
use essentials::serve::{Engine, EngineConfig, ScratchPool};
use essentials_algos::bfs::bfs_sequential;
use essentials_algos::pagerank::PrConfig;
use essentials_gen as gen;
use std::collections::HashSet;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

const CLIENTS: usize = 8;
const ROUNDS: usize = 6;

fn serving_graph() -> Arc<Graph<()>> {
    Arc::new(Graph::from_coo(&gen::rmat(
        9,
        8,
        gen::RmatParams::default(),
        1234,
    )))
}

#[test]
fn mixed_workload_from_eight_clients_is_deterministic() {
    let graph = serving_graph();
    let n = graph.num_vertices();
    // Oracle levels for every source any client will use.
    let sources: Vec<VertexId> = (0..CLIENTS as VertexId)
        .map(|i| (i * 97) % n as VertexId)
        .collect();
    let oracle: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| bfs_sequential(&graph, s).level)
        .collect();
    // PageRank through atomic f64 adds is order-sensitive in the last
    // bits, so the oracle is a tolerance band around one reference run.
    let pr_cfg = PrConfig {
        max_iterations: 30,
        ..PrConfig::default()
    };
    let engine = Arc::new(Engine::new(
        graph.clone(),
        EngineConfig {
            threads: 2,
            permits: 4,
            heavy_permits: 2,
        },
    ));
    let pr_ref = engine
        .pagerank(pr_cfg, RunBudget::unlimited())
        .expect("reference pagerank")
        .rank;

    let start = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let engine = &engine;
            let sources = &sources;
            let oracle = &oracle;
            let pr_ref = &pr_ref;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for round in 0..ROUNDS {
                    match (c + round) % 3 {
                        // Single-source probe: bit-identical to the oracle.
                        0 => {
                            let r = engine
                                .bfs(sources[c], RunBudget::unlimited())
                                .expect("bfs served");
                            assert_eq!(r.level, oracle[c], "client {c} round {round}");
                        }
                        // Batched probe: every lane bit-identical.
                        1 => {
                            let batch = engine
                                .bfs_batch(sources, RunBudget::unlimited())
                                .expect("batch served");
                            for (s, want) in oracle.iter().enumerate() {
                                assert_eq!(
                                    &batch.source_levels(s),
                                    want,
                                    "client {c} round {round} lane {s}"
                                );
                            }
                            engine.recycle_batch(batch);
                        }
                        // Heavy analytics: within float-summation noise of
                        // the reference (structure identical, order free).
                        _ => {
                            let pr = engine
                                .pagerank(pr_cfg, RunBudget::unlimited())
                                .expect("pagerank served");
                            assert_eq!(pr.rank.len(), pr_ref.len());
                            for (i, (a, b)) in pr.rank.iter().zip(pr_ref).enumerate() {
                                assert!(
                                    (a - b).abs() < 1e-9,
                                    "client {c} round {round}: rank[{i}] {a} vs {b}"
                                );
                            }
                        }
                    }
                }
            });
        }
    });
    // Every permit and lease returned.
    assert_eq!(engine.load(), (0, 0, 0));
}

#[test]
fn leased_scratch_slots_never_alias_across_threads() {
    // The canary: each thread leases a slot, writes a thread-unique
    // pattern into the slot's pooled f64 buffer, re-reads it after a
    // scheduling gap, and releases. Concurrently-live keys are tracked in
    // a set — a key inserted twice means the CAS protocol leaked a slot to
    // two requests at once.
    let pool = ScratchPool::new(4);
    let tp = Arc::new(essentials_parallel::ThreadPool::new(1));
    let live: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
    let start = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let pool = &pool;
            let tp = &tp;
            let live = &live;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for round in 0..40 {
                    let Some(lease) = pool.checkout() else {
                        std::thread::yield_now();
                        continue;
                    };
                    {
                        let mut live = live.lock().expect("canary set");
                        assert!(
                            live.insert(lease.key()),
                            "slot {} leased to two threads at once",
                            lease.key()
                        );
                    }
                    let ctx = Context::with_parts(tp.clone(), lease.scratch().clone());
                    let mut buf = ctx.take_f64_buffer();
                    buf.clear();
                    let stamp = (c * 1000 + round) as f64;
                    buf.resize(64, stamp);
                    std::thread::yield_now();
                    assert!(
                        buf.iter().all(|&x| x == stamp),
                        "scratch data poisoned by another request"
                    );
                    ctx.recycle_f64_buffer(buf);
                    live.lock().expect("canary set").remove(&lease.key());
                    drop(lease);
                }
            });
        }
    });
    assert_eq!(pool.available(), 4, "every slot returned to the pool");
}

#[test]
fn recycling_never_steals_a_slot_from_admitted_requests() {
    // Regression guard: a recycle path that checks out a scratch slot can —
    // with permits = 1 — transiently hold the engine's only slot exactly
    // when a freshly admitted request leases, panicking the serving
    // pipeline. Recycling goes through a private free-list instead, so
    // servers and a concurrent recycler hammering a one-slot engine must
    // never fail and every answer stays exact.
    use essentials_algos::multi_source::MsBfsResult;
    use std::sync::mpsc;

    let graph = serving_graph();
    let n = graph.num_vertices();
    let sources: Vec<VertexId> = (0..8).map(|i| (i * 31) % n as VertexId).collect();
    let oracle: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| bfs_sequential(&graph, s).level)
        .collect();
    let engine = Engine::new(
        graph,
        EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        },
    );
    let (tx, rx) = mpsc::channel::<MsBfsResult>();
    std::thread::scope(|scope| {
        let engine = &engine;
        let recycler = scope.spawn(move || {
            // Returns every served batch while the servers keep serving, so
            // recycle_batch races real admissions the whole run.
            for batch in rx {
                engine.recycle_batch(batch);
            }
        });
        for _ in 0..4 {
            let tx = tx.clone();
            let sources = &sources;
            let oracle = &oracle;
            scope.spawn(move || {
                for round in 0..24 {
                    let batch = engine
                        .bfs_batch(sources, RunBudget::unlimited())
                        .expect("batch served");
                    for (s, want) in oracle.iter().enumerate() {
                        assert_eq!(&batch.source_levels(s), want, "round {round} lane {s}");
                    }
                    tx.send(batch).expect("recycler alive");
                }
            });
        }
        drop(tx);
        recycler.join().expect("recycler thread");
    });
    assert_eq!(engine.load(), (0, 0, 0));
}

#[test]
fn rejected_requests_leave_the_engine_reusable() {
    let graph = serving_graph();
    let want = bfs_sequential(&graph, 0).level;
    let engine = Engine::new(
        graph,
        EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        },
    );

    // Deadline already expired: fails in the queue or at the first budget
    // check, never with a wrong answer.
    let expired = RunBudget::unlimited().with_timeout(Duration::ZERO);
    let err = engine.bfs(0, expired).expect_err("expired deadline");
    assert!(
        matches!(err.kind(), "deadline-expired" | "queue-deadline"),
        "got {}",
        err.kind()
    );

    // Pre-cancelled token: same story through the cancellation path.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = RunBudget::unlimited().with_cancel(token);
    let err = engine.bfs(0, cancelled).expect_err("cancelled request");
    assert_eq!(err.kind(), "cancelled");

    // The engine still serves exact answers afterwards.
    for _ in 0..3 {
        let r = engine.bfs(0, RunBudget::unlimited()).expect("reusable");
        assert_eq!(r.level, want);
    }
    assert_eq!(engine.load(), (0, 0, 0));
}
