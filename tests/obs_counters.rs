//! `CountersSink` totals against serial reference counts.
//!
//! The observability layer's numbers are only useful if they are *exact*,
//! so each test recomputes the expected total from first principles on a
//! fixed seeded graph and compares with `==`:
//!
//! * push BFS inspects every out-edge of every vertex that ever enters the
//!   frontier — i.e. Σ out_degree(v) over visited vertices;
//! * SSSP's relaxation lambda runs once per inspected edge, so the sink's
//!   `edges_inspected` equals the algorithm's own `relaxations` counter;
//! * the fused dedup bitmap suppresses duplicates *before* they reach a
//!   worker's buffer, so per-worker push tallies sum to exactly
//!   `vertices_pushed`.

use std::sync::Arc;

use essentials::prelude::*;
use essentials_algos::{bfs, sssp};
use essentials_gen as gen;

/// A context with `threads` requested workers and a fresh counters sink
/// attached. (`ESSENTIALS_THREADS` may override the requested count — the
/// references below are thread-count independent.)
fn observed(threads: usize) -> (Context, Arc<CountersSink>) {
    let ctx = Context::new(threads);
    let sink = Arc::new(CountersSink::new(ctx.pool().num_threads()));
    let ctx = ctx.with_obs(sink.clone() as Arc<dyn ObsSink>);
    (ctx, sink)
}

#[test]
fn bfs_edges_inspected_matches_visited_degree_sum() {
    let g: Graph<()> = Graph::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 3));
    let (ctx, sink) = observed(4);
    let r = bfs::bfs(execution::par, &ctx, &g, 0);

    // Serial reference: every visited vertex enters the frontier exactly
    // once (the CAS claim) and has all its out-edges inspected there.
    let expected: u64 = g
        .vertices()
        .filter(|&v| r.level[v as usize] != bfs::UNVISITED)
        .map(|v| g.out_degree(v) as u64)
        .sum();
    assert!(
        expected > 0,
        "graph too sparse for the test to mean anything"
    );

    let t = sink.snapshot();
    assert_eq!(t.edges_inspected, expected);
    // The algorithm's own per-edge counter agrees with the operator-level
    // count.
    assert_eq!(t.edges_inspected as usize, r.edges_inspected);
    // One advance per superstep, one iteration span per superstep.
    assert_eq!(t.advance_calls as usize, r.stats.iterations);
    assert_eq!(t.iterations as usize, r.stats.iterations);
}

#[test]
fn sssp_edges_inspected_matches_relaxations() {
    let mut coo = gen::gnm(400, 2400, 9);
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    let g: Graph<f32> = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42));

    let (ctx, sink) = observed(4);
    let r = sssp::sssp(execution::par, &ctx, &g, 0);

    let t = sink.snapshot();
    // The relaxation lambda runs once per inspected edge — the two counts
    // are the same number measured at different layers.
    assert_eq!(t.edges_inspected as usize, r.relaxations);
    assert!(t.edges_inspected > 0);
    // Fused dedup: what the condition admitted, minus what the bitmap
    // suppressed, is what reached the output frontier.
    assert_eq!(t.vertices_pushed, t.edges_admitted - t.dedup_hits);
}

#[test]
fn per_worker_pushes_account_for_every_admitted_edge() {
    let g: Graph<()> = Graph::from_coo(&gen::rmat(9, 8, gen::RmatParams::default(), 5));
    let (ctx, sink) = observed(4);
    let r = bfs::bfs(execution::par, &ctx, &g, 0);
    assert!(r.stats.iterations > 0);

    let t = sink.snapshot();
    let per_worker_total: u64 = t.per_worker_pushes.iter().sum();
    if ctx.pool().num_threads() > 1 {
        // Parallel expansion: each admitted edge lands in exactly one
        // worker's buffer before the drain. BFS's CAS condition admits each
        // vertex once, so there are no dedup hits to subtract.
        assert_eq!(t.dedup_hits, 0);
        assert_eq!(per_worker_total, t.vertices_pushed);
        assert_eq!(per_worker_total, t.edges_admitted);
    } else {
        // The sequential fast path appends directly to the output and
        // reports no per-worker distribution.
        assert_eq!(per_worker_total, 0);
    }
}

#[test]
fn unique_expand_tallies_are_post_dedup() {
    let mut coo = gen::gnm(300, 2000, 17);
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    let g: Graph<f32> = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 7));

    let (ctx, sink) = observed(4);
    sssp::sssp(execution::par, &ctx, &g, 0);

    let t = sink.snapshot();
    if ctx.pool().num_threads() > 1 {
        // neighbors_expand_unique runs the dedup bitmap *before* an edge
        // reaches a worker's buffer, so the per-worker tallies count what
        // actually landed in the output, and the suppressed duplicates show
        // up only in dedup_hits.
        let per_worker_total: u64 = t.per_worker_pushes.iter().sum();
        assert_eq!(per_worker_total, t.vertices_pushed);
        assert!(t.dedup_hits > 0, "graph too tree-like to exercise dedup");
    }
}

#[test]
fn reset_supports_back_to_back_measurements() {
    let g: Graph<()> = Graph::from_coo(&gen::rmat(7, 8, gen::RmatParams::default(), 1));
    let (ctx, sink) = observed(2);

    bfs::bfs(execution::par, &ctx, &g, 0);
    let first = sink.snapshot();
    sink.reset();
    bfs::bfs(execution::par, &ctx, &g, 0);
    let second = sink.snapshot();

    // Identical run on an identical graph: the machine-independent totals
    // match exactly (per-worker spread may differ with scheduling).
    assert_eq!(first.edges_inspected, second.edges_inspected);
    assert_eq!(first.vertices_pushed, second.vertices_pushed);
    assert_eq!(first.advance_calls, second.advance_calls);
}
