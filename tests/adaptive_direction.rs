//! The adaptive direction engine's contract, end to end.
//!
//! Two guarantees, checked on the two topologies from the paper's
//! direction-optimizing discussion (power-law R-MAT, where pull pays off in
//! the dense middle, and a mesh, where it never does):
//!
//! 1. **Bit identity** — whatever mix of sparse push / dense push / pull
//!    the policy picks, the answers match the fixed-direction variants
//!    exactly, across every policy corner proptest can reach.
//! 2. **Work bound** — the adaptive traversal inspects no more edges than
//!    the better of fixed push and fixed pull on each topology. That is
//!    the whole point of switching; an engine that loses to both fixed
//!    directions is mis-tuned or mis-counting.

use essentials::prelude::*;
use essentials_algos::{bfs, cc, pagerank, sssp};
use essentials_gen as gen;
use proptest::prelude::*;

fn sym(coo: Coo<()>) -> Graph<()> {
    GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build()
}

fn weighted(mut coo: Coo<()>) -> Graph<f32> {
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42)).with_csc()
}

fn topologies() -> Vec<(&'static str, Coo<()>)> {
    vec![
        ("rmat", gen::rmat(10, 8, gen::RmatParams::default(), 3)),
        ("grid", gen::grid2d(32, 32)),
    ]
}

#[test]
fn adaptive_bfs_matches_fixed_push_and_pull_bit_for_bit() {
    for (name, coo) in topologies() {
        let g = sym(coo);
        let oracle = bfs::bfs_sequential(&g, 0).level;
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let push = bfs::bfs(execution::par, &ctx, &g, 0);
            let pull = bfs::bfs_pull(execution::par, &ctx, &g, 0);
            let auto = bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
            assert_eq!(push.level, oracle, "push on {name} @ {threads}");
            assert_eq!(pull.level, oracle, "pull on {name} @ {threads}");
            assert_eq!(auto.level, oracle, "adaptive on {name} @ {threads}");
        }
    }
}

#[test]
fn adaptive_bfs_inspects_no_more_edges_than_the_better_fixed_direction() {
    for (name, coo) in topologies() {
        let g = sym(coo);
        let ctx = Context::new(4);
        let push = bfs::bfs(execution::par, &ctx, &g, 0).edges_inspected;
        let pull = bfs::bfs_pull(execution::par, &ctx, &g, 0).edges_inspected;
        let auto = bfs::bfs_adaptive(execution::par, &ctx, &g, 0).edges_inspected;
        assert!(
            auto <= push.min(pull),
            "adaptive inspected {auto} edges on {name}; fixed push {push}, fixed pull {pull}"
        );
    }
}

#[test]
fn adaptive_sssp_cc_pagerank_match_their_fixed_variants() {
    for (name, coo) in topologies() {
        let g = sym(coo.clone());
        let gw = weighted(coo);
        let ctx = Context::new(4);
        // SSSP: monotone fetch_min — same least fixpoint, bit for bit.
        let fixed = sssp::sssp(execution::par, &ctx, &gw, 0);
        let auto = sssp::sssp_adaptive(execution::par, &ctx, &gw, 0);
        assert_eq!(auto.dist, fixed.dist, "sssp on {name}");
        // CC: same argument on labels.
        let cc_ref = cc::cc_union_find(&g).comp;
        assert_eq!(
            cc::cc_adaptive(execution::par, &ctx, &g).comp,
            cc_ref,
            "cc on {name}"
        );
        // PageRank: the default policy gathers every iteration, so the
        // result is bit-identical to the pull variant.
        let cfg = pagerank::PrConfig {
            damping: 0.85,
            tolerance: 0.0,
            max_iterations: 20,
        };
        let pull = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
        let auto =
            pagerank::pagerank_adaptive(execution::par, &ctx, &g, cfg, DirectionPolicy::default());
        assert_eq!(auto.rank, pull.rank, "pagerank on {name}");
    }
}

/// Policies spanning the decision space's corners: always-push, eager-pull,
/// dense-early, sticky (high dwell), blocked-pull upgrades, and the default.
fn arb_policy() -> impl Strategy<Value = DirectionPolicy> {
    (
        1usize..40,
        1usize..40,
        1usize..64,
        1usize..4,
        (0usize..2, 1usize..16, 1usize..32),
    )
        .prop_map(
            |(alpha, beta, gamma, dwell, (on, ba, bb))| DirectionPolicy {
                alpha,
                beta,
                gamma,
                dwell,
                blocked: (on == 1).then_some(BlockedPullPolicy {
                    alpha: ba,
                    beta: bb,
                }),
                compressed: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_corner_is_bit_identical_to_fixed_directions(
        policy in arb_policy(),
        scale in 7u32..10,
        seed in 0u64..1000,
        grid_side in 8usize..24,
    ) {
        let ctx = Context::new(4);
        for g in [
            sym(gen::rmat(scale, 8, gen::RmatParams::default(), seed)),
            sym(gen::grid2d(grid_side, grid_side)),
        ] {
            let oracle = bfs::bfs_sequential(&g, 0).level;
            let r = bfs::bfs_with_policy(execution::par, &ctx, &g, 0, policy);
            prop_assert_eq!(&r.level, &oracle);
            // The trace of frontier sizes is direction independent too:
            // each level set is determined by the graph, not the schedule.
            let push = bfs::bfs(execution::par, &ctx, &g, 0);
            prop_assert_eq!(&r.stats.frontier_trace, &push.stats.frontier_trace);
        }
    }
}
