//! The abstraction's core contract (§III-A): "the operator's functionality
//! [is] identical, even as its underlying execution changes." Every
//! algorithm must return the same answer under seq, par, and par_nosync,
//! across thread counts, on every workload family.

use essentials::prelude::*;
use essentials_algos::{bfs, cc, color, kcore, sssp, sswp, tc};
use essentials_gen as gen;

fn workloads() -> Vec<(&'static str, Graph<f32>)> {
    let build = |coo: &Coo<()>, seed: u64| -> Graph<f32> {
        let mut c = coo.clone();
        c.remove_self_loops();
        c.symmetrize();
        c.sort_and_dedup();
        Graph::from_coo(&gen::hash_weights(&c, 0.1, 2.0, seed)).with_csc()
    };
    vec![
        (
            "rmat",
            build(&gen::rmat(8, 8, gen::RmatParams::default(), 1), 1),
        ),
        ("grid", build(&gen::grid2d(16, 16), 2)),
        ("ws", build(&gen::watts_strogatz(300, 4, 0.2, 3), 3)),
        ("ba", build(&gen::barabasi_albert(300, 3, 4), 4)),
        ("star", build(&gen::star(128), 5)),
        ("tree", build(&gen::binary_tree(255), 6)),
    ]
}

#[test]
fn sssp_identical_across_policies_and_thread_counts() {
    for (name, g) in workloads() {
        let reference = sssp::sssp(execution::seq, &Context::sequential(), &g, 0).dist;
        for threads in [1, 2, 4, 8] {
            let ctx = Context::new(threads);
            for dist in [
                sssp::sssp(execution::par, &ctx, &g, 0).dist,
                sssp::sssp(execution::par_nosync, &ctx, &g, 0).dist,
                sssp::sssp_async(&ctx, &g, 0).dist,
            ] {
                assert_eq!(dist, reference, "{name} @ {threads} threads");
            }
        }
    }
}

#[test]
fn bfs_identical_across_all_variants() {
    for (name, g) in workloads() {
        let reference = bfs::bfs_sequential(&g, 0).level;
        let ctx = Context::new(4);
        let variants: Vec<(&str, Vec<u32>)> = vec![
            ("push", bfs::bfs(execution::par, &ctx, &g, 0).level),
            ("pull", bfs::bfs_pull(execution::par, &ctx, &g, 0).level),
            ("dense", bfs::bfs_dense(execution::par, &ctx, &g, 0).level),
            ("queue", bfs::bfs_queue(&ctx, &g, 0).level),
            ("async", bfs::bfs_async(&ctx, &g, 0).level),
            (
                "do",
                bfs::bfs_direction_optimizing(execution::par, &ctx, &g, 0, Default::default())
                    .level,
            ),
        ];
        for (vname, level) in variants {
            assert_eq!(level, reference, "{vname} on {name}");
        }
    }
}

#[test]
fn structural_algorithms_policy_equivalence() {
    for (name, g) in workloads() {
        let ctx = Context::new(4);
        let seq = Context::sequential();

        let cc_ref = cc::cc_union_find(&g).comp;
        assert_eq!(
            cc::cc_label_propagation(execution::par, &ctx, &g).comp,
            cc_ref,
            "cc on {name}"
        );
        assert_eq!(cc::cc_hooking(execution::par, &ctx, &g).comp, cc_ref);

        let tc_ref = tc::triangle_count(execution::seq, &seq, &g, false).triangles;
        assert_eq!(
            tc::triangle_count(execution::par, &ctx, &g, true).triangles,
            tc_ref,
            "tc on {name}"
        );

        let kc_ref = kcore::kcore_sequential(&g).core;
        assert_eq!(
            kcore::kcore_peel(execution::par, &ctx, &g).core,
            kc_ref,
            "kcore on {name}"
        );

        // Coloring is not unique across schedules — verify validity instead.
        let col = color::color_greedy(execution::par, &ctx, &g);
        assert!(color::verify_coloring(&g, &col.color), "color on {name}");

        let w_ref = sswp::sswp_sequential(&g, 0).width;
        assert_eq!(
            sswp::sswp(execution::par, &ctx, &g, 0).width,
            w_ref,
            "sswp on {name}"
        );
    }
}

#[test]
fn different_sources_and_unreachable_regions() {
    // Directed path: late sources see shrinking reachable sets.
    let coo = gen::path(60);
    let g = Graph::from_coo(&gen::unit_weights(&coo)).with_csc();
    let ctx = Context::new(2);
    for source in [0u32, 30, 59] {
        let r = sssp::sssp(execution::par, &ctx, &g, source);
        for v in 0..60u32 {
            if v < source {
                assert!(r.dist[v as usize].is_infinite());
            } else {
                assert_eq!(r.dist[v as usize], (v - source) as f32);
            }
        }
    }
}
