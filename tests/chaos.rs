//! Chaos/soak harness for the serving engine (DESIGN.md §16), written to
//! run under ThreadSanitizer (this binary is in the TSan CI matrix, with
//! `ESSENTIALS_STRESS_SCALE` raising the round count).
//!
//! A seeded [`RequestFaultPlan`] injects ≥100 mixed faults — mid-run
//! worker panics at `(iteration, chunk)` coordinates, service delays,
//! exhausted budgets, poisoned recycle locks — into a storm of concurrent
//! mixed requests against 1-permit and 8-permit engines. While the storm
//! runs, every client samples [`Engine::health`] and asserts the zero-leak
//! invariant `free + leased + quarantined == permits`; every outcome must
//! be either a verified-correct result or one of the documented typed
//! error kinds. After the storm, a delay-pinned recovery wave claims every
//! slot concurrently (rebuilding the quarantined ones) and proves clean
//! requests are bit-identical to serial oracles — the engine survived the
//! faults with no capacity loss and no corrupted scratch.
//!
//! Every injected fault is replayable: the plan is a pure function of its
//! seed, and each fault's key is `(request, iteration, chunk)` — on any
//! assertion failure, rerun with the same seed and the same schedule
//! reproduces it.

use essentials::prelude::*;
use essentials::serve::{Brownout, Engine, EngineConfig, Outcome, ServeError};
use essentials_algos::bfs::bfs_sequential;
use essentials_algos::pagerank::PrConfig;
use essentials_gen as gen;
use essentials_parallel::{RequestFault, RequestFaultPlan};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Scales a workload by `ESSENTIALS_STRESS_SCALE` (default 1). The
/// sanitizer CI job raises it so instrumented runs still soak the engine;
/// local runs stay fast.
fn scaled(n: usize) -> usize {
    match std::env::var("ESSENTIALS_STRESS_SCALE") {
        Ok(s) => n * s.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => n,
    }
}

/// Error kinds a chaos-storm request may legitimately surface. Anything
/// else (or a wrong *result*) is a bug.
const ALLOWED_KINDS: &[&str] = &[
    "worker-panic",
    "cancelled",
    "deadline-expired",
    "iteration-cap",
    "diverged",
    "invalid-input",
    "queue-deadline",
    "shed",
];

fn chaos_graph() -> Arc<Graph<()>> {
    Arc::new(Graph::from_coo(&gen::rmat(
        9,
        8,
        gen::RmatParams::default(),
        1234,
    )))
}

/// Per-client outcome tally, aggregated after the storm (plain data over
/// join handles — no shared atomics needed).
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    requests: usize,
    ok: usize,
    degraded: usize,
    panics: usize,
    sheds: usize,
    other_typed: usize,
}

/// Renders the replay key of the fault (if any) planned for a request —
/// printed in assertion messages so a failing schedule reruns from the
/// seed.
fn replay_key(plan: &RequestFaultPlan, id: u64) -> String {
    match plan.for_request(id) {
        Some(f) => {
            let (i, c) = f.coordinate();
            format!(
                "fault key (request {id}, iteration {i}, chunk {c}) [{}]",
                f.name()
            )
        }
        None => format!("no fault planned for request {id}"),
    }
}

/// Runs a seeded chaos storm against an engine and verifies the
/// resilience contract end to end (see module docs).
fn chaos_storm(permits: usize, heavy_permits: usize, clients: usize, seed: u64) {
    let rounds = scaled(20);
    let graph = chaos_graph();
    let n = graph.num_vertices();
    let storm_requests = (clients * rounds) as u64;

    // ≥100 mixed faults, deterministically drawn from the seed. The same
    // seed always yields the same plan (replayability).
    let base = RequestFaultPlan::seeded(seed, storm_requests, 45, 30, 20, 10, 3, 2, 300);
    assert!(base.len() >= 100, "plan must inject >=100 faults");
    assert_eq!(
        base,
        RequestFaultPlan::seeded(seed, storm_requests, 45, 30, 20, 10, 3, 2, 300),
        "same seed must reproduce the same plan"
    );
    // Recovery-wave requests (ids past the storm) get a deliberate service
    // delay so a wave of `permits` concurrent requests overlaps in
    // service and claims *every* slot — including quarantined ones, which
    // only rebuild on claim.
    let mut plan = base;
    for id in storm_requests..storm_requests + (permits * 20) as u64 {
        plan = plan.fault_at(id, RequestFault::Delay { micros: 20_000 });
    }
    let plan = Arc::new(plan);

    // Serial oracles, computed before any chaos.
    let sources: Vec<VertexId> = (0..clients as VertexId)
        .map(|i| (i * 97) % n as VertexId)
        .collect();
    let oracle: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| bfs_sequential(&graph, s).level)
        .collect();
    let pr_cfg = PrConfig {
        max_iterations: 30,
        ..PrConfig::default()
    };
    // PageRank reference from a clean engine (same thread count — the
    // deterministic reduce makes ranks stable for a given configuration).
    let clean = Engine::new(
        graph.clone(),
        EngineConfig {
            threads: 2,
            permits,
            heavy_permits,
        },
    );
    let pr_ref = clean
        .pagerank(pr_cfg, RunBudget::unlimited())
        .expect("reference pagerank")
        .rank;

    let engine = Engine::new(
        graph.clone(),
        EngineConfig {
            threads: 2,
            permits,
            heavy_permits,
        },
    )
    .with_chaos(plan.clone());

    // ---- The storm ----
    let start = Barrier::new(clients);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let engine = &engine;
                let sources = &sources;
                let oracle = &oracle;
                let pr_ref = &pr_ref;
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    let mut t = Tally::default();
                    for round in 0..rounds {
                        t.requests += 1;
                        let outcome_kind = match (c + round) % 4 {
                            // Light probe: on success, bit-identical.
                            0 => match engine.bfs(sources[c], RunBudget::unlimited()) {
                                Ok(r) => {
                                    assert_eq!(
                                        r.level, oracle[c],
                                        "client {c} round {round}: wrong bfs under chaos"
                                    );
                                    None
                                }
                                Err(e) => Some(e),
                            },
                            // Batched probe: every lane bit-identical.
                            1 => match engine.bfs_batch(sources, RunBudget::unlimited()) {
                                Ok(batch) => {
                                    for (s, want) in oracle.iter().enumerate() {
                                        assert_eq!(
                                            &batch.source_levels(s),
                                            want,
                                            "client {c} round {round} lane {s} under chaos"
                                        );
                                    }
                                    engine.recycle_batch(batch);
                                    None
                                }
                                Err(e) => Some(e),
                            },
                            // Degradable heavy: full runs match the
                            // reference band; browned-out runs still
                            // return a valid distribution.
                            2 => match engine.pagerank_degradable(
                                pr_cfg,
                                RunBudget::unlimited().with_timeout(Duration::from_millis(250)),
                                Brownout::new(3),
                            ) {
                                Ok(resp) => {
                                    let sum: f64 = resp.value.rank.iter().sum();
                                    assert!(
                                        (sum - 1.0).abs() < 1e-6,
                                        "client {c} round {round}: ranks sum to {sum}"
                                    );
                                    if let Outcome::Degraded { residual, .. } = resp.outcome {
                                        assert!(residual.is_finite());
                                        t.degraded += 1;
                                    } else {
                                        for (a, b) in resp.value.rank.iter().zip(pr_ref) {
                                            assert!(
                                                (a - b).abs() < 1e-9,
                                                "client {c} round {round}: rank drift under chaos"
                                            );
                                        }
                                    }
                                    None
                                }
                                Err(e) => Some(e),
                            },
                            // Plain heavy: within float-summation noise.
                            _ => match engine.pagerank(pr_cfg, RunBudget::unlimited()) {
                                Ok(pr) => {
                                    for (a, b) in pr.rank.iter().zip(pr_ref) {
                                        assert!(
                                            (a - b).abs() < 1e-9,
                                            "client {c} round {round}: rank drift under chaos"
                                        );
                                    }
                                    None
                                }
                                Err(e) => Some(e),
                            },
                        };
                        if let Some(e) = outcome_kind {
                            let kind = e.kind();
                            assert!(
                                ALLOWED_KINDS.contains(&kind),
                                "client {c} round {round}: unexpected error kind {kind:?}"
                            );
                            match kind {
                                "worker-panic" => t.panics += 1,
                                "shed" => t.sheds += 1,
                                _ => t.other_typed += 1,
                            }
                            if matches!(e, ServeError::Rejected(_)) && kind == "shed" {
                                // fine: counted above
                            }
                        } else {
                            t.ok += 1;
                        }
                        // Zero-leak invariant, sampled while faults fly:
                        // every slot is free, leased, or quarantined.
                        let h = engine.health();
                        assert_eq!(
                            h.free_slots + h.leased_slots + h.quarantined_slots,
                            h.permits,
                            "client {c} round {round}: slot leaked mid-storm"
                        );
                    }
                    t
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client panicked outside the engine"))
            .collect()
    });

    // ---- Post-storm bookkeeping ----
    let total: Tally = tallies.iter().fold(Tally::default(), |mut acc, t| {
        acc.requests += t.requests;
        acc.ok += t.ok;
        acc.degraded += t.degraded;
        acc.panics += t.panics;
        acc.sheds += t.sheds;
        acc.other_typed += t.other_typed;
        acc
    });
    assert_eq!(total.requests, clients * rounds);
    let h = engine.health();
    assert_eq!(h.leased_slots, 0, "storm over: no lease outstanding");
    assert_eq!(
        h.free_slots + h.quarantined_slots,
        h.permits,
        "storm over: every slot accounted for"
    );
    assert_eq!(
        h.quarantined_total as usize, total.panics,
        "each captured worker panic quarantines exactly one slot"
    );
    assert_eq!(
        h.quarantined_total - h.rebuilt_total,
        h.quarantined_slots as u64,
        "cumulative counters reconcile with the live quarantine count"
    );
    assert_eq!(
        h.shed_total as usize, total.sheds,
        "shed counter matches observed shed rejections"
    );
    assert!(
        total.sheds <= total.requests / 2,
        "shed rate must stay bounded: {} of {}",
        total.sheds,
        total.requests
    );
    assert_eq!(h.degraded_total as usize, total.degraded);
    // The storm must have actually exercised the panic path (the seeded
    // coordinates are chosen to land inside real runs). If this fires,
    // the replay keys below identify the plan's panic faults.
    assert!(
        total.panics > 0,
        "no injected panic fired; first planned: {}",
        replay_key(&plan, plan.faults()[0].0)
    );

    // ---- Recovery: quarantined slots rebuild, results are pristine ----
    // Waves of `permits` concurrent requests, each delayed 20ms in
    // service by the plan, so one wave claims every slot at once; loop a
    // few waves in case the scheduler staggers one.
    let mut waves = 0;
    while engine.health().quarantined_slots > 0 && waves < 20 {
        let wave_start = Barrier::new(permits);
        std::thread::scope(|scope| {
            for w in 0..permits {
                let engine = &engine;
                let graph = &graph;
                let wave_start = &wave_start;
                scope.spawn(move || {
                    wave_start.wait();
                    let s = (w as VertexId * 131) % graph.num_vertices() as VertexId;
                    let got = engine
                        .bfs(s, RunBudget::unlimited())
                        .expect("recovery request must succeed");
                    let want = bfs_sequential(graph, s).level;
                    assert_eq!(got.level, want, "recovery bfs not bit-identical");
                });
            }
        });
        waves += 1;
    }
    let h = engine.health();
    assert_eq!(h.quarantined_slots, 0, "all quarantined slots rebuilt");
    assert_eq!(h.free_slots, h.permits, "full capacity restored");
    assert_eq!(h.quarantined_total, h.rebuilt_total);

    // Clean single-threaded requests after the chaos: bit-identical BFS
    // lanes and in-band PageRank, with recycling working.
    let batch = engine
        .bfs_batch(&sources, RunBudget::unlimited())
        .expect("post-chaos batch");
    for (s, want) in oracle.iter().enumerate() {
        assert_eq!(&batch.source_levels(s), want, "post-chaos lane {s}");
    }
    engine.recycle_batch(batch);
    let pr = engine
        .pagerank(pr_cfg, RunBudget::unlimited())
        .expect("post-chaos pagerank");
    for (a, b) in pr.rank.iter().zip(&pr_ref) {
        assert!((a - b).abs() < 1e-9, "post-chaos rank drift");
    }
    assert_eq!(engine.load(), (0, 0, 0), "no permit outstanding");
}

#[test]
fn chaos_storm_on_a_single_permit_engine() {
    // One permit: every fault hits the engine's only slot, so quarantine
    // must rebuild it or the engine is dead — the harshest recovery test.
    chaos_storm(1, 1, 4, 0xC0FFEE);
}

#[test]
fn chaos_storm_on_an_eight_permit_engine() {
    chaos_storm(8, 2, 8, 0xDECAF);
}
