//! What the execution model does and does not let vary.
//!
//! Under the synchronous (BSP) policy the suite's results are
//! *bit-deterministic* across thread counts:
//!
//! * BFS levels — a vertex's level is the first superstep that reaches it,
//!   which no intra-superstep ordering can change;
//! * SSSP distances — monotone `fetch_min` relaxation converges to the
//!   unique least fixpoint `dist[v] = min over paths of the f32 path sum`
//!   (float addition is monotone, so the bound propagates identically under
//!   any schedule);
//! * pull PageRank at a fixed iteration count on dangling-free graphs —
//!   each vertex's gather is a sequential sum over its in-neighbors, so
//!   thread count never reassociates it.
//!
//! What MAY vary, and is documented rather than promised:
//!
//! * the asynchronous variants (`bfs_async`, `sssp_async`, the
//!   `par_nosync` policy) perform a schedule-dependent *amount of work* —
//!   relaxation counts and iteration structure differ run to run — but
//!   their monotone updates still land on the same fixpoint, so final
//!   values stay bit-identical;
//! * tolerance-based stopping reads a parallel floating-point reduction
//!   (`sum_f64` reassociates), so the *iteration count* at which a
//!   tolerance trips may differ across thread counts — which is why the
//!   fixed-iteration configuration below is the one with a bit-identity
//!   guarantee;
//! * push PageRank accumulates with atomic f64 adds in scheduling order,
//!   so its ranks are only tolerance-equal, not bit-equal, across runs.

use essentials::prelude::*;
use essentials_algos::{bfs, hits, pagerank, sssp};
use essentials_gen as gen;
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 2, 8];

fn sym(coo: Coo<()>) -> Graph<()> {
    GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build()
}

fn weighted(mut coo: Coo<()>) -> Graph<f32> {
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    let mut g = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42));
    g.ensure_csc();
    g
}

#[test]
fn bfs_levels_bit_identical_across_thread_counts() {
    let g = sym(gen::rmat(8, 8, gen::RmatParams::default(), 11));
    let reference = bfs::bfs(execution::seq, &Context::sequential(), &g, 0).level;
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = bfs::bfs(execution::par, &ctx, &g, 0);
        assert_eq!(r.level, reference, "levels diverged at {t} threads");
        // The adaptive engine's direction choices depend only on frontier
        // sizes and edge mass — both thread-count independent — so its
        // levels (and even its per-iteration direction trace) are too.
        let a = bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
        assert_eq!(
            a.level, reference,
            "adaptive levels diverged at {t} threads"
        );
        let a1 = bfs::bfs_adaptive(execution::par, &Context::new(1), &g, 0);
        assert_eq!(
            a.directions, a1.directions,
            "direction trace diverged at {t} threads"
        );
    }
}

#[test]
fn sssp_distances_bit_identical_across_thread_counts() {
    let g = weighted(gen::rmat(8, 8, gen::RmatParams::default(), 11));
    let reference = sssp::sssp(execution::seq, &Context::sequential(), &g, 0).dist;
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = sssp::sssp(execution::par, &ctx, &g, 0);
        // Exact f32 equality — the least fixpoint is schedule independent.
        assert_eq!(r.dist, reference, "distances diverged at {t} threads");
        // And direction independent: whatever mix of push and pull the
        // adaptive engine chooses, monotone relaxation lands on the same
        // least fixpoint.
        let a = sssp::sssp_adaptive(execution::par, &ctx, &g, 0);
        assert_eq!(
            a.dist, reference,
            "adaptive distances diverged at {t} threads"
        );
    }
}

#[test]
fn pagerank_pull_bit_identical_at_fixed_iteration_count() {
    let g = sym(gen::gnm(400, 2400, 5));
    // Dangling mass feeds into every rank via the teleport base; an
    // all-zero dangling sum is the one f64 reduction whose value no
    // reassociation can change, so the guarantee needs this guard.
    assert!(
        g.vertices().all(|v| g.out_degree(v) > 0),
        "graph has dangling vertices; pick a denser seed"
    );
    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0, // never trips: exactly max_iterations run
        max_iterations: 25,
    };
    let reference = pagerank::pagerank_pull(execution::seq, &Context::sequential(), &g, cfg).rank;
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
        assert_eq!(r.stats.iterations, 25);
        assert_eq!(r.rank, reference, "ranks diverged at {t} threads");
        // The adaptive variant's default policy gathers every iteration —
        // identical float operations in identical order.
        let a = pagerank::pagerank_adaptive(execution::par, &ctx, &g, cfg, Default::default());
        assert_eq!(a.rank, reference, "adaptive ranks diverged at {t} threads");
    }
}

#[test]
fn blocked_gather_results_bit_identical_across_thread_counts() {
    // The propagation-blocked gather extends the pull-side guarantee: each
    // destination bin is flushed by exactly one worker, and within a bin
    // the entries sit in source-ascending order — the same sequential sum
    // the naive gather performs, so thread count never reassociates it.
    let g = sym(gen::gnm(400, 2400, 5));
    assert!(
        g.vertices().all(|v| g.out_degree(v) > 0),
        "graph has dangling vertices; pick a denser seed"
    );
    let bins = BlockedConfig { bin_bits: 6 };

    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0, // never trips: exactly max_iterations run
        max_iterations: 25,
    };
    let pr_ref =
        pagerank::pagerank_pull_blocked(execution::seq, &Context::sequential(), &g, cfg, bins).rank;
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = pagerank::pagerank_pull_blocked(execution::par, &ctx, &g, cfg, bins);
        assert_eq!(r.stats.iterations, 25);
        assert_eq!(r.rank, pr_ref, "blocked ranks diverged at {t} threads");
    }

    let hcfg = hits::HitsConfig {
        tolerance: 0.0,
        max_iterations: 15,
    };
    let h_ref = hits::hits_blocked(execution::seq, &Context::sequential(), &g, hcfg, bins);
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = hits::hits_blocked(execution::par, &ctx, &g, hcfg, bins);
        assert_eq!(r.hub, h_ref.hub, "blocked hubs diverged at {t} threads");
        assert_eq!(
            r.authority, h_ref.authority,
            "blocked authorities diverged at {t} threads"
        );
    }

    // Through the direction engine: a policy with an eager blocked-pull
    // upgrade (huge α ⇒ tiny n/α entry threshold, so every pull iteration
    // upgrades) yields the same levels AND the same per-iteration direction
    // trace at every thread count (the decision reads only frontier sizes).
    let policy = DirectionPolicy {
        blocked: Some(BlockedPullPolicy {
            alpha: 1000,
            beta: 1000,
        }),
        ..DirectionPolicy::default()
    };
    let b_ref = bfs::bfs_with_policy(execution::par, &Context::new(1), &g, 0, policy);
    assert!(
        b_ref.directions.contains(&Direction::BlockedPull),
        "eager policy never took the blocked-pull path; the test is vacuous"
    );
    for &t in &THREADS {
        let ctx = Context::new(t);
        let r = bfs::bfs_with_policy(execution::par, &ctx, &g, 0, policy);
        assert_eq!(r.level, b_ref.level, "blocked BFS diverged at {t} threads");
        assert_eq!(
            r.directions, b_ref.directions,
            "direction trace diverged at {t} threads"
        );
    }
}

#[test]
fn budget_stops_are_thread_count_deterministic_for_bsp_runs() {
    // The resilient layer extends the determinism contract: BSP frontier
    // sizes are thread-count independent, and the budget's deterministic
    // limits (iteration cap, fault-plan cancellation) are checked *before*
    // the wall clock — so a budget stop at iteration k yields bit-identical
    // partial progress at every thread count.
    let g = sym(gen::rmat(8, 8, gen::RmatParams::default(), 11));

    let progress_at = |threads: usize| {
        let ctx = Context::new(threads).with_budget(RunBudget::unlimited().with_max_iterations(2));
        match bfs::try_bfs(execution::par, &ctx, &g, 0) {
            Err(ExecError::Budget { reason, progress }) => {
                assert_eq!(reason, BudgetReason::IterationCap);
                progress
            }
            other => panic!("expected Budget(IterationCap), got {other:?}"),
        }
    };
    let reference = progress_at(1);
    assert_eq!(reference.iterations, 2);
    assert_eq!(reference.work_trace.len(), 2);
    for &t in &THREADS[1..] {
        assert_eq!(
            progress_at(t),
            reference,
            "budget-stop progress diverged at {t} threads"
        );
    }

    // Same for a fault-plan cancellation at an exact (iteration, chunk)
    // coordinate: the BSP edge balancer numbers chunks identically at
    // every thread count.
    let cancel_progress_at = |threads: usize| {
        let plan = Arc::new(FaultPlan::new().cancel_at(1, 0));
        let ctx = Context::new(threads).with_fault_plan(plan);
        match bfs::try_bfs(execution::par, &ctx, &g, 0) {
            Err(ExecError::Budget { reason, progress }) => {
                assert_eq!(reason, BudgetReason::Cancelled);
                progress
            }
            other => panic!("expected Budget(Cancelled), got {other:?}"),
        }
    };
    let reference = cancel_progress_at(1);
    assert_eq!(reference.iterations, 1);
    for &t in &THREADS[1..] {
        assert_eq!(
            cancel_progress_at(t),
            reference,
            "fault-cancel progress diverged at {t} threads"
        );
    }
}

#[test]
fn async_execution_varies_work_but_not_values() {
    let g = weighted(gen::grid2d(20, 20));
    let ctx = Context::new(4);
    let bsp = sssp::sssp(execution::par, &ctx, &g, 0);
    let asy = sssp::sssp_async(&ctx, &g, 0);
    // Same fixpoint, bit for bit.
    assert_eq!(asy.dist, bsp.dist);
    // The loop structure collapses (no supersteps) and the relaxation
    // count is schedule dependent — nothing below asserts a specific
    // value, only that the async run did real work.
    assert_eq!(asy.stats.iterations, 1);
    assert!(asy.relaxations > 0);

    let bfs_bsp = bfs::bfs(execution::par, &ctx, &g, 0);
    let bfs_asy = bfs::bfs_async(&ctx, &g, 0);
    assert_eq!(bfs_asy.level, bfs_bsp.level);
}

#[test]
fn par_nosync_reaches_the_same_fixpoint() {
    let g = weighted(gen::rmat(8, 8, gen::RmatParams::default(), 23));
    let ctx = Context::new(4);
    let sync = sssp::sssp(execution::par, &ctx, &g, 0);
    let nosync = sssp::sssp(execution::par_nosync, &ctx, &g, 0);
    // Relaxed-ordering execution may do a different amount of work per
    // superstep, but the monotone relaxation still lands on the least
    // fixpoint.
    assert_eq!(nosync.dist, sync.dist);
}
