//! The resilient execution layer, end to end: injected worker panics,
//! cooperative cancellation, deadline expiry, and forced divergence must
//! each surface as the matching typed [`ExecError`] — never a process
//! abort — and must leave the `Context` fully reusable: the next run on
//! the same context matches the serial oracle bit for bit and the
//! steady-state zero-allocation contract still holds.
//!
//! Fault points are driven by the deterministic [`FaultPlan`], keyed by
//! `(iteration, chunk)`: the enactor publishes the iteration, the pool's
//! chunk hooks consult the plan before every chunk, and an injected panic
//! goes through the *real* `catch_unwind` capture path — these tests
//! exercise production recovery code, not a parallel test-only path.
//!
//! This file is its own test binary with a counting `#[global_allocator]`
//! so the post-recovery allocation audit is not polluted by other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use essentials::prelude::*;
use essentials_algos::{bfs, pagerank, sssp};
use essentials_gen as gen;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers every allocator duty to `System` verbatim; the only
// addition is a Relaxed counter bump, which cannot violate GlobalAlloc's
// contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `System` upholds the layout contract; counting is side-effect-free.
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's layout unchanged to System.
        unsafe { System.alloc(l) }
    }

    // SAFETY: `System` upholds the layout contract; counting is side-effect-free.
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's pointer and layouts unchanged.
        unsafe { System.realloc(p, l, new_size) }
    }

    // SAFETY: `System` upholds the layout contract.
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        // SAFETY: forwarding the caller's pointer and layout unchanged.
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `iteration` once with allocation counting on; returns the count.
fn count_allocs(iteration: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    iteration();
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

/// Silences the default panic hook for *injected* panics only, so the test
/// log is not flooded by the fault plan doing its job. Installed once per
/// test binary; every real panic still prints.
fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let injected = p
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    p.downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn sym_graph(seed: u64) -> Graph<()> {
    GraphBuilder::from_coo(gen::rmat(10, 8, gen::RmatParams::default(), seed))
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .build()
}

fn weighted_graph(seed: u64) -> Graph<f32> {
    let mut coo = gen::rmat(10, 8, gen::RmatParams::default(), seed);
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42))
}

// ---- fault class 1: worker panic mid-advance ----------------------------

#[test]
fn worker_panic_mid_advance_is_isolated_and_the_context_recovers() {
    quiet_injected_panics();
    let g = sym_graph(11);
    let ctx = Context::new(4);
    let oracle = bfs::bfs_sequential(&g, 0).level;

    // Panic inside chunk 0 of BFS iteration 1's edge-balanced advance.
    let plan = Arc::new(FaultPlan::new().panic_at(1, 0));
    let faulty = ctx.clone().with_fault_plan(plan);
    match bfs::try_bfs(execution::par, &faulty, &g, 0) {
        Err(ExecError::WorkerPanic { payload, .. }) => {
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }

    // The clone shares pool and scratch with `ctx`: if the panic leaked a
    // scratch buffer, a worker slot, or dirty dedup-bitmap bits, this run
    // would see it. It must match the serial oracle bit for bit.
    let r = bfs::bfs(execution::par, &ctx, &g, 0);
    assert_eq!(r.level, oracle, "post-panic run diverged from the oracle");
    assert!(bfs::verify_bfs(&g, 0, &r.level));
}

// ---- fault class 2: cancellation mid-iteration --------------------------

#[test]
fn cancellation_mid_iteration_returns_budget_error_with_progress() {
    let g = sym_graph(12);
    let ctx = Context::new(4);
    let oracle = bfs::bfs_sequential(&g, 0).level;

    // A fault-driven cancellation observed at (iteration 1, chunk 0): one
    // iteration completed, the second stopped at its first chunk.
    let plan = Arc::new(FaultPlan::new().cancel_at(1, 0));
    let cancelled = ctx.clone().with_fault_plan(plan);
    match bfs::try_bfs(execution::par, &cancelled, &g, 0) {
        Err(ExecError::Budget { reason, progress }) => {
            assert_eq!(reason, BudgetReason::Cancelled);
            assert_eq!(progress.iterations, 1, "one iteration completed");
            assert_eq!(progress.work_trace.len(), 1);
        }
        other => panic!("expected Budget(Cancelled), got {other:?}"),
    }

    // A real, already-fired CancelToken stops at the first iteration
    // boundary with zero completed iterations.
    let token = CancelToken::new();
    token.cancel();
    let budgeted = ctx
        .clone()
        .with_budget(RunBudget::unlimited().with_cancel(token));
    match bfs::try_bfs(execution::par, &budgeted, &g, 0) {
        Err(ExecError::Budget { reason, progress }) => {
            assert_eq!(reason, BudgetReason::Cancelled);
            assert_eq!(progress.iterations, 0);
        }
        other => panic!("expected Budget(Cancelled), got {other:?}"),
    }

    let r = bfs::bfs(execution::par, &ctx, &g, 0);
    assert_eq!(r.level, oracle, "post-cancel run diverged from the oracle");
}

// ---- fault class 3: deadline expiry --------------------------------------

#[test]
fn deadline_expiry_returns_budget_error_and_the_context_stays_reusable() {
    let g = weighted_graph(13);
    let ctx = Context::new(4);
    let oracle = sssp::sssp(execution::seq, &Context::sequential(), &g, 0).dist;

    let expired = ctx
        .clone()
        .with_budget(RunBudget::unlimited().with_timeout(Duration::ZERO));
    match sssp::try_sssp(execution::par, &expired, &g, 0) {
        Err(ExecError::Budget { reason, .. }) => {
            assert_eq!(reason, BudgetReason::DeadlineExpired);
        }
        other => panic!("expected Budget(DeadlineExpired), got {other:?}"),
    }

    // Monotone fetch_min relaxation lands on the schedule-independent least
    // fixpoint — bit-identical to the sequential run.
    let r = sssp::sssp(execution::par, &ctx, &g, 0);
    assert_eq!(r.dist, oracle, "post-deadline run diverged from the oracle");
    assert!(sssp::verify_sssp(&g, 0, &r.dist, 1e-4));
}

// ---- fault class 4: forced divergence ------------------------------------

#[test]
fn forced_divergence_trips_the_convergence_watchdogs() {
    let g = GraphBuilder::from_coo(gen::gnm(200, 1200, 5))
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build();
    let ctx = Context::new(4);

    // damping > 1 makes the residual grow geometrically: the rising-streak
    // watchdog must fire long before the iteration cap.
    let cfg = pagerank::PrConfig {
        damping: 3.0,
        tolerance: 1e-9,
        max_iterations: 200,
    };
    match pagerank::try_pagerank_pull(execution::par, &ctx, &g, cfg) {
        Err(ExecError::Diverged { iteration, detail }) => {
            assert!(detail.contains("residual rose"), "detail: {detail}");
            assert!(iteration < 50, "watchdog too slow: iteration {iteration}");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }

    // An absurd damping factor overflows to ±inf within two iterations:
    // the non-finite check fires before the streak counter can.
    let cfg = pagerank::PrConfig {
        damping: 1e155,
        tolerance: 1e-9,
        max_iterations: 200,
    };
    match pagerank::try_pagerank_pull(execution::par, &ctx, &g, cfg) {
        Err(ExecError::Diverged { detail, .. }) => {
            assert!(detail.contains("non-finite"), "detail: {detail}");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }

    // The context is untouched by the failed runs: a sane configuration
    // still converges to a probability distribution.
    let r = pagerank::pagerank_pull(execution::par, &ctx, &g, pagerank::PrConfig::default());
    assert!(!r.stats.hit_iteration_cap);
    assert!(r.final_error < pagerank::PrConfig::default().tolerance);
    let mass: f64 = r.rank.iter().sum();
    assert!((mass - 1.0).abs() < 1e-6, "rank mass {mass}");
}

// ---- recovery keeps the zero-allocation steady state --------------------

#[test]
fn recovered_context_keeps_the_zero_allocation_steady_state() {
    quiet_injected_panics();
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7));
    let n = g.num_vertices();
    let ctx = Context::new(4);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();

    let iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = neighbors_expand(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_frontier(out);
    };

    // Warm-up: scratch buffers grown, frontier pool primed.
    for _ in 0..3 {
        iteration();
    }

    // Inject a worker panic straight into the steady-state advance (no
    // enactor here, so the plan's iteration coordinate stays 0).
    let plan = Arc::new(FaultPlan::new().panic_at(0, 0));
    let faulty = ctx.clone().with_fault_plan(plan);
    let err = bfs::try_bfs(execution::par, &faulty, &g, 0).unwrap_err();
    assert!(
        matches!(err, ExecError::WorkerPanic { .. }),
        "expected WorkerPanic, got {err:?}"
    );

    // The error path must have returned every pooled buffer: the very next
    // steady-state iteration allocates nothing.
    let allocs = count_allocs(iteration);
    assert_eq!(
        allocs, 0,
        "steady-state advance hit the allocator {allocs} times after a recovered panic"
    );
}
