//! Differential tests: the shared-memory algorithms and their
//! message-passing (`essentials-mp`) counterparts must compute the same
//! answers on the same seeded graphs, across thread counts (shared memory)
//! and partition counts (message passing).
//!
//! Shared memory sweeps 1/2/8 worker threads; message passing sweeps
//! 1/2/8 partitions (its unit of parallelism). Every configuration is
//! checked against one thread-count-independent oracle per algorithm.

use essentials::prelude::*;
use essentials_algos::{bfs, cc, hits, pagerank, sssp};
use essentials_gen as gen;
use essentials_mp::algorithms::{mp_bfs, mp_pagerank, mp_sssp};
use essentials_partition::{random_partition, PartitionedGraph};
use std::sync::atomic::{AtomicU32, Ordering};

const SHM_THREADS: [usize; 3] = [1, 2, 8];
const MP_PARTITIONS: [usize; 3] = [1, 2, 8];

fn sym(coo: Coo<()>) -> Graph<()> {
    GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build()
}

fn weighted(mut coo: Coo<()>) -> Graph<f32> {
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    let mut g = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42));
    g.ensure_csc();
    g
}

/// R-MAT (power law) and Erdős–Rényi G(n, m) topologies, seeded.
fn topologies() -> Vec<(&'static str, Coo<()>)> {
    vec![
        ("rmat", gen::rmat(8, 8, gen::RmatParams::default(), 11)),
        ("gnm", gen::gnm(400, 2400, 7)),
    ]
}

fn close_f32(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-3)
}

#[test]
fn bfs_levels_agree_across_backends() {
    for (name, coo) in topologies() {
        let g = sym(coo);
        let oracle = bfs::bfs_sequential(&g, 0).level;
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let r = bfs::bfs(execution::par, &ctx, &g, 0);
            assert_eq!(r.level, oracle, "shm bfs diverged on {name} at {t} threads");
            let a = bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
            assert_eq!(
                a.level, oracle,
                "adaptive bfs diverged on {name} at {t} threads"
            );
        }
        for &k in &MP_PARTITIONS {
            let p = random_partition(g.get_num_vertices(), k, 13);
            let pg = PartitionedGraph::build(&g, &p);
            let (levels, stats) = mp_bfs(&pg, 0);
            assert_eq!(
                levels, oracle,
                "mp bfs diverged on {name} at {k} partitions"
            );
            assert!(stats.supersteps > 0);
        }
    }
}

#[test]
fn sssp_distances_agree_across_backends() {
    for (name, coo) in topologies() {
        let g = weighted(coo);
        let oracle = sssp::dijkstra(&g, 0).dist;
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let r = sssp::sssp(execution::par, &ctx, &g, 0);
            assert!(
                close_f32(&r.dist, &oracle),
                "shm sssp diverged on {name} at {t} threads"
            );
            let a = sssp::sssp_adaptive(execution::par, &ctx, &g, 0);
            assert!(
                close_f32(&a.dist, &oracle),
                "adaptive sssp diverged on {name} at {t} threads"
            );
        }
        for &k in &MP_PARTITIONS {
            let p = random_partition(g.get_num_vertices(), k, 13);
            let pg = PartitionedGraph::build(&g, &p);
            let (dist, _) = mp_sssp(&pg, 0);
            assert!(
                close_f32(&dist, &oracle),
                "mp sssp diverged on {name} at {k} partitions"
            );
        }
    }
}

#[test]
fn blocked_gather_agrees_with_naive_on_f64_ranks() {
    // The propagation-blocked gather reorders memory traffic, not
    // arithmetic: per destination the binned entries accumulate in
    // source-ascending order — the same sequence the naive pull sums — so
    // f64 ranks agree to 1e-12 L∞ (and in practice to the last ulp).
    let iterations = 30;
    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0,
        max_iterations: iterations,
    };
    let bins = BlockedConfig { bin_bits: 6 };
    for (name, coo) in topologies() {
        let g = sym(coo);
        let pr_oracle =
            pagerank::pagerank_pull(execution::seq, &Context::sequential(), &g, cfg).rank;
        let hcfg = hits::HitsConfig {
            tolerance: 0.0,
            max_iterations: 20,
        };
        let hits_oracle = hits::hits(execution::seq, &Context::sequential(), &g, hcfg);
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let r = pagerank::pagerank_pull_blocked(execution::par, &ctx, &g, cfg, bins);
            assert_eq!(r.stats.iterations, iterations);
            for (a, b) in r.rank.iter().zip(&pr_oracle) {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "blocked pr diverged on {name} at {t} threads: {a} vs {b}"
                );
            }
            let h = hits::hits_blocked(execution::par, &ctx, &g, hcfg, bins);
            for (a, b) in h
                .hub
                .iter()
                .zip(&hits_oracle.hub)
                .chain(h.authority.iter().zip(&hits_oracle.authority))
            {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "blocked hits diverged on {name} at {t} threads: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn blocked_gather_is_exact_on_integer_payloads() {
    // Integer payloads leave no room for tolerance: BFS levels through the
    // direction engine's blocked-pull upgrade, and CC labels through a
    // label-propagation loop driven directly by `expand_blocked_pull`, must
    // equal the sequential oracles bit for bit.
    let blocked_policy = DirectionPolicy {
        // Huge α ⇒ tiny n/α entry threshold: every pull iteration upgrades.
        blocked: Some(BlockedPullPolicy {
            alpha: 1000,
            beta: 1000,
        }),
        ..DirectionPolicy::default()
    };
    for (name, coo) in topologies() {
        let g = sym(coo);
        let n = g.get_num_vertices();

        let bfs_oracle = bfs::bfs_sequential(&g, 0).level;
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let r = bfs::bfs_with_policy(execution::par, &ctx, &g, 0, blocked_policy);
            assert_eq!(
                r.level, bfs_oracle,
                "blocked bfs diverged on {name} at {t} threads"
            );
        }

        // CC by min-label propagation, every iteration a blocked pull over
        // the full candidate set. `fetch_min` is monotone, so the loop lands
        // on the same per-component-minimum fixpoint as the union-find
        // oracle no matter how the bins interleave.
        let cc_oracle = cc::cc_union_find(&g).comp;
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
            let candidates = DenseFrontier::new(n);
            candidates.set_all();
            let mut frontier = DenseFrontier::new(n);
            frontier.set_all();
            while !frontier.is_empty() {
                let (next, _scanned) = expand_blocked_pull(
                    execution::par,
                    &ctx,
                    &g,
                    &frontier,
                    &candidates,
                    PullConfig { early_exit: false },
                    BlockedConfig { bin_bits: 6 },
                    |src, dst, _w| {
                        let l = labels[src as usize].load(Ordering::Acquire);
                        labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
                    },
                );
                frontier = next;
            }
            let comp: Vec<VertexId> = labels.into_iter().map(AtomicU32::into_inner).collect();
            assert_eq!(
                comp, cc_oracle,
                "blocked cc diverged on {name} at {t} threads"
            );
        }
    }
}

#[test]
fn compressed_adjacency_agrees_bit_for_bit_with_raw() {
    // The byte-coded adjacency is a representation change, not an
    // algorithm change: decoders stream neighbors in the same ascending
    // order the raw arrays store, so every fixpoint (BFS levels, SSSP
    // distances, CC labels) and every floating-point accumulation
    // (PageRank's gather sums) must equal the raw-CSR run bit for bit —
    // not within tolerance — across thread counts.
    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0,
        max_iterations: 30,
    };
    for (name, coo) in topologies() {
        let g = sym(coo.clone());
        let gw = weighted(coo);
        let build = Context::new(2);
        let cg = CompressedGraph::from_graph(build.pool(), &g);
        let cgw = CompressedGraph::from_graph(build.pool(), &gw);
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let raw_bfs = bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
            let c_bfs = bfs::bfs_adaptive_compressed(
                execution::par,
                &ctx,
                &cg,
                0,
                DirectionPolicy::default(),
            );
            assert_eq!(
                c_bfs.level, raw_bfs.level,
                "compressed bfs diverged on {name} at {t} threads"
            );

            let raw_sssp = sssp::sssp_adaptive(execution::par, &ctx, &gw, 0);
            let c_sssp = sssp::sssp_adaptive_compressed(execution::par, &ctx, &cgw, 0);
            assert_eq!(
                c_sssp.dist, raw_sssp.dist,
                "compressed sssp diverged on {name} at {t} threads"
            );

            let raw_cc = cc::cc_adaptive(execution::par, &ctx, &g);
            let c_cc = cc::cc_adaptive_compressed(execution::par, &ctx, &cg);
            assert_eq!(
                c_cc.comp, raw_cc.comp,
                "compressed cc diverged on {name} at {t} threads"
            );

            let raw_pr = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
            let c_pr = pagerank::pagerank_pull_compressed(execution::par, &ctx, &cg, cfg);
            assert_eq!(
                c_pr.rank, raw_pr.rank,
                "compressed pagerank diverged on {name} at {t} threads"
            );
        }
    }
}

#[test]
fn compressed_pagerank_stays_bit_identical_past_the_parallel_sum_cutoff() {
    // The scale-8 topologies above sit below the schedule's sequential
    // cutoff, so their dangling-mass and residual sums take the exact
    // sequential loop and never exercise sum_f64's parallel path. This
    // graph is large enough that the chunked path runs. The regression it
    // guards: a merge-order-dependent parallel sum shifts every rank by an
    // ulp at benchmark scale while every small-graph test stays green.
    let g = sym(gen::rmat(12, 8, gen::RmatParams::default(), 19));
    assert!(g.get_num_vertices() >= 4096);
    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0,
        max_iterations: 10,
    };
    let build = Context::new(2);
    let cg = CompressedGraph::from_graph(build.pool(), &g);
    let ctx = Context::new(4);
    let raw = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
    let again = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
    assert_eq!(
        raw.rank, again.rank,
        "raw pull is not run-to-run deterministic"
    );
    let c = pagerank::pagerank_pull_compressed(execution::par, &ctx, &cg, cfg);
    assert_eq!(c.rank, raw.rank, "compressed pull diverged past the cutoff");
}

#[test]
fn mmap_backed_container_drives_the_same_traversals() {
    // Out-of-core path end to end: serialize the compressed graph to the
    // ESNC container, reopen it (memory-mapped where the platform
    // allows), and run the adaptive traversals on the borrowed view. The
    // answers must match the raw in-memory run exactly — the view is the
    // same decode surface the owned structure exposes.
    let (name, coo) = ("rmat", gen::rmat(8, 8, gen::RmatParams::default(), 11));
    let g = sym(coo);
    let build = Context::new(2);
    let cg = CompressedGraph::from_graph(build.pool(), &g);
    let bytes = essentials_io::write_compressed_binary(&cg);
    let dir = std::env::temp_dir().join(format!("essentials-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.esnc");
    std::fs::write(&path, &bytes).unwrap();
    let container = essentials_io::CompressedContainer::<()>::open(&path).unwrap();
    let view = container.view().unwrap();

    let bfs_oracle = bfs::bfs_sequential(&g, 0).level;
    let cc_oracle = cc::cc_union_find(&g).comp;
    for &t in &SHM_THREADS {
        let ctx = Context::new(t);
        let b = bfs::bfs_adaptive_compressed(
            execution::par,
            &ctx,
            &view,
            0,
            DirectionPolicy::default(),
        );
        assert_eq!(b.level, bfs_oracle, "mapped bfs diverged on {name} at {t}");
        let c = cc::cc_adaptive_compressed(execution::par, &ctx, &view);
        assert_eq!(c.comp, cc_oracle, "mapped cc diverged on {name} at {t}");
    }
    let _ = view;
    drop(container);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pagerank_agrees_across_backends_at_fixed_iterations() {
    // mp_pagerank has no dangling-mass redistribution, so compare on
    // dangling-free graphs only (symmetric and dense enough that every
    // vertex keeps an edge). Both sides run the same fixed iteration count
    // so tolerance-stopping differences cannot creep in.
    let iterations = 30;
    let cfg = pagerank::PrConfig {
        damping: 0.85,
        tolerance: 0.0,
        max_iterations: iterations,
    };
    let graphs = vec![
        ("gnm", sym(gen::gnm(400, 2400, 7))),
        ("grid", sym(gen::grid2d(20, 20))),
    ];
    for (name, g) in graphs {
        assert!(
            g.vertices().all(|v| g.out_degree(v) > 0),
            "{name} has dangling vertices; the comparison would be invalid"
        );
        let oracle = pagerank::pagerank_pull(execution::seq, &Context::sequential(), &g, cfg).rank;
        for &t in &SHM_THREADS {
            let ctx = Context::new(t);
            let r = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
            for (a, b) in r.rank.iter().zip(&oracle) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "shm pr diverged on {name} at {t} threads"
                );
            }
            let ad = pagerank::pagerank_adaptive(execution::par, &ctx, &g, cfg, Default::default());
            for (a, b) in ad.rank.iter().zip(&oracle) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "adaptive pr diverged on {name} at {t} threads"
                );
            }
        }
        for &k in &MP_PARTITIONS {
            let p = random_partition(g.get_num_vertices(), k, 13);
            let pg = PartitionedGraph::build(&g, &p);
            let (rank, stats) = mp_pagerank(&pg, 0.85, iterations);
            for (a, b) in rank.iter().zip(&oracle) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "mp pr diverged on {name} at {k} partitions: {a} vs {b}"
                );
            }
            assert!(stats.supersteps >= iterations);
        }
    }
}
