//! Workspace-level property-based tests: random graphs in, cross-variant
//! agreement and solution invariants out.

use essentials::prelude::*;
use essentials_algos::{bfs, cc, mst, sssp, tc};
use proptest::prelude::*;

/// Random weighted directed graph: n in [1, 60], up to 300 edges,
/// weights in (0, 4].
fn arb_graph() -> impl Strategy<Value = Graph<f32>> {
    (1usize..60).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 1u32..=400);
        prop::collection::vec(edge, 0..300).prop_map(move |edges| {
            let coo = Coo::from_edges(
                n,
                edges.into_iter().map(|(s, d, w)| (s, d, w as f32 / 100.0)),
            );
            Graph::from_coo(&coo).with_csc()
        })
    })
}

/// The same, symmetrized and unweighted (for undirected algorithms).
fn arb_sym_graph() -> impl Strategy<Value = Graph<()>> {
    (2usize..50).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        prop::collection::vec(edge, 0..200).prop_map(move |edges| {
            GraphBuilder::from_coo(Coo::from_edges(
                n,
                edges.into_iter().map(|(s, d)| (s, d, ())),
            ))
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .with_csc()
            .build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sssp_fixpoint_and_oracle_agreement(g in arb_graph()) {
        let ctx = Context::new(2);
        let par = sssp::sssp(execution::par, &ctx, &g, 0);
        prop_assert!(sssp::verify_sssp(&g, 0, &par.dist, 1e-3));
        let oracle = sssp::dijkstra(&g, 0);
        for (a, b) in par.dist.iter().zip(&oracle.dist) {
            prop_assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
        }
        let asy = sssp::sssp_async(&ctx, &g, 0);
        prop_assert_eq!(asy.dist, par.dist);
    }

    #[test]
    fn bfs_levels_are_shortest_hop_counts(g in arb_graph()) {
        let ctx = Context::new(2);
        let par = bfs::bfs(execution::par, &ctx, &g, 0);
        prop_assert!(bfs::verify_bfs(&g, 0, &par.level));
        prop_assert_eq!(&par.level, &bfs::bfs_sequential(&g, 0).level);
        // BFS on unit weights == SSSP distances.
        let unit = {
            let coo = g.csr().to_coo();
            let mut u = Coo::new(coo.num_vertices());
            for (s, d, _) in coo.iter() { u.push(s, d, 1.0f32); }
            Graph::from_coo(&u)
        };
        let dist = sssp::sssp(execution::par, &ctx, &unit, 0).dist;
        for (l, d) in par.level.iter().zip(&dist) {
            if *l == bfs::UNVISITED {
                prop_assert!(d.is_infinite());
            } else {
                prop_assert_eq!(*l as f32, *d);
            }
        }
    }

    #[test]
    fn cc_is_an_equivalence_respecting_edges(g in arb_sym_graph()) {
        let ctx = Context::new(2);
        let lp = cc::cc_label_propagation(execution::par, &ctx, &g);
        prop_assert!(cc::verify_cc(&g, &lp.comp));
        prop_assert_eq!(&lp.comp, &cc::cc_union_find(&g).comp);
        prop_assert_eq!(&lp.comp, &cc::cc_hooking(execution::par, &ctx, &g).comp);
        // Component count + edges is consistent with forests: each component
        // of size s needs >= s-1 undirected edges... (only check count > 0).
        prop_assert!(cc::num_components(&lp.comp) >= 1);
    }

    #[test]
    fn mst_weight_is_minimal_among_variants(g in arb_sym_graph()) {
        // Attach symmetric hash weights.
        let coo = g.csr().to_coo();
        let mut unweighted = Coo::new(coo.num_vertices());
        for (s, d, _) in coo.iter() { unweighted.push(s, d, ()); }
        let wg = Graph::from_coo(&essentials_gen::hash_weights(&unweighted, 0.1, 5.0, 9));
        let ctx = Context::new(2);
        let b = mst::boruvka(execution::par, &ctx, &wg);
        let k = mst::kruskal(&wg);
        prop_assert!((b.total_weight - k.total_weight).abs() < 1e-3);
        prop_assert!(mst::verify_forest(&wg, &b));
        prop_assert_eq!(b.edges.len(), k.edges.len());
    }

    #[test]
    fn triangle_count_matches_naive(g in arb_sym_graph()) {
        let ctx = Context::new(2);
        let fast = tc::triangle_count(execution::par, &ctx, &g, false).triangles;
        prop_assert_eq!(fast, tc::triangle_count_naive(&g));
    }

    #[test]
    fn partitioning_is_always_a_valid_cover(g in arb_sym_graph()) {
        use essentials_partition::{multilevel_partition, MultilevelConfig};
        for k in [1usize, 2, 5] {
            let p = multilevel_partition(&g, MultilevelConfig::new(k));
            prop_assert_eq!(p.assignment.len(), g.get_num_vertices());
            prop_assert!(p.assignment.iter().all(|&x| (x as usize) < k));
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), g.get_num_vertices());
        }
    }

    #[test]
    fn io_round_trips_arbitrary_graphs(g in arb_graph()) {
        // Binary.
        let bytes = essentials_io::write_binary(g.csr());
        prop_assert_eq!(&essentials_io::read_binary(&bytes).unwrap(), g.csr());
        // Matrix Market (via COO).
        let coo = g.csr().to_coo();
        let mut mm = Vec::new();
        essentials_io::write_matrix_market(&mut mm, &coo).unwrap();
        let (back, _) = essentials_io::read_matrix_market(&mm[..]).unwrap();
        prop_assert_eq!(Csr::from_coo(&back), g.csr().clone());
        // Edge list.
        let mut el = Vec::new();
        essentials_io::write_edge_list(&mut el, &coo).unwrap();
        let back = essentials_io::read_edge_list(&el[..], g.get_num_vertices()).unwrap();
        prop_assert_eq!(Csr::from_coo(&back), g.csr().clone());
    }
}
