//! Steady-state allocation audit for the frontier pipeline.
//!
//! After warm-up (scratch buffers grown, frontier pool primed), one full
//! BFS-style advance iteration — degree scan, edge-balanced expansion,
//! lock-free collection, output assembly, frontier recycling — must touch
//! the allocator **zero** times. Same for the fused-dedup SSSP-style
//! iteration. Verified with a counting `#[global_allocator]`; this file is
//! its own test binary so no other test's allocations pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use essentials::prelude::*;
use essentials_gen as gen;
use essentials_parallel::atomics::AtomicF32;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers every allocator duty to `System` verbatim; the only
// addition is a Relaxed counter bump, which cannot violate GlobalAlloc's
// contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `System` upholds the layout contract; counting is side-effect-free.
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's layout unchanged to System.
        unsafe { System.alloc(l) }
    }

    // SAFETY: `System` upholds the layout contract; counting is side-effect-free.
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's pointer and layouts unchanged.
        unsafe { System.realloc(p, l, new_size) }
    }

    // SAFETY: `System` upholds the layout contract.
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        // SAFETY: forwarding the caller's pointer and layout unchanged.
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `iteration` once with allocation counting on; returns the count.
///
/// Relaxed is enough here: the counter is only read from this thread, and
/// the pool's region barriers (worker join points inside `iteration`) give
/// the happens-before edge for any worker-side increments.
fn count_allocs(iteration: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    iteration();
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_advance_iterations_do_not_allocate() {
    // Power-law graph big enough that every parallel path (scan, chunked
    // edge balancing, per-worker buffers) actually engages.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7));
    let n = g.num_vertices();
    let ctx = Context::new(4);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let dist: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(f32::INFINITY)).collect();

    // One BFS-style advance: claim-by-CAS condition, expand, recycle the
    // output. Levels are reset (plain stores, no allocation) so every run
    // does identical work.
    let bfs_iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = neighbors_expand(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_frontier(out);
    };

    // One SSSP-style advance: atomic-min relaxation with fused dedup.
    let sssp_iteration = || {
        for d in &dist {
            d.store(f32::INFINITY, Ordering::Relaxed);
        }
        let out = neighbors_expand_unique(execution::par, &ctx, &g, &frontier, |s, d, _e, _w| {
            let nd = s as f32;
            dist[d as usize].fetch_min(nd, Ordering::AcqRel) > nd
        });
        ctx.recycle_frontier(out);
    };

    // Warm-up: grows the scan buffers, the per-worker buffers, the dedup
    // bitmap, and primes the frontier pool with a large-enough vector.
    for _ in 0..3 {
        bfs_iteration();
        sssp_iteration();
    }

    let bfs_allocs = count_allocs(bfs_iteration);
    assert_eq!(
        bfs_allocs, 0,
        "steady-state BFS advance iteration hit the allocator {bfs_allocs} times"
    );

    let sssp_allocs = count_allocs(sssp_iteration);
    assert_eq!(
        sssp_allocs, 0,
        "steady-state fused-dedup advance iteration hit the allocator {sssp_allocs} times"
    );
}

#[test]
fn steady_state_dense_and_pull_iterations_do_not_allocate() {
    // The dense side of the contract: dense-push outputs and pull outputs
    // recycle through the context's bitmap pool, the masked pull decodes a
    // persistent unvisited bitmap word-at-a-time, and after warm-up none of
    // it touches the allocator. NullSink attached throughout — the
    // observability layer must not break the guarantee on these paths
    // either.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7)).with_csc();
    let n = g.num_vertices();
    let ctx = Context::new(4).with_obs(Arc::new(NullSink) as Arc<dyn ObsSink>);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();

    // Persistent pull-side state, as an adaptive loop would hold it: the
    // dense input frontier and the unvisited-candidates mask.
    let dense_in = DenseFrontier::new(n);
    for v in (0..n as VertexId).step_by(2) {
        dense_in.insert(v);
    }
    let mask = DenseFrontier::new(n);

    // One dense-push advance: same CAS condition, bitmap output, recycled.
    let dense_push_iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = expand_push_dense(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_dense_frontier(out);
    };

    // One masked pull advance: word-parallel scan of the mask, bitmap
    // output recycled; mask maintenance (set_all + and_not) is word stores.
    let pull_iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        mask.set_all();
        let (out, _scanned) = expand_pull_masked(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            &mask,
            PullConfig { early_exit: true },
            |_s, d, _w| {
                levels[d as usize]
                    .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        mask.and_not(&out);
        ctx.recycle_dense_frontier(out);
    };

    // One unmasked pull advance (the predicate-candidate form).
    let pull_counted_iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let (out, _scanned) = expand_pull_counted(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            PullConfig { early_exit: true },
            |d| levels[d as usize].load(Ordering::Acquire) == u32::MAX,
            |_s, d, _w| {
                levels[d as usize]
                    .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        ctx.recycle_dense_frontier(out);
    };

    for _ in 0..3 {
        dense_push_iteration();
        pull_iteration();
        pull_counted_iteration();
    }

    let dense_allocs = count_allocs(dense_push_iteration);
    assert_eq!(
        dense_allocs, 0,
        "steady-state dense-push iteration hit the allocator {dense_allocs} times"
    );
    let pull_allocs = count_allocs(pull_iteration);
    assert_eq!(
        pull_allocs, 0,
        "steady-state masked pull iteration hit the allocator {pull_allocs} times"
    );
    let pull_counted_allocs = count_allocs(pull_counted_iteration);
    assert_eq!(
        pull_counted_allocs, 0,
        "steady-state pull iteration hit the allocator {pull_counted_allocs} times"
    );
}

#[test]
fn steady_state_pagerank_pull_and_blocked_gather_do_not_allocate() {
    // The rank-vector side of the contract: a pull PageRank iteration is a
    // full-vector gather (`fill_indexed_into` into a pooled double-buffer)
    // plus a swap, and the propagation-blocked variant streams a fixed
    // destination-binned layout built once up front. After warm-up, neither
    // iteration body may touch the allocator.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7)).with_csc();
    let n = g.num_vertices();
    let ctx = Context::new(4).with_obs(Arc::new(NullSink) as Arc<dyn ObsSink>);
    let damping = 0.85;
    let base = (1.0 - damping) / n as f64;

    // Persistent per-run state, as `pagerank_pull` holds it: the reciprocal
    // out-degree vector and the two rank buffers that swap each iteration.
    let mut inv = vec![0.0f64; n];
    fill_indexed_into(execution::par, &ctx, &mut inv, |v| {
        let d = g.out_degree(v as VertexId);
        if d == 0 {
            0.0
        } else {
            (d as f64).recip()
        }
    });
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];

    // One naive pull iteration: indexed gather over in-neighbors, swap.
    let inv_ref = &inv;
    let g_ref = &g;
    let ctx_ref = &ctx;
    let pull_pr_iteration = |r: &mut Vec<f64>, next: &mut Vec<f64>| {
        let r_now = &*r;
        fill_indexed_into(execution::par, ctx_ref, next, |v| {
            let sum: f64 = g_ref
                .in_neighbors(v as VertexId)
                .iter()
                .map(|&u| r_now[u as usize] * inv_ref[u as usize])
                .sum();
            base + damping * sum
        });
        std::mem::swap(r, next);
    };

    // One blocked iteration: value fill + per-bin flush over the layout.
    let mut gatherer =
        BlockedGather::over_out_edges(execution::par, &ctx, &g, BlockedConfig::default());
    let mut blocked_pr_iteration = |r: &mut Vec<f64>, next: &mut Vec<f64>| {
        let r_now = &*r;
        gatherer.gather(
            execution::par,
            ctx_ref,
            |u| r_now[u] * inv_ref[u],
            |_, acc| base + damping * acc,
            next,
        );
        std::mem::swap(r, next);
    };

    for _ in 0..3 {
        pull_pr_iteration(&mut rank, &mut next);
        blocked_pr_iteration(&mut rank, &mut next);
    }

    let pr_allocs = count_allocs(|| pull_pr_iteration(&mut rank, &mut next));
    assert_eq!(
        pr_allocs, 0,
        "steady-state pull PageRank iteration hit the allocator {pr_allocs} times"
    );
    let blocked_allocs = count_allocs(|| blocked_pr_iteration(&mut rank, &mut next));
    assert_eq!(
        blocked_allocs, 0,
        "steady-state blocked gather iteration hit the allocator {blocked_allocs} times"
    );
    gatherer.finish(&ctx);
}

#[test]
fn budget_checks_preserve_the_zero_allocation_guarantee() {
    // The resilient layer's overhead contract: with a full (but unfired)
    // RunBudget attached — cancel token, far deadline, iteration cap — the
    // operators route through the hooked chunk loops, and those checks are
    // a branch plus a relaxed load each: the steady state must stay
    // allocation-free.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7));
    let n = g.num_vertices();
    let budget = RunBudget::unlimited()
        .with_cancel(CancelToken::new())
        .with_timeout(Duration::from_secs(3600))
        .with_max_iterations(1_000_000);
    let ctx = Context::new(4).with_budget(budget);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();

    let iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = neighbors_expand(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_frontier(out);
    };

    for _ in 0..3 {
        iteration();
    }

    let allocs = count_allocs(iteration);
    assert_eq!(
        allocs, 0,
        "budget-checked advance iteration hit the allocator {allocs} times"
    );
}

#[test]
fn cancelled_then_reused_context_stays_allocation_free() {
    // A cancellation mid-run must hand every pooled buffer back: after the
    // typed error, steady-state iterations on the shared context still
    // allocate nothing.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7));
    let n = g.num_vertices();
    let ctx = Context::new(4);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();

    let iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = neighbors_expand(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_frontier(out);
    };

    for _ in 0..3 {
        iteration();
    }

    // Cancel an advance on a budgeted clone (shared pool + scratch).
    let token = CancelToken::new();
    token.cancel();
    let cancelled = ctx
        .clone()
        .with_budget(RunBudget::unlimited().with_cancel(token));
    let err = try_neighbors_expand(
        execution::par,
        &cancelled,
        &g,
        &frontier,
        |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ExecError::Budget { .. }),
        "expected Budget error, got {err:?}"
    );

    let allocs = count_allocs(iteration);
    assert_eq!(
        allocs, 0,
        "steady-state advance hit the allocator {allocs} times after a cancelled run"
    );
}

#[test]
fn null_sink_preserves_the_zero_allocation_guarantee() {
    // The observability layer's overhead contract: with a NullSink attached
    // (wants_op_detail == false) the operators must skip every piece of
    // detail bookkeeping — admission counters, per-worker tallies, degree
    // sums, event buffers — and the steady state stays allocation-free.
    let g: Graph<()> = Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7));
    let n = g.num_vertices();
    let ctx = Context::new(4).with_obs(Arc::new(NullSink) as Arc<dyn ObsSink>);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let dist: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(f32::INFINITY)).collect();

    let bfs_iteration = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
        let out = neighbors_expand(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
            levels[d as usize]
                .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        ctx.recycle_frontier(out);
    };
    let sssp_iteration = || {
        for d in &dist {
            d.store(f32::INFINITY, Ordering::Relaxed);
        }
        let out = neighbors_expand_unique(execution::par, &ctx, &g, &frontier, |s, d, _e, _w| {
            let nd = s as f32;
            dist[d as usize].fetch_min(nd, Ordering::AcqRel) > nd
        });
        ctx.recycle_frontier(out);
    };

    for _ in 0..3 {
        bfs_iteration();
        sssp_iteration();
    }

    let bfs_allocs = count_allocs(bfs_iteration);
    assert_eq!(
        bfs_allocs, 0,
        "NullSink-observed BFS advance iteration hit the allocator {bfs_allocs} times"
    );
    let sssp_allocs = count_allocs(sssp_iteration);
    assert_eq!(
        sssp_allocs, 0,
        "NullSink-observed fused-dedup iteration hit the allocator {sssp_allocs} times"
    );
}

#[test]
fn steady_state_delta_stepping_rounds_do_not_allocate() {
    // The Δ-stepping hot loop — take the active list, relax with fused
    // dedup, partition the survivors back into buckets — used to allocate
    // three fresh vectors per round. It now cycles its storage through the
    // context's pools (active list and partition buffer) and a local
    // free-list (bucket storage); after warm-up one full round touches the
    // allocator zero times. The per-round work here is deterministic: the
    // distance table is reset before every round, so the improved set and
    // the bucket assignment depend only on the graph.
    let mut coo = gen::rmat(12, 8, gen::RmatParams::default(), 7);
    coo.remove_self_loops();
    coo.symmetrize();
    coo.sort_and_dedup();
    let g: Graph<f32> = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42));
    let n = g.num_vertices();
    let ctx = Context::new(4);
    let delta = 0.3f32;
    let dist: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(f32::INFINITY)).collect();
    let seeds: Vec<VertexId> = (0..n as VertexId).step_by(4).collect();

    let mut buckets: Vec<Vec<VertexId>> = Vec::new();
    let mut spare: Vec<Vec<VertexId>> = Vec::new();

    let mut round = || {
        for (i, d) in dist.iter().enumerate() {
            let init = if i % 4 == 0 { 0.0 } else { f32::INFINITY };
            d.store(init, Ordering::Relaxed);
        }
        // Active list from the context pool, exactly as `delta_stepping`
        // hands its storage to the frontier.
        let mut active = ctx.take_u32_buffer();
        active.extend_from_slice(&seeds);
        let f = SparseFrontier::from_vec(active);
        let improved = neighbors_expand_unique(execution::par, &ctx, &g, &f, |s, d, _e, w| {
            let nd = dist[s as usize].load(Ordering::Acquire) + w;
            dist[d as usize].fetch_min(nd, Ordering::AcqRel) > nd
        });
        ctx.recycle_frontier(f);
        // In-place partition: bucket-0 vertices stay, the rest stash into
        // their buckets, fresh buckets draw storage from the free-list.
        let mut buf = improved.into_vec();
        buf.retain(|&v| {
            let b = (dist[v as usize].load(Ordering::Acquire) / delta) as usize;
            if b == 0 {
                return true;
            }
            if b >= buckets.len() {
                buckets.resize_with(b + 1, Vec::new);
            }
            if buckets[b].capacity() == 0 {
                if let Some(recycled) = spare.pop() {
                    buckets[b] = recycled;
                }
            }
            buckets[b].push(v);
            false
        });
        ctx.recycle_u32_buffer(buf);
        // Bucket retirement: drained storage parks on the free-list.
        for b in &mut buckets {
            if b.capacity() > 0 {
                let mut drained = std::mem::take(b);
                drained.clear();
                spare.push(drained);
            }
        }
    };

    for _ in 0..3 {
        round();
    }

    let allocs = count_allocs(&mut round);
    assert_eq!(
        allocs, 0,
        "steady-state Δ-stepping round hit the allocator {allocs} times"
    );
}

#[test]
fn steady_state_compressed_decode_iterations_do_not_allocate() {
    // The compressed-adjacency side of the contract: decoders are stack
    // values over borrowed byte slices, so the byte-coded expansion paths —
    // sparse push with fused dedup, dense push, masked pull, blocked pull —
    // must meet exactly the same steady-state guarantee as their raw
    // CSR twins.
    let raw: Graph<()> =
        Graph::from_coo(&gen::rmat(12, 8, gen::RmatParams::default(), 7)).with_csc();
    let n = raw.num_vertices();
    let ctx = Context::new(4).with_obs(Arc::new(NullSink) as Arc<dyn ObsSink>);
    let g = CompressedGraph::from_graph(ctx.pool(), &raw);
    let frontier: SparseFrontier = (0..n as VertexId).step_by(2).collect();
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let dense_in = DenseFrontier::new(n);
    for v in (0..n as VertexId).step_by(2) {
        dense_in.insert(v);
    }
    let mask = DenseFrontier::new(n);

    let reset = || {
        for l in &levels {
            l.store(u32::MAX, Ordering::Relaxed);
        }
    };
    let claim = |d: VertexId| {
        levels[d as usize]
            .compare_exchange(u32::MAX, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    };

    let push_iteration = || {
        reset();
        let out = neighbors_expand_unique_compressed(
            execution::par,
            &ctx,
            &g,
            &frontier,
            |_s, d, _e, _w| claim(d),
        );
        ctx.recycle_frontier(out);
    };
    let dense_push_iteration = || {
        reset();
        let out =
            expand_push_dense_compressed(execution::par, &ctx, &g, &frontier, |_s, d, _e, _w| {
                claim(d)
            });
        ctx.recycle_dense_frontier(out);
    };
    let pull_iteration = || {
        reset();
        mask.set_all();
        let (out, _scanned) = expand_pull_masked_compressed(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            &mask,
            PullConfig { early_exit: true },
            |_s, d, _w| claim(d),
        );
        mask.and_not(&out);
        ctx.recycle_dense_frontier(out);
    };
    let blocked_pull_iteration = || {
        reset();
        mask.set_all();
        let (out, _scanned) = expand_blocked_pull_compressed(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            &mask,
            PullConfig { early_exit: true },
            BlockedConfig::default(),
            |_s, d, _w| claim(d),
        );
        mask.and_not(&out);
        ctx.recycle_dense_frontier(out);
    };

    for _ in 0..3 {
        push_iteration();
        dense_push_iteration();
        pull_iteration();
        blocked_pull_iteration();
    }

    let push_allocs = count_allocs(push_iteration);
    assert_eq!(
        push_allocs, 0,
        "steady-state compressed push iteration hit the allocator {push_allocs} times"
    );
    let dense_allocs = count_allocs(dense_push_iteration);
    assert_eq!(
        dense_allocs, 0,
        "steady-state compressed dense-push iteration hit the allocator {dense_allocs} times"
    );
    let pull_allocs = count_allocs(pull_iteration);
    assert_eq!(
        pull_allocs, 0,
        "steady-state compressed masked-pull iteration hit the allocator {pull_allocs} times"
    );
    let blocked_allocs = count_allocs(blocked_pull_iteration);
    assert_eq!(
        blocked_allocs, 0,
        "steady-state compressed blocked-pull iteration hit the allocator {blocked_allocs} times"
    );
}

#[test]
fn warm_serving_engine_requests_do_not_allocate() {
    // The serving layer's extension of the contract: a warm `Engine`
    // serving a batched-BFS request end to end — admission fast path,
    // scratch-slot checkout, request-scoped context, the 64-wide traversal
    // itself, and recycling the returned level table — touches the
    // allocator zero times. This is what the keyed scratch pool exists
    // for: each request leases a whole slot, so repeated requests always
    // land on the buffers they warmed up.
    use essentials::serve::{Engine, EngineConfig};

    let graph = Arc::new(Graph::<()>::from_coo(&gen::rmat(
        11,
        8,
        gen::RmatParams::default(),
        7,
    )));
    let n = graph.num_vertices();
    let engine = Engine::new(
        graph,
        EngineConfig {
            threads: 4,
            permits: 2,
            heavy_permits: 1,
        },
    );
    let sources: Vec<VertexId> = (0..64).map(|i| (i * 131) % n as VertexId).collect();

    let request = || {
        let batch = engine
            .bfs_batch(&sources, RunBudget::unlimited())
            .expect("batch served");
        engine.recycle_batch(batch);
    };

    // Warm-up grows the level table, the mask words, and the two active
    // bitmaps inside one pool slot; with no concurrent requests the
    // engine's checkout scan always hands that same slot back.
    for _ in 0..3 {
        request();
    }

    let allocs = count_allocs(request);
    assert_eq!(
        allocs, 0,
        "warm serving-engine request hit the allocator {allocs} times"
    );
}
