//! Full-pipeline integration: generate → persist/reload → partition →
//! message-passing execution ≡ shared-memory execution ≡ sequential oracle.
//! Everything a downstream user chains together, in one flow per scenario.

use essentials::prelude::*;
use essentials_algos::{bfs, cc, pagerank, sssp};
use essentials_gen as gen;
use essentials_io as io;
use essentials_mp::algorithms::{mp_bfs, mp_sssp};
use essentials_partition::{
    edge_cut, multilevel_partition, random_partition, MultilevelConfig, PartitionedGraph,
};

fn weighted_rmat(scale: u32, seed: u64) -> Graph<f32> {
    let mut coo = gen::rmat(scale, 8, gen::RmatParams::default(), seed);
    coo.remove_self_loops();
    coo.sort_and_dedup();
    Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 3.0, seed)).with_csc()
}

#[test]
fn generate_save_load_compute() {
    let g = weighted_rmat(9, 5);
    // Binary snapshot round trip.
    let bytes = io::write_binary(g.csr());
    let reloaded = Graph::from_csr(io::read_binary(&bytes).unwrap());
    assert_eq!(reloaded.csr(), g.csr());
    // Matrix Market round trip.
    let mut mm = Vec::new();
    io::write_matrix_market(&mut mm, &g.csr().to_coo()).unwrap();
    let (coo, _) = io::read_matrix_market(&mm[..]).unwrap();
    let reloaded2 = Graph::from_coo(&coo);
    assert_eq!(reloaded2.csr(), g.csr());
    // The reloaded graph computes the same distances.
    let ctx = Context::new(2);
    let a = sssp::sssp(execution::par, &ctx, &g, 0);
    let b = sssp::sssp(execution::par, &ctx, &reloaded, 0);
    assert_eq!(a.dist, b.dist);
}

#[test]
fn distributed_equals_shared_equals_sequential() {
    let g = weighted_rmat(9, 11);
    let ctx = Context::new(4);
    let oracle = sssp::dijkstra(&g, 0);

    // Shared memory, all policies.
    for dist in [
        sssp::sssp(execution::seq, &ctx, &g, 0).dist,
        sssp::sssp(execution::par, &ctx, &g, 0).dist,
        sssp::sssp_async(&ctx, &g, 0).dist,
    ] {
        assert!(dist
            .iter()
            .zip(&oracle.dist)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3));
    }

    // Message passing over every partitioner and rank count.
    let n = g.get_num_vertices();
    for partitioning in [
        random_partition(n, 3, 2),
        multilevel_partition(&g, MultilevelConfig::new(4)),
    ] {
        let pg = PartitionedGraph::build(&g, &partitioning);
        let (dist, stats) = mp_sssp(&pg, 0);
        assert!(dist
            .iter()
            .zip(&oracle.dist)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3));
        assert!(stats.messages_total > 0);
    }
}

#[test]
fn partition_quality_flows_through_to_message_volume() {
    let g = Graph::<()>::from_coo(&gen::grid2d(40, 40)).with_csc();
    let n = g.get_num_vertices();
    let rnd = random_partition(n, 4, 1);
    let ml = multilevel_partition(&g, MultilevelConfig::new(4));
    assert!(edge_cut(&g, &ml) < edge_cut(&g, &rnd) / 3);

    let (lv_rnd, st_rnd) = mp_bfs(&PartitionedGraph::build(&g, &rnd), 0);
    let (lv_ml, st_ml) = mp_bfs(&PartitionedGraph::build(&g, &ml), 0);
    assert_eq!(lv_rnd, lv_ml);
    assert!(st_ml.messages_remote < st_rnd.messages_remote / 3);
    // Total message volume is partition-independent (one per edge for BFS).
    assert_eq!(st_rnd.messages_total, st_ml.messages_total);
}

#[test]
fn undirected_pipeline_cc_and_pagerank() {
    // Watts-Strogatz is connected by construction at beta=0.1.
    let coo = gen::watts_strogatz(500, 3, 0.1, 3);
    let g = GraphBuilder::from_coo(coo).deduplicate().with_csc().build();
    let ctx = Context::new(2);

    let comp = cc::cc_label_propagation(execution::par, &ctx, &g);
    assert_eq!(cc::num_components(&comp.comp), 1);
    assert!(cc::verify_cc(&g, &comp.comp));

    let pr = pagerank::pagerank_pull(execution::par, &ctx, &g, pagerank::PrConfig::default());
    assert!(pagerank::verify_pagerank(&g, &pr.rank, 0.85, 1e-7));

    let b = bfs::bfs(execution::par, &ctx, &g, 42);
    assert!(b.level.iter().all(|&l| l != bfs::UNVISITED));
}

#[test]
fn partitioned_graph_is_a_drop_in_representation() {
    // §III-D: algorithms can run directly on the partitioned representation
    // through the graph traits (the delegation path), not only through MP.
    let g = weighted_rmat(8, 7);
    let p = multilevel_partition(&g, MultilevelConfig::new(3));
    let pg = PartitionedGraph::build(&g, &p);
    let ctx = Context::new(2);
    // neighbors_expand is generic over EdgeWeights: run a full BFS wave.
    let mut frontier = SparseFrontier::single(0);
    let visited = DenseFrontier::new(g.get_num_vertices());
    visited.insert(0);
    let mut waves = Vec::new();
    while !frontier.is_empty() {
        frontier = neighbors_expand(execution::par, &ctx, &pg, &frontier, |_s, d, _e, _w| {
            visited.insert(d)
        });
        waves.push(frontier.len());
    }
    // Same reachable set as the flat graph.
    let flat = bfs::bfs_sequential(&g, 0);
    let reachable = flat.level.iter().filter(|&&l| l != bfs::UNVISITED).count();
    assert_eq!(visited.len(), reachable);
}
