//! Failure injection: malformed inputs must be rejected loudly at the
//! boundary (builder, readers, parameter validation), never propagated into
//! silent wrong answers.

use essentials::prelude::*;
use essentials_io as io;

// ---- graph construction ---------------------------------------------------

#[test]
#[should_panic(expected = "out of range")]
fn builder_rejects_out_of_range_endpoints() {
    let _ = GraphBuilder::<f32>::new(2).edge(0, 7, 1.0);
}

#[test]
#[should_panic(expected = "NaN")]
fn builder_rejects_nan_weights() {
    let _ = GraphBuilder::<f32>::new(2).edge(0, 1, f32::NAN);
}

#[test]
#[should_panic(expected = "row_offsets must end")]
fn raw_csr_rejects_inconsistent_offsets() {
    let _ = Csr::<f32>::from_raw(vec![0, 5], vec![0], vec![1.0]);
}

#[test]
#[should_panic(expected = "column index out of range")]
fn raw_csr_rejects_out_of_range_columns() {
    let _ = Csr::<f32>::from_raw(vec![0, 1], vec![9], vec![1.0]);
}

// ---- readers ----------------------------------------------------------

#[test]
fn matrix_market_rejects_garbage_without_panicking() {
    for bad in [
        "",                                                                // empty
        "hello world\n",                                                   // no banner
        "%%MatrixMarket matrix array real general\n2 2 4\n",               // array format
        "%%MatrixMarket matrix coordinate real general\n2\n",              // bad size line
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", // 0-based index
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 nan\n", // NaN
        "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 2 1.0\n", // count mismatch
    ] {
        assert!(
            io::read_matrix_market(bad.as_bytes()).is_err(),
            "accepted: {bad:?}"
        );
    }
}

#[test]
fn edge_list_rejects_garbage_without_panicking() {
    for bad in ["0\n", "a b\n", "0 1 notaweight\n", "0 1 nan\n"] {
        assert!(
            io::read_edge_list(bad.as_bytes(), 0).is_err(),
            "accepted: {bad:?}"
        );
    }
}

#[test]
fn binary_reader_survives_bit_flips() {
    // Flip every byte of a valid snapshot one at a time: the reader must
    // either error out or return a graph that passes validation — it must
    // never panic. (Value bytes may legitimately decode to different
    // weights; structural bytes must be caught.)
    let coo = Coo::from_edges(4, [(0, 1, 1.0f32), (2, 3, 2.0), (1, 2, 0.5)]);
    let bytes = io::write_binary(&Csr::from_coo(&coo)).to_vec();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        let outcome = std::panic::catch_unwind(|| io::read_binary(&corrupted));
        let result = outcome.unwrap_or_else(|_| panic!("panicked on flipped byte {i}"));
        if let Ok(g) = result {
            // Anything that parses must be structurally sound.
            assert!(g.row_offsets().windows(2).all(|w| w[0] <= w[1]));
            assert!(g
                .column_indices()
                .iter()
                .all(|&c| (c as usize) < g.num_vertices()));
        }
    }
}

// ---- algorithm parameter validation ------------------------------------

#[test]
#[should_panic(expected = "delta must be positive")]
fn delta_stepping_rejects_nonpositive_delta() {
    let g = Graph::from_coo(&Coo::from_edges(2, [(0, 1, 1.0f32)]));
    essentials_algos::sssp::delta_stepping(execution::seq, &Context::sequential(), &g, 0, 0.0);
}

#[test]
#[should_panic(expected = "dimension mismatch")]
fn spmv_rejects_wrong_vector_length() {
    let g = Graph::<f32>::from_coo(&Coo::new(3));
    essentials_algos::spmv::spmv(execution::seq, &Context::sequential(), &g, &[1.0]);
}

#[test]
#[should_panic(expected = "at least one seed")]
fn ppr_rejects_empty_seed_set() {
    let g = Graph::<()>::from_coo(&Coo::from_edges(2, [(0, 1, ())])).with_csc();
    essentials_algos::pagerank::personalized_pagerank(
        execution::seq,
        &Context::sequential(),
        &g,
        &[],
        essentials_algos::pagerank::PrConfig::default(),
    );
}

// ---- out-of-bounds sources ----------------------------------------------

#[test]
fn algorithms_panic_rather_than_wrap_on_bad_source() {
    let g = Graph::from_coo(&Coo::from_edges(2, [(0, 1, 1.0f32)]));
    let ctx = Context::sequential();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        essentials_algos::sssp::sssp(execution::seq, &ctx, &g, 99)
    }));
    assert!(r.is_err(), "out-of-range source must not return quietly");
}
