//! The failure-taxonomy contract: every typed error the serving stack can
//! surface has a `kind()` label that is **stable** (pinned here — renaming
//! one is an API break for obs rows and harness JSON), **unique** within
//! its taxonomy, and **documented** in DESIGN.md (§10 for execution
//! errors, §13/§16 for serving rejections and outcomes).
//!
//! The one deliberate cross-taxonomy overlap is `"cancelled"`: the same
//! client action (firing a `CancelToken`) is reported with the same label
//! whether it lands while the request is queued (`AdmissionError`) or
//! mid-run (`ExecError::Budget`) — the stage split is visible in
//! `queue_ns`/`service_ns`, not in the label.

use essentials_parallel::{BudgetReason, ExecError, Progress};
use essentials_serve::{AdmissionError, Outcome, ServeError};
use std::collections::HashSet;

fn exec_errors() -> Vec<(ExecError, &'static str)> {
    vec![
        (
            ExecError::WorkerPanic {
                payload: "boom".into(),
                chunk: 3,
            },
            "worker-panic",
        ),
        (
            ExecError::Budget {
                reason: BudgetReason::Cancelled,
                progress: Progress::default(),
            },
            "cancelled",
        ),
        (
            ExecError::Budget {
                reason: BudgetReason::DeadlineExpired,
                progress: Progress::default(),
            },
            "deadline-expired",
        ),
        (
            ExecError::Budget {
                reason: BudgetReason::IterationCap,
                progress: Progress::default(),
            },
            "iteration-cap",
        ),
        (
            ExecError::Diverged {
                iteration: 2,
                detail: "residual rose".into(),
            },
            "diverged",
        ),
        (
            ExecError::InvalidInput {
                detail: "source 99 out of range".into(),
            },
            "invalid-input",
        ),
    ]
}

fn admission_errors() -> Vec<(AdmissionError, &'static str)> {
    vec![
        (AdmissionError::QueueDeadline, "queue-deadline"),
        (AdmissionError::Cancelled, "cancelled"),
        (AdmissionError::Shed, "shed"),
    ]
}

fn outcomes() -> Vec<(Outcome, &'static str)> {
    vec![
        (Outcome::Full, "ok"),
        (
            Outcome::Degraded {
                iterations: 3,
                residual: 0.25,
            },
            "degraded",
        ),
    ]
}

#[test]
fn every_kind_label_is_stable_and_unique_within_its_taxonomy() {
    let mut exec_seen = HashSet::new();
    for (e, want) in exec_errors() {
        assert_eq!(e.kind(), want, "ExecError label drifted for {e:?}");
        assert!(
            exec_seen.insert(e.kind()),
            "duplicate ExecError label {:?}",
            e.kind()
        );
    }
    let mut adm_seen = HashSet::new();
    for (e, want) in admission_errors() {
        assert_eq!(e.kind(), want, "AdmissionError label drifted for {e:?}");
        assert!(
            adm_seen.insert(e.kind()),
            "duplicate AdmissionError label {:?}",
            e.kind()
        );
    }
    let mut out_seen = HashSet::new();
    for (o, want) in outcomes() {
        assert_eq!(o.label(), want, "Outcome label drifted for {o:?}");
        assert!(
            out_seen.insert(o.label()),
            "duplicate Outcome label {:?}",
            o.label()
        );
    }
    // Outcome labels never collide with error kinds — a RequestEvent
    // outcome column is unambiguous.
    for o in out_seen {
        assert!(
            !exec_seen.contains(o) && !adm_seen.contains(o),
            "outcome label {o:?} collides with an error kind"
        );
    }
    // Across the two error taxonomies, the only shared label is the
    // documented "cancelled" overlap (same client action, either stage).
    let overlap: Vec<_> = exec_seen.intersection(&adm_seen).collect();
    assert_eq!(
        overlap,
        vec![&"cancelled"],
        "unexpected cross-taxonomy overlap"
    );
}

#[test]
fn serve_error_passes_kinds_through_unchanged() {
    for (e, want) in admission_errors() {
        assert_eq!(ServeError::Rejected(e).kind(), want);
    }
    for (e, want) in exec_errors() {
        assert_eq!(ServeError::Exec(e).kind(), want);
    }
}

#[test]
fn every_label_is_kebab_case_or_ok() {
    let all: Vec<&'static str> = exec_errors()
        .iter()
        .map(|&(_, k)| k)
        .chain(admission_errors().iter().map(|&(_, k)| k))
        .chain(outcomes().iter().map(|&(_, k)| k))
        .collect();
    for label in all {
        assert!(
            label.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "label {label:?} is not lowercase-kebab"
        );
        assert!(!label.starts_with('-') && !label.ends_with('-'));
    }
}

#[test]
fn every_label_is_documented_in_design_md() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md readable");
    let labels: Vec<&'static str> = exec_errors()
        .iter()
        .map(|&(_, k)| k)
        .chain(admission_errors().iter().map(|&(_, k)| k))
        .chain(outcomes().iter().map(|&(_, k)| k))
        .collect();
    for label in labels {
        let tagged = format!("`{label}`");
        assert!(
            design.contains(&tagged),
            "label {label:?} must be documented (as {tagged}) in DESIGN.md"
        );
    }
}
