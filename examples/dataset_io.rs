//! Dataset I/O workflow: generate → persist (MatrixMarket, edge list,
//! binary snapshot) → reload → analyze — the round trip a user performs
//! when moving between essentials-rs and external tooling. Real
//! SuiteSparse/SNAP files drop into the same readers.
//!
//! Run: `cargo run --release --example dataset_io`

use std::io::BufReader;

use essentials::prelude::*;
use essentials_algos::{cc, pagerank};
use essentials_gen as gen;
use essentials_io as io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("essentials_dataset_io");
    std::fs::create_dir_all(&dir)?;

    // A small-world "collaboration network" with hashed weights.
    let coo = {
        let mut c = gen::watts_strogatz(2000, 5, 0.05, 7);
        c.sort_and_dedup();
        c
    };
    let weighted = gen::hash_weights(&coo, 0.5, 3.0, 7);
    println!(
        "generated: {} vertices, {} edges",
        weighted.num_vertices(),
        weighted.num_edges()
    );

    // --- Write all three formats ----------------------------------------
    let mtx_path = dir.join("graph.mtx");
    io::write_matrix_market(std::fs::File::create(&mtx_path)?, &weighted)?;
    let el_path = dir.join("graph.txt");
    io::write_edge_list(std::fs::File::create(&el_path)?, &weighted)?;
    let bin_path = dir.join("graph.esnt");
    let csr = Csr::from_coo(&weighted);
    std::fs::write(&bin_path, io::write_binary(&csr))?;
    for p in [&mtx_path, &el_path, &bin_path] {
        println!(
            "wrote {} ({} bytes)",
            p.display(),
            std::fs::metadata(p)?.len()
        );
    }

    // --- Reload through each reader and check equivalence ----------------
    let (from_mtx, header) =
        io::read_matrix_market(BufReader::new(std::fs::File::open(&mtx_path)?))?;
    println!(
        "matrix market: {}x{} with {} entries ({:?})",
        header.rows, header.cols, header.entries, header.symmetry
    );
    let from_el = io::read_edge_list(
        BufReader::new(std::fs::File::open(&el_path)?),
        weighted.num_vertices(),
    )?;
    let from_bin = io::read_binary(&std::fs::read(&bin_path)?)?;
    assert_eq!(Csr::from_coo(&from_mtx), csr);
    assert_eq!(Csr::from_coo(&from_el), csr);
    assert_eq!(from_bin, csr);
    println!("all three readers reproduce the same CSR ✓");

    // --- Analyze the reloaded graph --------------------------------------
    let g = Graph::from_csr(from_bin).with_csc();
    let ctx = Context::default();
    let comps = cc::cc_label_propagation(execution::par, &ctx, &g);
    let pr = pagerank::pagerank_pull(execution::par, &ctx, &g, pagerank::PrConfig::default());
    assert!(pagerank::verify_pagerank(&g, &pr.rank, 0.85, 1e-7));
    println!(
        "analysis: {} component(s), pagerank converged in {} iterations",
        cc::num_components(&comps.comp),
        pr.stats.iterations
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
