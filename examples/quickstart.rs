//! Quickstart: the paper's Listings 1–4 end to end.
//!
//! Builds a small weighted graph behind the native-graph API (Listing 1),
//! seeds a frontier (Listing 2), and runs the Listing-4 SSSP — a
//! bulk-synchronous loop around the policy-parameterized `neighbors_expand`
//! operator (Listing 3) — then cross-checks against Dijkstra.
//!
//! Run: `cargo run --release --example quickstart`

use essentials::prelude::*;
use essentials_algos::sssp::{dijkstra, sssp, verify_sssp};

fn main() {
    // Listing 1: a graph stored as CSR, queried through a graph API.
    // (The builder normalizes input and can stack CSC/COO views.)
    let g: Graph<f32> = GraphBuilder::new(7)
        .edges([
            (0, 1, 4.0),
            (0, 2, 1.0),
            (2, 1, 2.0),
            (1, 3, 1.0),
            (2, 3, 5.0),
            (3, 4, 3.0),
            (2, 5, 8.0),
            (5, 4, 1.0),
            (4, 6, 2.0),
        ])
        .build();
    println!(
        "graph: {} vertices, {} edges",
        g.get_num_vertices(),
        g.get_num_edges()
    );
    let e = g.get_edges(0).start;
    println!(
        "edge {e}: 0 -> {} (weight {})",
        g.get_dest_vertex(e),
        g.get_edge_weight(e)
    );

    // Listing 4: parallel SSSP with the bulk-synchronous policy.
    let ctx = Context::default();
    let result = sssp(execution::par, &ctx, &g, 0);
    println!(
        "\nSSSP from vertex 0 ({} supersteps):",
        result.stats.iterations
    );
    for (v, d) in result.dist.iter().enumerate() {
        println!("  dist[{v}] = {d}");
    }

    // Verify: fixpoint check + agreement with the sequential oracle.
    assert!(verify_sssp(&g, 0, &result.dist, 1e-6));
    let oracle = dijkstra(&g, 0);
    assert_eq!(result.dist, oracle.dist);
    println!("\nverified against Dijkstra ✓");

    // The policy is a type: the same call runs sequentially or
    // asynchronously with identical results.
    let seq = sssp(execution::seq, &ctx, &g, 0);
    let nosync = sssp(execution::par_nosync, &ctx, &g, 0);
    assert_eq!(seq.dist, result.dist);
    assert_eq!(nosync.dist, result.dist);
    println!("policy equivalence (seq == par == par_nosync) ✓");
}
