//! Road-network navigation: the high-diameter uniform regime.
//!
//! Builds a weighted grid standing in for a road network and compares every
//! SSSP variant the abstraction hosts — Listing-4 BSP, asynchronous
//! (no-barrier), Δ-stepping, and the sequential baselines — reporting
//! wall time, supersteps, and edge relaxations (the machine-independent
//! work measure). All variants must return identical distances.
//!
//! Run: `cargo run --release --example road_navigation`

use std::time::Instant;

use essentials::prelude::*;
use essentials_algos::sssp;
use essentials_gen as gen;

fn main() {
    // A 256×256 "city": 65k intersections, 4-connected, hashed travel times.
    let coo = gen::grid2d(256, 256);
    let g = Graph::from_coo(&gen::hash_weights(&coo, 0.5, 3.0, 7));
    println!(
        "road network: {} intersections, {} road segments",
        g.get_num_vertices(),
        g.get_num_edges()
    );
    let ctx = Context::default();
    let source: VertexId = 0;

    let mut reference: Option<Vec<f32>> = None;
    let mut report = |name: &str, f: &dyn Fn() -> (Vec<f32>, usize, usize)| {
        let t = Instant::now();
        let (dist, iters, relax) = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        match &reference {
            None => {
                assert!(sssp::verify_sssp(&g, source, &dist, 1e-4));
                reference = Some(dist);
            }
            Some(r) => {
                let ok = r
                    .iter()
                    .zip(&dist)
                    .all(|(a, b)| (a - b).abs() <= 1e-3 * (1.0 + a.abs()));
                assert!(ok, "{name} diverged from the reference distances");
            }
        }
        println!("  {name:<22} {ms:>9.2} ms  {iters:>6} iters  {relax:>9} relaxations");
    };

    println!("\nSSSP from the north-west corner:");
    report("dijkstra (baseline)", &|| {
        let r = sssp::dijkstra(&g, source);
        (r.dist, r.stats.iterations, r.relaxations)
    });
    report("bellman-ford", &|| {
        let r = sssp::bellman_ford(&g, source);
        (r.dist, r.stats.iterations, r.relaxations)
    });
    report("bsp (listing 4, seq)", &|| {
        let r = sssp::sssp(execution::seq, &ctx, &g, source);
        (r.dist, r.stats.iterations, r.relaxations)
    });
    report("bsp (listing 4, par)", &|| {
        let r = sssp::sssp(execution::par, &ctx, &g, source);
        (r.dist, r.stats.iterations, r.relaxations)
    });
    report("async (no barriers)", &|| {
        let r = sssp::sssp_async(&ctx, &g, source);
        (r.dist, r.stats.iterations, r.relaxations)
    });
    for delta in [0.5, 2.0, 8.0] {
        let name = format!("delta-stepping {delta}");
        report(&name, &|| {
            let r = sssp::delta_stepping(execution::par, &ctx, &g, source, delta);
            (r.dist, r.stats.iterations, r.relaxations)
        });
    }

    // The grid's hop diameter shows why BSP pays here: one superstep per
    // wavefront.
    let bfs = essentials_algos::bfs::bfs(execution::par, &ctx, &g, source);
    let hops = bfs
        .level
        .iter()
        .filter(|&&l| l != essentials_algos::bfs::UNVISITED)
        .max()
        .copied()
        .unwrap_or(0);
    println!("\nhop diameter from source: {hops} (≈ BSP supersteps needed)");
}
