//! Community recovery via partitioning: a caveman graph has planted
//! communities (cliques with light rewiring); a good partitioning
//! heuristic should cut almost nothing but the rewired edges, while a
//! random assignment cuts nearly everything. Also shows the partition
//! quality flowing into message-passing volume.
//!
//! Run: `cargo run --release --example community_detection`

use essentials::prelude::*;
use essentials_gen as gen;
use essentials_mp::algorithms::mp_bfs;
use essentials_partition::{
    balance, edge_cut, multilevel_partition, random_partition, MultilevelConfig, PartitionedGraph,
};

fn main() {
    const COMMUNITIES: usize = 8;
    const SIZE: usize = 64;
    let coo = gen::caveman(COMMUNITIES, SIZE, 0.05, 11);
    let g = GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .deduplicate()
        .build();
    println!(
        "caveman graph: {} communities × {} vertices, {} edges (5% rewired)",
        COMMUNITIES,
        SIZE,
        g.get_num_edges()
    );

    let n = g.get_num_vertices();
    let ml = multilevel_partition(&g, MultilevelConfig::new(COMMUNITIES));
    let rnd = random_partition(n, COMMUNITIES, 3);

    println!("\n{:<12} {:>9} {:>9}", "", "edge-cut", "balance");
    for (name, p) in [("multilevel", &ml), ("random", &rnd)] {
        println!("{name:<12} {:>9} {:>9.3}", edge_cut(&g, p), balance(p));
    }

    // How well do the discovered parts match the planted communities?
    // For each part, find its majority community; accuracy = fraction of
    // vertices assigned to their majority part.
    let accuracy = |p: &essentials_partition::Partitioning| -> f64 {
        let mut majority = vec![vec![0usize; COMMUNITIES]; COMMUNITIES];
        for v in 0..n {
            majority[p.assignment[v] as usize][v / SIZE] += 1;
        }
        let agree: usize = majority.iter().map(|row| row.iter().max().unwrap()).sum();
        agree as f64 / n as f64
    };
    println!(
        "\nplanted-community agreement: multilevel {:.1}%, random {:.1}%",
        100.0 * accuracy(&ml),
        100.0 * accuracy(&rnd)
    );

    // The cut difference is exactly the message-volume difference for a
    // distributed traversal.
    let (_, s_ml) = mp_bfs(&PartitionedGraph::build(&g, &ml), 0);
    let (_, s_rnd) = mp_bfs(&PartitionedGraph::build(&g, &rnd), 0);
    println!(
        "distributed BFS remote messages: multilevel {}, random {}",
        s_ml.messages_remote, s_rnd.messages_remote
    );
}
