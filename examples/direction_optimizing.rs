//! Push vs. pull vs. adaptive traversal (§III-C).
//!
//! Runs BFS three ways on a power-law graph and a mesh, printing the
//! per-iteration frontier trace and the direction the adaptive engine's
//! [`DirectionPolicy`] chose. The RMAT run shows the classic pattern: push
//! through the sparse early frontiers, pull through the dense middle, push
//! again on the tail. A second RMAT pass with a deliberately eager policy
//! (`alpha` high, `gamma` low) shows the knobs changing the decision — the
//! heuristic is data the algorithm consults, not code baked into BFS.
//!
//! Run: `cargo run --release --example direction_optimizing`

use essentials::prelude::*;
use essentials_algos::bfs::{
    bfs, bfs_direction_optimizing, bfs_pull, bfs_sequential, bfs_with_policy, DoParams,
};
use essentials_gen as gen;

fn print_trace(r: &essentials_algos::bfs::BfsResult, n: usize) {
    println!("iter  direction   frontier");
    for (i, (dir, len)) in r.directions.iter().zip(&r.stats.frontier_trace).enumerate() {
        let bar = "#".repeat((*len * 40 / n.max(1)).min(40));
        let d = match dir {
            Direction::Push => "push",
            Direction::DensePush => "push·dense",
            Direction::Pull => "PULL",
            Direction::BlockedPull => "PULL·blk",
        };
        println!("{i:>4}  {d:<10} {len:>8} {bar}");
    }
}

fn trace(name: &str, g: &Graph<()>, ctx: &Context) {
    let oracle = bfs_sequential(g, 0);
    let push = bfs(execution::par, ctx, g, 0);
    let pull = bfs_pull(execution::par, ctx, g, 0);
    let dopt = bfs_direction_optimizing(execution::par, ctx, g, 0, DoParams::default());
    for (vname, r) in [("push", &push), ("pull", &pull), ("adaptive", &dopt)] {
        assert_eq!(r.level, oracle.level, "{vname} diverged on {name}");
    }
    println!(
        "\n=== {name}: {} vertices, {} edges ===",
        g.get_num_vertices(),
        g.get_num_edges()
    );
    println!(
        "edges inspected: push {}, pull {}, adaptive {}",
        push.edges_inspected, pull.edges_inspected, dopt.edges_inspected
    );
    print_trace(&dopt, g.get_num_vertices());
}

fn main() {
    let ctx = Context::default();

    // Power-law: dense middle phase → the policy switches to pull.
    let rmat = GraphBuilder::from_coo(gen::rmat(13, 16, gen::RmatParams::default(), 1))
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
        .with_csc()
        .build();
    trace("RMAT-13 (social)", &rmat, &ctx);

    // Same graph, a policy that refuses pull (huge alpha) but goes to the
    // bitmap representation early (gamma 64): all push, dense where fat.
    let eager = DirectionPolicy {
        alpha: usize::MAX,
        gamma: 64,
        ..DirectionPolicy::default()
    };
    let r = bfs_with_policy(execution::par, &ctx, &rmat, 0, eager);
    println!("\n--- same graph, pull disabled (alpha = MAX) ---");
    println!("edges inspected: {}", r.edges_inspected);
    print_trace(&r, rmat.get_num_vertices());

    // Mesh: frontiers never densify → stays sparse push throughout.
    let grid = GraphBuilder::from_coo(gen::grid2d(96, 96))
        .with_csc()
        .build();
    trace("grid 96x96 (road)", &grid, &ctx);
}
