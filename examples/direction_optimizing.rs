//! Push vs. pull vs. direction-optimizing traversal (§III-C).
//!
//! Runs BFS three ways on a power-law graph and a mesh, printing the
//! per-iteration frontier trace and the direction the optimizer chose.
//! The RMAT run shows the classic pattern: push through the sparse early
//! frontiers, pull through the dense middle, push again on the tail.
//!
//! Run: `cargo run --release --example direction_optimizing`

use essentials::prelude::*;
use essentials_algos::bfs::{
    bfs, bfs_direction_optimizing, bfs_pull, bfs_sequential, Direction, DoParams,
};
use essentials_gen as gen;

fn trace(name: &str, g: &Graph<()>, ctx: &Context) {
    let oracle = bfs_sequential(g, 0);
    let push = bfs(execution::par, ctx, g, 0);
    let pull = bfs_pull(execution::par, ctx, g, 0);
    let dopt = bfs_direction_optimizing(execution::par, ctx, g, 0, DoParams::default());
    for (vname, r) in [("push", &push), ("pull", &pull), ("do", &dopt)] {
        assert_eq!(r.level, oracle.level, "{vname} diverged on {name}");
    }
    println!("\n=== {name}: {} vertices, {} edges ===", g.get_num_vertices(), g.get_num_edges());
    println!(
        "edges inspected: push {}, pull {}, direction-optimizing {}",
        push.edges_inspected, pull.edges_inspected, dopt.edges_inspected
    );
    println!("iter  direction  frontier");
    for (i, (dir, len)) in dopt
        .directions
        .iter()
        .zip(&dopt.stats.frontier_trace)
        .enumerate()
    {
        let bar = "#".repeat((*len * 40 / g.get_num_vertices().max(1)).min(40));
        let d = match dir {
            Direction::Push => "push",
            Direction::Pull => "PULL",
        };
        println!("{i:>4}  {d:<9} {len:>8} {bar}");
    }
}

fn main() {
    let ctx = Context::default();

    // Power-law: dense middle phase → the optimizer switches to pull.
    let rmat = GraphBuilder::from_coo(gen::rmat(13, 16, gen::RmatParams::default(), 1))
        .remove_self_loops()
        .deduplicate()
        .symmetrize()
        .with_csc()
        .build();
    trace("RMAT-13 (social)", &rmat, &ctx);

    // Mesh: frontiers never densify → stays push throughout.
    let grid = GraphBuilder::from_coo(gen::grid2d(96, 96)).with_csc().build();
    trace("grid 96x96 (road)", &grid, &ctx);
}
