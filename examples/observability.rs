//! Observability: watching an algorithm work without touching it.
//!
//! Attaches a `TeeSink` fanning out to a `CountersSink` (exact work
//! totals, per-worker load-balance skew) and a `TraceSink` (every
//! operator call and iteration span, in order) to the `Context`, runs
//! direction-optimizing BFS and SSSP, and renders what the sinks saw —
//! including the push→pull switch decisions of the β heuristic.
//!
//! The same algorithms run unmodified: observability rides on the context,
//! so no algorithm code knows whether anyone is watching (and with no sink
//! attached the hooks cost one `None` check per operator call).
//!
//! Run: `cargo run --release --example observability`

use std::sync::Arc;

use essentials::prelude::*;
use essentials_algos::{bfs, sssp};
use essentials_core::obs::Record;
use essentials_gen as gen;

fn main() {
    let g = GraphBuilder::from_coo(gen::rmat(10, 8, gen::RmatParams::default(), 42))
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build();
    let wg = {
        let mut coo = gen::rmat(10, 8, gen::RmatParams::default(), 42);
        coo.remove_self_loops();
        coo.symmetrize();
        coo.sort_and_dedup();
        let mut wg = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 7));
        wg.ensure_csc();
        wg
    };
    println!(
        "graph: {} vertices, {} edges\n",
        g.get_num_vertices(),
        g.get_num_edges()
    );

    // The whole observability setup: two sinks behind one tee, one builder
    // call on the context.
    let ctx = Context::new(4);
    let counters = Arc::new(CountersSink::new(ctx.pool().num_threads()));
    let trace = Arc::new(TraceSink::new());
    let ctx = ctx.with_obs(Arc::new(
        TeeSink::new()
            .with(counters.clone() as Arc<dyn ObsSink>)
            .with(trace.clone() as Arc<dyn ObsSink>),
    ));

    trace.mark("bfs");
    let r = bfs::bfs_direction_optimizing(execution::par, &ctx, &g, 0, bfs::DoParams::default());
    trace.mark("sssp");
    sssp::sssp(execution::par, &ctx, &wg, 0);

    // The trace knows *when* things happened: print the direction each BFS
    // iteration chose and what the β rule saw.
    println!("direction decisions (BFS):");
    for rec in trace.records() {
        if let Record::Direction(d) = rec {
            println!(
                "  iter {:>2}: frontier {:>5} vertices / {:>6} edges, {:>6} unexplored -> {}",
                d.iteration,
                d.frontier_len,
                d.frontier_edges,
                d.unexplored_edges,
                if d.pull { "PULL" } else { "push" }
            );
        }
    }
    let pulls = r
        .directions
        .iter()
        .filter(|&&d| d == bfs::Direction::Pull)
        .count();
    println!("  ({pulls} of {} iterations pulled)\n", r.directions.len());

    // The summary folds the trace into the headline numbers.
    println!("trace summary (both algorithms):");
    println!("{}\n", Summary::from_records(&trace.records()).render());

    // The counters know *how much* happened, exactly.
    let t = counters.snapshot();
    println!("counter totals:");
    println!("  advance calls    {:>8}", t.advance_calls);
    println!("  edges inspected  {:>8}", t.edges_inspected);
    println!("  edges admitted   {:>8}", t.edges_admitted);
    println!("  vertices pushed  {:>8}", t.vertices_pushed);
    println!("  dedup hits       {:>8}", t.dedup_hits);
    println!(
        "  per-worker pushes {:?} (skew {:.3})",
        t.per_worker_pushes,
        t.skew_ratio()
    );
}
