//! Social-network analytics: the skewed power-law regime.
//!
//! Generates an RMAT graph standing in for a social network and runs the
//! ranking/structure side of the suite: PageRank (push and pull — same
//! fixpoint, different traversal direction), HITS, triangle counting,
//! k-core decomposition, and greedy coloring. Prints the influencer table
//! and structural summaries.
//!
//! Run: `cargo run --release --example social_ranking`

use essentials::prelude::*;
use essentials_algos::{color, kcore, pagerank, tc};
use essentials_gen as gen;

fn main() {
    // A skewed "who-follows-whom" network: 2^12 users, ~16 edges each.
    let coo = gen::rmat(12, 16, gen::RmatParams::default(), 42);
    let g = GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .deduplicate()
        .with_csc() // pull traversals need the transpose
        .build();
    let stats = essentials::graph::properties::degree_stats(g.csr());
    println!(
        "network: {} users, {} follows, max degree {} (skew {:.1})",
        g.get_num_vertices(),
        g.get_num_edges(),
        stats.max,
        stats.skew
    );

    let ctx = Context::default();

    // --- PageRank: both directions converge to the same fixpoint --------
    let cfg = pagerank::PrConfig::default();
    let pull = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
    let push = pagerank::pagerank_push(execution::par, &ctx, &g, cfg);
    let max_diff = pull
        .rank
        .iter()
        .zip(&push.rank)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nPageRank: pull {} iters, push {} iters, max |pull-push| = {max_diff:.2e}",
        pull.stats.iterations, push.stats.iterations
    );
    let mut top: Vec<(usize, f64)> = pull.rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top influencers (vertex, rank, out-degree):");
    for &(v, r) in top.iter().take(5) {
        println!("  v{v:<6} {r:.5}  deg {}", g.out_degree(v as VertexId));
    }

    // --- Structure: triangles, cores, coloring ---------------------------
    let sym = GraphBuilder::from_coo(g.csr().to_coo())
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .build();
    let tri = tc::triangle_count(execution::par, &ctx, &sym, true);
    println!(
        "\ntriangles: {} ({} adjacency intersections)",
        tri.triangles, tri.intersections
    );

    let cores = kcore::kcore_peel(execution::par, &ctx, &sym);
    let kmax = cores.core.iter().copied().max().unwrap_or(0);
    let in_kmax = cores.core.iter().filter(|&&c| c == kmax).count();
    println!(
        "k-core: max core {kmax} ({in_kmax} members, {} peel rounds)",
        cores.rounds
    );

    let coloring = color::color_greedy(execution::par, &ctx, &sym);
    assert!(color::verify_coloring(&sym, &coloring.color));
    println!(
        "coloring: {} colors in {} rounds (greedy bound {})",
        coloring.num_colors,
        coloring.rounds,
        color::greedy_bound(&sym)
    );
}
