//! Message-passing analytics over a partitioned graph (§III-B + §III-D).
//!
//! Partitions a mesh two ways — random (the baseline heuristic) and
//! multilevel (the METIS-family heuristic built in `essentials-partition`)
//! — then runs Pregel-style BFS and SSSP on thread-ranks that communicate
//! only through mailboxes. Shows the paper's §III-D claim in action (the
//! partitioned graph answers the same API) and how edge-cut predicts
//! message volume.
//!
//! Run: `cargo run --release --example distributed_bfs`

use essentials::prelude::*;
use essentials_gen as gen;
use essentials_mp::algorithms::{mp_bfs, mp_sssp};
use essentials_partition::{
    edge_cut, multilevel_partition, random_partition, MultilevelConfig, PartitionedGraph,
};

fn main() {
    let coo = gen::grid2d(64, 64);
    let g = Graph::from_coo(&gen::unit_weights(&coo));
    let n = g.get_num_vertices();
    println!("mesh: {n} vertices, {} edges", g.get_num_edges());

    let ctx = Context::default();
    let oracle = essentials_algos::bfs::bfs(execution::par, &ctx, &g, 0);

    println!(
        "\n{:<14} {:>6} {:>10} {:>12} {:>12}",
        "partitioner", "k", "edge-cut", "msgs total", "msgs remote"
    );
    for k in [2, 4, 8] {
        for (name, partitioning) in [
            ("random", random_partition(n, k, 1)),
            (
                "multilevel",
                multilevel_partition(&g, MultilevelConfig::new(k)),
            ),
        ] {
            let cut = edge_cut(&g, &partitioning);
            let pg = PartitionedGraph::build(&g, &partitioning);
            // §III-D: the partitioned graph answers the same queries.
            assert_eq!(pg.out_neighbors(100), g.out_neighbors(100));
            let (levels, stats) = mp_bfs(&pg, 0);
            assert_eq!(
                levels, oracle.level,
                "distributed BFS must match shared-memory BFS"
            );
            println!(
                "{name:<14} {k:>6} {cut:>10} {:>12} {:>12}",
                stats.messages_total, stats.messages_remote
            );
        }
    }

    // Weighted SSSP through the same machinery.
    let p = multilevel_partition(&g, MultilevelConfig::new(4));
    let pg = PartitionedGraph::build(&g, &p);
    let (dist, stats) = mp_sssp(&pg, 0);
    let shared = essentials_algos::sssp::sssp(execution::par, &ctx, &g, 0);
    let agree = dist
        .iter()
        .zip(&shared.dist)
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4);
    assert!(agree);
    println!(
        "\ndistributed SSSP over 4 ranks: {} supersteps, {} messages — matches shared memory ✓",
        stats.supersteps, stats.messages_total
    );
}
