//! The known-bad fixture corpus: every rule must fire, with stable
//! diagnostics (exact file, line, rule id), and waived/clean/decoy lines
//! must stay silent. `tests/fixtures/ws` is a miniature multi-crate
//! workspace with its own per-field `LINT_ORDERINGS.toml` and seeded
//! violations for every rule, including the interprocedural ones.

use std::path::{Path, PathBuf};

use essentials_lint::run_root;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_with_stable_diagnostics() {
    let report = run_root(&fixture_root()).expect("fixture corpus must lint");
    let got: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: {}", d.path, d.line, d.rule))
        .collect();
    let want = [
        "LINT_ORDERINGS.toml:11: EL012",       // src/gone.rs is not a file
        "LINT_ORDERINGS.toml:17: EL012",       // Acquire allowed but unused
        "LINT_ORDERINGS.toml:30: EL013",       // Relaxed-only `ticks` entry, no barrier
        "crates/core/src/hot.rs:17: EL021",    // push two hops from the worker body
        "crates/core/src/hot.rs:26: EL050",    // lock inside the worker body
        "crates/core/src/leases.rs:15: EL031", // lease neither recycled nor escaping
        "crates/core/src/leases.rs:25: EL031", // caller drops the source's lease
        "crates/core/src/operators/advance.rs:4: EL020", // Vec::new in a hot path
        "crates/core/src/publish.rs:7: EL013", // Release store, no Acquire reader
        "crates/io/src/unwrap.rs:6: EL040",    // naked unwrap
        "crates/io/src/unwrap.rs:10: EL040",   // naked expect
        "crates/parallel/src/no_safety.rs:4: EL001", // unsafe without SAFETY
        "src/bad_ordering.rs:10: EL011",       // SeqCst outside the set
        "src/stray_unsafe.rs:6: EL002",        // unsafe outside allowlist
        "src/unpaired.rs:13: EL030",           // take without put
        "src/unpaired.rs:23: EL030",           // put without take
        "src/untracked.rs:6: EL010",           // atomics, no table entry
    ];
    assert_eq!(
        got,
        want,
        "full diagnostics:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn waived_and_annotated_lines_stay_silent() {
    let report = run_root(&fixture_root()).expect("fixture corpus must lint");
    let diags = &report.diagnostics;
    // The `alloc-ok:` waiver on advance.rs line 5 suppresses the push.
    assert!(
        !diags
            .iter()
            .any(|d| d.path.ends_with("advance.rs") && d.line == 5),
        "waived line was flagged"
    );
    // The SAFETY-annotated unsafe in stray_unsafe.rs triggers EL002 only.
    assert!(
        !diags
            .iter()
            .any(|d| d.path.ends_with("stray_unsafe.rs") && d.rule == "EL001"),
        "annotated unsafe was flagged for EL001"
    );
    // The decoy file (rule keywords in comments and strings) is clean.
    assert!(
        !diags.iter().any(|d| d.path.ends_with("clean.rs")),
        "decoy comments/strings fooled the lexer"
    );
    // The balanced take/put function is not an EL030.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.path.ends_with("unpaired.rs"))
            .count(),
        2,
        "only the two seeded pairing violations may fire"
    );
    // hot.rs decoys: the `block-ok:`-waived lock (line 34) and the lock
    // outside the worker closure (line 29) must both stay silent.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.path.ends_with("hot.rs"))
            .map(|d| d.line)
            .collect::<Vec<_>>(),
        vec![17, 26],
        "hot.rs may fire only at the two seeded lines"
    );
    // leases.rs decoys: the forwarder (lease returned onward, line 30) and
    // the balanced pair must stay silent.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.path.ends_with("leases.rs"))
            .map(|d| d.line)
            .collect::<Vec<_>>(),
        vec![15, 25],
        "leases.rs may fire only at the two seeded lines"
    );
}

#[test]
fn messages_carry_the_fix_hint() {
    let report = run_root(&fixture_root()).expect("fixture corpus must lint");
    let find = |rule: &str| {
        report
            .diagnostics
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("{rule} missing"))
    };
    assert!(find("EL001").msg.contains("SAFETY"));
    assert!(find("EL002").msg.contains("UNSAFE_ALLOWLIST"));
    assert!(find("EL010").msg.contains("LINT_ORDERINGS.toml"));
    assert!(find("EL011").msg.contains("allowed set"));
    assert!(find("EL012").msg.contains("stale"));
    assert!(find("EL020").msg.contains("alloc-ok"));
    assert!(find("EL021").msg.contains("alloc-ok"));
    assert!(find("EL030").msg.contains("take_scratch"));
    assert!(find("EL031").msg.contains("lease-ok"));
    assert!(find("EL040").msg.contains("unwrap-ok"));
    assert!(find("EL050").msg.contains("block-ok"));
    // Interprocedural findings carry their provenance: how many hops, and
    // from which worker chunk body.
    let el021 = find("EL021");
    assert!(
        el021.msg.contains("2 call hop(s)") && el021.msg.contains("crates/core/src/hot.rs:27"),
        "EL021 lost its provenance: {}",
        el021.msg
    );
}

#[test]
fn unresolved_edges_are_reported_not_dropped() {
    let report = run_root(&fixture_root()).expect("fixture corpus must lint");
    // Exactly the two seeded unresolvable calls: the trait-object dispatch
    // (a unique impl exists — it must STILL not be resolved) and the
    // ambiguous bare name defined in two crates.
    let got: Vec<String> = report
        .unresolved
        .iter()
        .map(|u| format!("{}:{}: {} ({})", u.path, u.line, u.callee, u.reason))
        .collect();
    assert_eq!(
        got,
        [
            "crates/core/src/dispatch.rs:15: emit (trait-dispatch(dyn Sink))",
            "crates/core/src/dispatch.rs:19: twin (ambiguous(2))",
        ],
        "unresolved-edge report drifted"
    );
    assert_eq!(report.stats.unresolved_calls, 2);
    assert!(
        report.stats.resolved_calls > 0,
        "resolver resolved nothing — the call graph is empty"
    );
    // Distinct (path, field) atomic keys: `c` in three files + `flag` and
    // `ticks` in publish.rs.
    assert_eq!(report.stats.atomic_fields, 5);
    assert_eq!(report.stats.files, 14, "fixture file count drifted");
}

#[test]
fn json_artifact_is_well_formed_and_complete() {
    let report = run_root(&fixture_root()).expect("fixture corpus must lint");
    let json = essentials_lint::report_to_json(&report);
    // Hand-rolled writer: sanity-check the shape without a JSON parser.
    assert!(json.starts_with("{\n"));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"diagnostics\""));
    assert!(json.contains("\"unresolved_calls\""));
    assert!(json.contains("\"stats\""));
    assert!(json.contains("\"trait-dispatch(dyn Sink)\""));
    // Every diagnostic's rule id appears.
    for d in &report.diagnostics {
        assert!(json.contains(d.rule), "rule {} missing from JSON", d.rule);
    }
    assert_eq!(
        json.matches("\"rule\"").count(),
        report.diagnostics.len(),
        "one rule key per diagnostic"
    );
}
