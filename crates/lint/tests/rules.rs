//! The known-bad fixture corpus: every rule must fire, with stable
//! diagnostics (exact file, line, rule id), and waived/clean lines must
//! stay silent. `tests/fixtures/ws` is a miniature workspace with its own
//! `LINT_ORDERINGS.toml` and one seeded violation per rule.

use std::path::{Path, PathBuf};

use essentials_lint::run_root;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_with_stable_diagnostics() {
    let diags = run_root(&fixture_root()).expect("fixture corpus must lint");
    let got: Vec<String> = diags
        .iter()
        .map(|d| format!("{}:{}: {}", d.path, d.line, d.rule))
        .collect();
    let want = [
        "LINT_ORDERINGS.toml:9: EL012",  // src/gone.rs is not a file
        "LINT_ORDERINGS.toml:14: EL012", // Acquire allowed but unused
        "crates/core/src/operators/advance.rs:4: EL020", // Vec::new in a hot path
        "crates/io/src/unwrap.rs:6: EL040", // naked unwrap
        "crates/io/src/unwrap.rs:10: EL040", // naked expect
        "crates/parallel/src/no_safety.rs:4: EL001", // unsafe without SAFETY
        "src/bad_ordering.rs:10: EL011", // SeqCst outside the set
        "src/stray_unsafe.rs:6: EL002",  // unsafe outside allowlist
        "src/unpaired.rs:13: EL030",     // take without put
        "src/unpaired.rs:23: EL030",     // put without take
        "src/untracked.rs:6: EL010",     // atomics, no table entry
    ];
    assert_eq!(
        got,
        want,
        "full diagnostics:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn waived_and_annotated_lines_stay_silent() {
    let diags = run_root(&fixture_root()).expect("fixture corpus must lint");
    // The `alloc-ok:` waiver on advance.rs line 5 suppresses the push.
    assert!(
        !diags
            .iter()
            .any(|d| d.path.ends_with("advance.rs") && d.line == 5),
        "waived line was flagged"
    );
    // The SAFETY-annotated unsafe in stray_unsafe.rs triggers EL002 only.
    assert!(
        !diags
            .iter()
            .any(|d| d.path.ends_with("stray_unsafe.rs") && d.rule == "EL001"),
        "annotated unsafe was flagged for EL001"
    );
    // The decoy file (rule keywords in comments and strings) is clean.
    assert!(
        !diags.iter().any(|d| d.path.ends_with("clean.rs")),
        "decoy comments/strings fooled the lexer"
    );
    // The balanced take/put function is not an EL030.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.path.ends_with("unpaired.rs"))
            .count(),
        2,
        "only the two seeded pairing violations may fire"
    );
}

#[test]
fn messages_carry_the_fix_hint() {
    let diags = run_root(&fixture_root()).expect("fixture corpus must lint");
    let find = |rule: &str| {
        diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("{rule} missing"))
    };
    assert!(find("EL001").msg.contains("SAFETY"));
    assert!(find("EL002").msg.contains("UNSAFE_ALLOWLIST"));
    assert!(find("EL010").msg.contains("LINT_ORDERINGS.toml"));
    assert!(find("EL011").msg.contains("allowed set"));
    assert!(find("EL012").msg.contains("stale"));
    assert!(find("EL020").msg.contains("alloc-ok"));
    assert!(find("EL030").msg.contains("take_scratch"));
    assert!(find("EL040").msg.contains("unwrap-ok"));
}
