//! The gate itself: the real workspace must lint clean. This is the same
//! check CI runs via `cargo run -p essentials-lint`, wired into `cargo
//! test` so a violation fails the ordinary test suite too.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let diags = essentials_lint::run_root(&root).expect("lint run must succeed");
    assert!(
        diags.is_empty(),
        "essentials-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
