//! The gate itself: the real workspace must lint clean. This is the same
//! check CI runs via `cargo run -p essentials-lint`, wired into `cargo
//! test` so a violation fails the ordinary test suite too.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = essentials_lint::run_root(&root).expect("lint run must succeed");
    assert!(
        report.diagnostics.is_empty(),
        "essentials-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The analyzer's own health: a resolver regression that silently zeroes
    // a category would make "clean" meaningless.
    let st = &report.stats;
    assert!(
        st.files > 100,
        "workspace walk collapsed: {} files",
        st.files
    );
    assert!(
        st.functions > 500,
        "parser lost functions: {}",
        st.functions
    );
    assert!(
        st.resolved_calls > 1000,
        "resolver collapsed: {} resolved edges",
        st.resolved_calls
    );
    assert!(
        st.unresolved_calls > 0,
        "an unresolved count of zero is a resolver bug, not perfection"
    );
    assert!(
        st.atomic_fields > 50,
        "atomic-field extraction collapsed: {}",
        st.atomic_fields
    );
}
