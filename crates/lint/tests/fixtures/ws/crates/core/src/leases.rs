//! Fixture: EL031 — one leaked lease, one source whose caller drops the
//! handoff, one forwarder (silent), one balanced pair (silent).

pub struct Ctx;
pub struct DenseFrontier;

impl Ctx {
    pub fn take_dense_frontier(&self, _n: usize) -> DenseFrontier {
        DenseFrontier
    }
    pub fn recycle_dense_frontier(&self, _f: DenseFrontier) {}
}

pub fn leaky(ctx: &Ctx) -> usize {
    let f = ctx.take_dense_frontier(8);
    let _ = f;
    0
}

pub fn source(ctx: &Ctx) -> DenseFrontier {
    ctx.take_dense_frontier(8)
}

pub fn dropper(ctx: &Ctx) {
    let f = source(ctx);
    let _ = f;
}

pub fn forwarder(ctx: &Ctx) -> DenseFrontier {
    source(ctx)
}

pub fn balanced(ctx: &Ctx) {
    let f = source(ctx);
    ctx.recycle_dense_frontier(f);
}
