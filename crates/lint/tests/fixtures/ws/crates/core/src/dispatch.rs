//! Fixture: the resolver reports what it cannot pin down — trait-object
//! dispatch and ambiguous bare names are unresolved edges, never dropped.

pub trait Sink {
    fn emit(&self, v: u32);
}

pub struct Console;

impl Sink for Console {
    fn emit(&self, _v: u32) {}
}

pub fn drive(s: &dyn Sink, v: u32) {
    s.emit(v);
}

pub fn call_twin() -> u32 {
    twin()
}

pub fn twin() -> u32 {
    1
}
