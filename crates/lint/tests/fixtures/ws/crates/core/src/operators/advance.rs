//! Fixture: EL020 — allocation in a hot-path module, one waived line.

pub fn hot(out: &mut Vec<u32>) {
    let mut tmp = Vec::new();
    tmp.push(1); // alloc-ok: fixture waiver — this line must NOT be flagged
    out.extend_from_slice(&tmp);
}
