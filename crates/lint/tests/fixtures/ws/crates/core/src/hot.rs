//! Fixture: EL021/EL050 — allocation and blocking calls inside, and
//! reachable from, worker chunk bodies; the waived lock stays silent.

use std::sync::Mutex;

pub struct Pool;

impl Pool {
    pub fn parallel_for<F: Fn(usize)>(&self, n: usize, f: F) {
        for i in 0..n {
            f(i);
        }
    }
}

pub fn leaf_alloc(sink: &mut Vec<u32>, v: u32) {
    sink.push(v);
}

pub fn mid(sink: &mut Vec<u32>, v: u32) {
    leaf_alloc(sink, v);
}

pub fn run(pool: &Pool, shared: &Mutex<Vec<u32>>, sink: &mut Vec<u32>) {
    pool.parallel_for(4, |i| {
        let _guard = shared.lock();
        mid(sink, i as u32);
    });
    let _outside = shared.lock();
}

pub fn run_waived(pool: &Pool, shared: &Mutex<Vec<u32>>) {
    pool.parallel_for(2, |_i| {
        let _ = shared.lock(); // block-ok: fixture — uncontended by construction
    });
}
