//! Fixture: EL013 — a Release publish that no Acquire ever observes, and
//! a Relaxed-only field whose table entry lacks a `barrier`.

use std::sync::atomic::{AtomicU32, Ordering};

pub fn publish(flag: &AtomicU32) {
    flag.store(1, Ordering::Release);
}

pub fn peek(flag: &AtomicU32) -> u32 {
    flag.load(Ordering::Relaxed)
}

pub fn tick(ticks: &AtomicU32) -> u32 {
    ticks.fetch_add(1, Ordering::Relaxed)
}
