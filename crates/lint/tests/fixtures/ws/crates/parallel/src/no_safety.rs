//! Fixture: EL001 — `unsafe` with no SAFETY comment anywhere near it.

pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
