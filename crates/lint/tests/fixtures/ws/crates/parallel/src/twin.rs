//! Fixture: the second `twin` — makes the bare-name call in
//! `crates/core/src/dispatch.rs` ambiguous.

pub fn twin() -> u32 {
    2
}
