//! Seeded EL040 violations: unwaived `unwrap()`/`expect()` in library code
//! of a resilience-audited crate. The waived, infallible, and test-region
//! uses below must stay silent.

pub fn naked_unwrap(r: Result<u32, ()>) -> u32 {
    r.unwrap()
}

pub fn naked_expect(r: Result<u32, ()>) -> u32 {
    r.expect("should have parsed")
}

pub fn waived(r: Result<u32, ()>) -> u32 {
    r.unwrap() // unwrap-ok: caller validated the input above
}

pub fn fallback(r: Result<u32, ()>) -> u32 {
    r.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let r: Result<u32, ()> = Ok(1);
        assert_eq!(r.unwrap(), 1);
    }
}
