//! Fixture: EL002 — annotated `unsafe` outside the allowlisted modules.

pub fn peek(xs: &[u32]) -> u32 {
    // SAFETY: fixture claims xs is non-empty (annotation present on
    // purpose, so only the allowlist rule fires).
    unsafe { *xs.as_ptr() }
}
