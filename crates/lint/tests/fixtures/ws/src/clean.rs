//! Fixture: a file every rule passes over — comments and strings that
//! mention unsafe, Ordering::SeqCst, Vec::new, and take_scratch must not
//! fool the lexer.

pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

pub fn decoys() -> &'static str {
    // unsafe { would_be_flagged_if_this_were_code() }
    "unsafe Ordering::SeqCst Vec::new() take_scratch()"
}
