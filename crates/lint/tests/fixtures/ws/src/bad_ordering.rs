//! Fixture: EL011 — an ordering outside the file's allowed set.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_strict(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::SeqCst)
}
