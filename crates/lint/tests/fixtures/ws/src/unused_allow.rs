//! Fixture: EL012 — the table allows an ordering this file no longer uses.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}
