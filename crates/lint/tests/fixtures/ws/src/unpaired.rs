//! Fixture: EL030 — scratch taken but never returned (and vice versa).

pub struct Ctx;

impl Ctx {
    pub fn take_scratch(&self) -> Vec<u32> {
        Vec::new()
    }
    pub fn put_scratch(&self, _s: Vec<u32>) {}
}

pub fn leaky(ctx: &Ctx) -> usize {
    let s = ctx.take_scratch();
    s.len()
}

pub fn balanced(ctx: &Ctx) {
    let s = ctx.take_scratch();
    ctx.put_scratch(s);
}

pub fn give_back_only(ctx: &Ctx) {
    ctx.put_scratch(Vec::new());
}
