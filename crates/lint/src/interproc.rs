//! The interprocedural rules: properties of the call graph, not of any one
//! line.
//!
//! | id    | invariant                                                      |
//! |-------|----------------------------------------------------------------|
//! | EL021 | no alloc-shaped code within [`HOT_HOPS`] call hops of a worker |
//! |       | chunk body (`// alloc-ok:` waiver)                             |
//! | EL031 | a checked-out lease is recycled or returned on every path;     |
//! |       | escaping leases are tracked one caller up (`// lease-ok:`)     |
//! | EL050 | no blocking call (condvar wait, mutex lock, channel recv,      |
//! |       | sleep) reachable from a worker chunk body (`// block-ok:`)     |
//!
//! Reachability is seeded from the *calls inside* worker closures — the
//! chunk bodies handed to `parallel_for`/`for_each_chunk` — and follows
//! resolved edges only. Unresolved edges (trait dispatch, ambiguous names)
//! do not extend reach; that under-approximation is exactly why the
//! unresolved-edge count is a first-class output of the run.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, FnId};
use crate::model::FileModel;
use crate::parse::{FileSyntax, LEASE_FAMILIES};
use crate::rules::{Diagnostic, ALLOC_PATTERNS, HOT_PATH_MODULES};

/// One walked workspace file with its lexical and syntactic models.
pub struct WsFile {
    pub path: String,
    pub model: FileModel,
    pub syn: FileSyntax,
}

/// Call-hop budget for EL021/EL050 reachability. Two hops covers the
/// operator → helper → leaf shape the workspace actually uses while keeping
/// the heuristic resolver's mistakes from cascading.
pub const HOT_HOPS: usize = 2;

fn diag(path: &str, line: usize, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: line + 1,
        rule,
        msg,
    }
}

fn waived(m: &FileModel, line: usize, marker: &str) -> bool {
    m.lines
        .get(line)
        .is_some_and(|l| l.comment.contains(marker))
}

/// A method-shaped alloc pattern is a double-report when the same-named
/// call on that line resolved to a workspace function: the reachability
/// pass descends into the callee and judges *its* body instead.
/// (`self.push(…)` on the ccsr bit-writer packs bits into a preallocated
/// slice — it is not `Vec::push`.)
fn resolved_alloc_call(
    pat: &str,
    line: usize,
    f: &crate::parse::FnSyn,
    targets: &[(usize, FnId)],
) -> bool {
    let method = match pat {
        ".push(" => "push",
        ".clone(" => "clone",
        ".to_vec(" => "to_vec",
        ".collect(" | ".collect::<" => "collect",
        _ => return false,
    };
    targets.iter().any(|&(ci, _)| {
        let c = &f.calls[ci];
        c.line == line && c.callee == method
    })
}

/// EL021 + EL050: allocation-shaped code and blocking calls inside, or
/// reachable from, worker chunk bodies.
pub fn check_worker_reachability(files: &[WsFile], cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    // Findings keyed by (path, line, rule) so a site reached along several
    // paths reports once, with the shortest-hop provenance (BFS order).
    let mut found: BTreeMap<(String, usize, &'static str), String> = BTreeMap::new();

    // --- direct pass: the closure bodies themselves -----------------------
    let mut roots: Vec<FnId> = Vec::new();
    let mut entered_from: BTreeMap<FnId, (String, usize)> = BTreeMap::new();
    for (id, node) in cg.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let file = &files[node.file];
        let f = &file.syn.fns[node.fn_idx];
        if f.worker_regions.is_empty() {
            continue;
        }
        // Allocation shapes on the closure's own lines. Hot-path modules
        // are excluded: EL020 already gates every line of those files.
        if !HOT_PATH_MODULES.contains(&node.path.as_str()) {
            for (a, b) in f.worker_line_spans(&file.syn.toks) {
                for i in a..=b.min(file.model.lines.len().saturating_sub(1)) {
                    if file.model.in_test[i] || waived(&file.model, i, "alloc-ok:") {
                        continue;
                    }
                    for pat in ALLOC_PATTERNS {
                        if file.model.lines[i].code.contains(pat)
                            && !resolved_alloc_call(pat, i, f, &cg.call_targets[id])
                        {
                            found
                                .entry((node.path.clone(), i, "EL021"))
                                .or_insert_with(|| {
                                    format!(
                                        "`{}` inside a worker chunk body — the hot \
                                         path must not allocate; hoist it or waive \
                                         with `// alloc-ok: <reason>`",
                                        pat.trim_end_matches('(')
                                    )
                                });
                            break;
                        }
                    }
                }
            }
        }
        // Blocking calls on the closure's own lines.
        for b in &f.blocking_sites {
            if f.in_worker(b.tok) && !waived(&file.model, b.line, "block-ok:") {
                found
                    .entry((node.path.clone(), b.line, "EL050"))
                    .or_insert_with(|| {
                        format!(
                            "blocking `{}` inside a worker chunk body — workers \
                             must stay lock- and wait-free; waive with \
                             `// block-ok: <reason>`",
                            b.what
                        )
                    });
            }
        }
        // Calls leaving the closure seed the hop-k pass.
        for (call_idx, target) in &cg.call_targets[id] {
            let call = &f.calls[*call_idx];
            if f.in_worker(call.tok) && !roots.contains(target) {
                roots.push(*target);
                entered_from
                    .entry(*target)
                    .or_insert((node.path.clone(), call.line + 1));
            }
        }
    }

    // --- hop-k pass: functions reachable from the closures ----------------
    // The roots themselves are hop-0 "reached" functions; cg.reachable
    // returns everything further out.
    let mut reached: Vec<(FnId, usize, FnId)> = roots.iter().map(|&r| (r, 0, r)).collect();
    reached.extend(cg.reachable(&roots, HOT_HOPS - 1));
    // `reachable` returns nodes in hop order, so each node's `via` is
    // already mapped by the time it appears: the entry root propagates
    // forward along shortest paths.
    let mut origin: BTreeMap<FnId, FnId> = BTreeMap::new();
    for &(id, hops, via) in &reached {
        let o = if hops == 0 { id } else { origin[&via] };
        origin.insert(id, o);
    }
    for (id, hops, _via) in reached {
        let node = &cg.fns[id];
        if node.is_test {
            continue;
        }
        let file = &files[node.file];
        let f = &file.syn.fns[node.fn_idx];
        let (root_path, root_line) = entered_from
            .get(&origin[&id])
            .cloned()
            .unwrap_or_else(|| (node.path.clone(), f.decl_line + 1));
        let provenance = format!(
            "{} call hop(s) from the worker chunk body at {}:{}",
            hops + 1,
            root_path,
            root_line
        );
        if !HOT_PATH_MODULES.contains(&node.path.as_str()) {
            let (a, b) = f.line_span;
            for i in a..=b.min(file.model.lines.len().saturating_sub(1)) {
                if file.model.in_test[i] || waived(&file.model, i, "alloc-ok:") {
                    continue;
                }
                for pat in ALLOC_PATTERNS {
                    if file.model.lines[i].code.contains(pat)
                        && !resolved_alloc_call(pat, i, f, &cg.call_targets[id])
                    {
                        found
                            .entry((node.path.clone(), i, "EL021"))
                            .or_insert_with(|| {
                                format!(
                                    "`{}` in `fn {}`, {} — the hot path must not \
                                     allocate; hoist it or waive with \
                                     `// alloc-ok: <reason>`",
                                    pat.trim_end_matches('('),
                                    node.name,
                                    provenance
                                )
                            });
                        break;
                    }
                }
            }
        }
        for bsite in &f.blocking_sites {
            if !waived(&file.model, bsite.line, "block-ok:") {
                found
                    .entry((node.path.clone(), bsite.line, "EL050"))
                    .or_insert_with(|| {
                        format!(
                            "blocking `{}` in `fn {}`, {} — workers must stay \
                             lock- and wait-free; waive with `// block-ok: <reason>`",
                            bsite.what, node.name, provenance
                        )
                    });
            }
        }
    }

    for ((path, line, rule), msg) in found {
        out.push(diag(&path, line, rule, msg));
    }
}

/// EL031: lease lifecycle. Flow-insensitive per function, with escaping
/// leases tracked one level up the call graph.
pub fn check_lease_lifecycle(files: &[WsFile], cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    for (id, node) in cg.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let file = &files[node.file];
        let f = &file.syn.fns[node.fn_idx];
        for (fam, (acq_name, rel_name)) in LEASE_FAMILIES.iter().enumerate() {
            let acquires: Vec<_> = f
                .lease_sites
                .iter()
                .filter(|l| l.family == fam && l.is_acquire)
                .collect();
            if acquires.is_empty() {
                continue;
            }
            let releases = f
                .lease_sites
                .iter()
                .any(|l| l.family == fam && !l.is_acquire);
            if releases {
                continue; // flow-insensitively balanced
            }
            // Leaks: acquires that neither escape nor get released here.
            for a in acquires.iter().filter(|a| !a.escapes) {
                if waived(&file.model, a.line, "lease-ok:") {
                    continue;
                }
                out.push(diag(
                    &node.path,
                    a.line,
                    "EL031",
                    format!(
                        "`{}` lease checked out in `fn {}` is neither `{}`d nor \
                         returned to the caller on this path — the pool slot \
                         leaks; waive a deliberate handoff with \
                         `// lease-ok: <reason>`",
                        acq_name, node.name, rel_name
                    ),
                ));
            }
            // Sources: every acquire escapes, so the obligation moves to
            // the callers — one level up, per the documented model. A
            // wrapper *named* like the acquire is covered by the callers'
            // own name-based lease sites; tracking it here would double-
            // report the same line.
            if !acquires.iter().all(|a| a.escapes) || node.name == *acq_name {
                continue;
            }
            for &caller in &cg.callers[id] {
                let cnode = &cg.fns[caller];
                if cnode.is_test {
                    continue;
                }
                let cfile = &files[cnode.file];
                let cf = &cfile.syn.fns[cnode.fn_idx];
                if cf
                    .lease_sites
                    .iter()
                    .any(|l| l.family == fam && !l.is_acquire)
                {
                    continue; // caller recycles
                }
                for (call_idx, target) in &cg.call_targets[caller] {
                    if *target != id {
                        continue;
                    }
                    let call = &cf.calls[*call_idx];
                    if call.escapes || waived(&cfile.model, call.line, "lease-ok:") {
                        continue; // handed further up / waived
                    }
                    out.push(diag(
                        &cnode.path,
                        call.line,
                        "EL031",
                        format!(
                            "`fn {}` returns a `{}` lease, and this caller \
                             neither `{}`s it nor returns it onward — the pool \
                             slot leaks; waive a deliberate handoff with \
                             `// lease-ok: <reason>`",
                            node.name, acq_name, rel_name
                        ),
                    ));
                }
            }
        }
    }
}
