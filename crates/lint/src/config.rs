//! `LINT_ORDERINGS.toml` — the checked-in atomic-ordering table.
//!
//! The table maps each workspace file that performs atomic operations to the
//! set of `std::sync::atomic::Ordering`s it is permitted to use, with a
//! one-line justification. The linter enforces the mapping in *both*
//! directions: an ordering outside the set is a diagnostic, and so is a
//! table entry that has gone stale (file removed, atomics removed, or an
//! allowed ordering no longer used). Tightening or loosening an ordering is
//! therefore always a reviewed table diff next to the code diff.
//!
//! The parser below understands exactly the subset of TOML the table uses —
//! `[[file]]` array-of-tables headers, `key = "string"`, and
//! `key = ["a", "b"]` — so the linter stays dependency-free.

use std::fmt;

/// The five atomic orderings (the only legal members of an `allow` list).
pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `[[file]]` entry.
#[derive(Debug)]
pub struct FileEntry {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Permitted ordering names.
    pub allow: Vec<String>,
    /// One-line justification (required — an ordering decision without a
    /// recorded reason is what this table exists to prevent).
    pub why: String,
    /// Line in the TOML where the entry starts (for diagnostics).
    pub line: usize,
}

/// The parsed table.
#[derive(Debug, Default)]
pub struct OrderingTable {
    pub entries: Vec<FileEntry>,
}

impl OrderingTable {
    pub fn entry_for(&self, path: &str) -> Option<&FileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }
}

/// A parse failure with its location.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LINT_ORDERINGS.toml:{}: {}", self.line, self.msg)
    }
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Parses the ordering table.
pub fn parse(src: &str) -> Result<OrderingTable, ParseError> {
    let mut table = OrderingTable::default();
    let mut current: Option<FileEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[file]]" {
            if let Some(e) = current.take() {
                finish(&mut table, e)?;
            }
            current = Some(FileEntry {
                path: String::new(),
                allow: Vec::new(),
                why: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(lineno, format!("unsupported table header `{line}`")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| err(lineno, "key outside any [[file]] entry"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "path" => entry.path = parse_string(value, lineno)?,
            "why" => entry.why = parse_string(value, lineno)?,
            "allow" => entry.allow = parse_string_array(value, lineno)?,
            _ => return Err(err(lineno, format!("unknown key `{key}`"))),
        }
    }
    if let Some(e) = current.take() {
        finish(&mut table, e)?;
    }
    Ok(table)
}

fn finish(table: &mut OrderingTable, e: FileEntry) -> Result<(), ParseError> {
    if e.path.is_empty() {
        return Err(err(e.line, "[[file]] entry is missing `path`"));
    }
    if e.why.trim().is_empty() {
        return Err(err(
            e.line,
            format!("entry for `{}` is missing its `why` justification", e.path),
        ));
    }
    if e.allow.is_empty() {
        return Err(err(
            e.line,
            format!("entry for `{}` allows nothing", e.path),
        ));
    }
    for o in &e.allow {
        if !ATOMIC_ORDERINGS.contains(&o.as_str()) {
            return Err(err(
                e.line,
                format!("`{}` is not an atomic ordering (entry `{}`)", o, e.path),
            ));
        }
    }
    if table.entry_for(&e.path).is_some() {
        return Err(err(e.line, format!("duplicate entry for `{}`", e.path)));
    }
    table.entries.push(e);
    Ok(())
}

/// Removes a `#` comment, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(lineno, format!("expected a quoted string, got `{v}`")))
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected `[ … ]`, got `{v}`")))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let t = parse(
            r#"
# header comment
[[file]]
path = "crates/x/src/a.rs"
allow = ["Relaxed", "AcqRel"]
why = "counter + claim"

[[file]]
path = "crates/x/src/b.rs"  # trailing comment
allow = ["Acquire"]
why = "load side of the handoff"
"#,
        )
        .unwrap();
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].allow, vec!["Relaxed", "AcqRel"]);
        assert_eq!(
            t.entry_for("crates/x/src/b.rs").unwrap().why.trim(),
            "load side of the handoff"
        );
    }

    #[test]
    fn rejects_missing_why() {
        let e = parse("[[file]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\n").unwrap_err();
        assert!(e.msg.contains("why"), "{e}");
    }

    #[test]
    fn rejects_unknown_ordering() {
        let e = parse("[[file]]\npath = \"a.rs\"\nallow = [\"Sequential\"]\nwhy = \"x\"\n")
            .unwrap_err();
        assert!(e.msg.contains("not an atomic ordering"), "{e}");
    }

    #[test]
    fn rejects_duplicates_and_stray_keys() {
        let dup = "[[file]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\nwhy = \"x\"\n[[file]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\nwhy = \"x\"\n";
        assert!(parse(dup).unwrap_err().msg.contains("duplicate"));
        assert!(parse("x = \"y\"\n").unwrap_err().msg.contains("outside"));
    }
}
