//! `LINT_ORDERINGS.toml` — the checked-in atomic-ordering table.
//!
//! Since the per-field migration (PR 9) the table maps each *atomic field*
//! — a struct field or static holding an atomic, identified by
//! `(path, field)` — to the set of `std::sync::atomic::Ordering`s it is
//! permitted to use, with a one-line justification and, for Relaxed-only
//! fields, a `barrier` line naming what provides the happens-before edge
//! instead. The linter enforces the mapping in *both* directions: an
//! ordering outside the set is a diagnostic (EL011), and so is a table
//! entry that has gone stale (EL012). Tightening or loosening an ordering
//! is therefore always a reviewed table diff next to the code diff.
//!
//! Two pseudo-field spellings exist for sites the parser cannot pin to a
//! field: `fn:<name>` for orderings passed into a helper function, and `*`
//! for orderings outside any call.
//!
//! The parser below understands exactly the subset of TOML the table uses —
//! `[[atomic]]` array-of-tables headers, `key = "string"`, and
//! `key = ["a", "b"]` — so the linter stays dependency-free.

use std::fmt;

/// The five atomic orderings (the only legal members of an `allow` list).
pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `[[atomic]]` entry.
#[derive(Debug)]
pub struct FieldEntry {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Field key: struct field / static name, `fn:<helper>`, or `*`.
    pub field: String,
    /// Permitted ordering names.
    pub allow: Vec<String>,
    /// One-line justification (required — an ordering decision without a
    /// recorded reason is what this table exists to prevent).
    pub why: String,
    /// For Relaxed-only fields: what provides the happens-before edge
    /// (region barrier, thread join, mutex). Checked by EL013.
    pub barrier: Option<String>,
    /// Line in the TOML where the entry starts (for diagnostics).
    pub line: usize,
}

/// The parsed table.
#[derive(Debug, Default)]
pub struct OrderingTable {
    pub entries: Vec<FieldEntry>,
}

impl OrderingTable {
    pub fn entry_for(&self, path: &str, field: &str) -> Option<&FieldEntry> {
        self.entries
            .iter()
            .find(|e| e.path == path && e.field == field)
    }
}

/// A parse failure with its location.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LINT_ORDERINGS.toml:{}: {}", self.line, self.msg)
    }
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Parses the ordering table.
pub fn parse(src: &str) -> Result<OrderingTable, ParseError> {
    let mut table = OrderingTable::default();
    let mut current: Option<FieldEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[atomic]]" {
            if let Some(e) = current.take() {
                finish(&mut table, e)?;
            }
            current = Some(FieldEntry {
                path: String::new(),
                field: String::new(),
                allow: Vec::new(),
                why: String::new(),
                barrier: None,
                line: lineno,
            });
            continue;
        }
        if line == "[[file]]" {
            return Err(err(
                lineno,
                "per-file `[[file]]` entries were replaced by per-field \
                 `[[atomic]]` entries (path + field + allow + why [+ barrier]) \
                 — see the header of LINT_ORDERINGS.toml for the migration",
            ));
        }
        if line.starts_with('[') {
            return Err(err(lineno, format!("unsupported table header `{line}`")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| err(lineno, "key outside any [[atomic]] entry"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "path" => entry.path = parse_string(value, lineno)?,
            "field" => entry.field = parse_string(value, lineno)?,
            "why" => entry.why = parse_string(value, lineno)?,
            "barrier" => entry.barrier = Some(parse_string(value, lineno)?),
            "allow" => entry.allow = parse_string_array(value, lineno)?,
            _ => return Err(err(lineno, format!("unknown key `{key}`"))),
        }
    }
    if let Some(e) = current.take() {
        finish(&mut table, e)?;
    }
    Ok(table)
}

fn finish(table: &mut OrderingTable, e: FieldEntry) -> Result<(), ParseError> {
    if e.path.is_empty() {
        return Err(err(e.line, "[[atomic]] entry is missing `path`"));
    }
    if e.field.is_empty() {
        return Err(err(
            e.line,
            format!("entry for `{}` is missing its `field`", e.path),
        ));
    }
    if e.why.trim().is_empty() {
        return Err(err(
            e.line,
            format!(
                "entry for `{}` field `{}` is missing its `why` justification",
                e.path, e.field
            ),
        ));
    }
    if e.allow.is_empty() {
        return Err(err(
            e.line,
            format!("entry for `{}` field `{}` allows nothing", e.path, e.field),
        ));
    }
    for o in &e.allow {
        if !ATOMIC_ORDERINGS.contains(&o.as_str()) {
            return Err(err(
                e.line,
                format!(
                    "`{}` is not an atomic ordering (entry `{}` field `{}`)",
                    o, e.path, e.field
                ),
            ));
        }
    }
    if table.entry_for(&e.path, &e.field).is_some() {
        return Err(err(
            e.line,
            format!("duplicate entry for `{}` field `{}`", e.path, e.field),
        ));
    }
    table.entries.push(e);
    Ok(())
}

/// Removes a `#` comment, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(lineno, format!("expected a quoted string, got `{v}`")))
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected `[ … ]`, got `{v}`")))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_per_field_entries() {
        let t = parse(
            r#"
# header comment
[[atomic]]
path = "crates/x/src/a.rs"
field = "claimed"
allow = ["Relaxed", "AcqRel"]
why = "counter + claim"

[[atomic]]
path = "crates/x/src/a.rs"  # trailing comment
field = "published"
allow = ["Acquire"]
why = "load side of the handoff"
barrier = "none needed"
"#,
        )
        .unwrap();
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].allow, vec!["Relaxed", "AcqRel"]);
        let e = t.entry_for("crates/x/src/a.rs", "published").unwrap();
        assert_eq!(e.why, "load side of the handoff");
        assert_eq!(e.barrier.as_deref(), Some("none needed"));
        assert!(t.entry_for("crates/x/src/a.rs", "missing").is_none());
    }

    #[test]
    fn rejects_missing_field_and_why() {
        let e =
            parse("[[atomic]]\npath = \"a.rs\"\nallow = [\"Relaxed\"]\nwhy = \"x\"\n").unwrap_err();
        assert!(e.msg.contains("field"), "{e}");
        let e = parse("[[atomic]]\npath = \"a.rs\"\nfield = \"f\"\nallow = [\"Relaxed\"]\n")
            .unwrap_err();
        assert!(e.msg.contains("why"), "{e}");
    }

    #[test]
    fn rejects_unknown_ordering_and_old_schema() {
        let e = parse(
            "[[atomic]]\npath = \"a.rs\"\nfield = \"f\"\nallow = [\"Sequential\"]\nwhy = \"x\"\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("not an atomic ordering"), "{e}");
        let e = parse("[[file]]\npath = \"a.rs\"\n").unwrap_err();
        assert!(e.msg.contains("migration"), "{e}");
    }

    #[test]
    fn rejects_duplicates_and_stray_keys() {
        let dup = "[[atomic]]\npath = \"a.rs\"\nfield = \"f\"\nallow = [\"Relaxed\"]\nwhy = \"x\"\n[[atomic]]\npath = \"a.rs\"\nfield = \"f\"\nallow = [\"Relaxed\"]\nwhy = \"x\"\n";
        assert!(parse(dup).unwrap_err().msg.contains("duplicate"));
        assert!(parse("x = \"y\"\n").unwrap_err().msg.contains("outside"));
    }
}
