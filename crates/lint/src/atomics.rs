//! Per-field atomic analysis: the observed-usage map behind the per-field
//! `LINT_ORDERINGS.toml` checks (EL010/EL011/EL012) and the workspace-wide
//! release/acquire pairing rule (EL013).
//!
//! Field keys come from the parser ([`crate::parse::AtomicSite`]):
//! `struct.field` receivers resolve to the field name, statics to the
//! static's name, orderings passed into helper functions to `fn:<helper>`,
//! and orderings the parser could not attach to any call to `*`. Pairing
//! (EL013) runs only over real field keys — helper-keyed sites have an
//! unknown op direction, which is a documented unsoundness (DESIGN.md §15).

use std::collections::BTreeMap;

use crate::config::OrderingTable;
use crate::lexer::contains_word;
use crate::model::FileModel;
use crate::parse::{op_reads, op_writes, FileSyntax};
use crate::rules::Diagnostic;

/// One observed `(ordering, line)` use of a field in a file.
#[derive(Debug, Clone)]
pub struct FieldUse {
    pub ordering: &'static str,
    /// 0-based line.
    pub line: usize,
    /// The op name (`load`, `store`, `fetch_or`, helper name, or `loose`).
    pub op: String,
    /// Whether the op can publish (write side) / observe (read side).
    pub writes: bool,
    pub reads: bool,
}

/// Observed atomic usage of one file: field key → uses.
pub type FileAtomics = BTreeMap<String, Vec<FieldUse>>;

/// Collects the per-field usage map for one file, reconciling the parsed
/// sites against the lexical `Ordering::X` scan: any occurrence the parser
/// did not attach to a call (stored orderings, match arms) lands on the
/// pseudo-field `*` so nothing escapes the table.
pub fn file_atomics(m: &FileModel, syn: &FileSyntax) -> FileAtomics {
    let mut out: FileAtomics = BTreeMap::new();
    let mut claimed: Vec<(usize, &'static str)> = Vec::new();
    for f in &syn.fns {
        for site in &f.atomic_sites {
            let is_helper = site.field.starts_with("fn:");
            for &(name, line) in &site.orderings {
                claimed.push((line, name));
                out.entry(site.field.clone()).or_default().push(FieldUse {
                    ordering: name,
                    line,
                    op: site.op.clone(),
                    writes: !is_helper && op_writes(&site.op),
                    reads: !is_helper && op_reads(&site.op),
                });
            }
        }
    }
    // Lexical reconciliation: every `Ordering::X` in the code channel must
    // be accounted for.
    for (name, lines) in crate::rules::orderings_used(m) {
        for line in lines {
            let hit = claimed.iter().position(|&(l, n)| l == line && n == name);
            match hit {
                Some(i) => {
                    claimed.swap_remove(i);
                }
                None => out.entry("*".to_string()).or_default().push(FieldUse {
                    ordering: name,
                    line,
                    op: "loose".to_string(),
                    writes: false,
                    reads: false,
                }),
            }
        }
    }
    out
}

fn diag(path: &str, line: usize, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: line + 1,
        rule,
        msg,
    }
}

/// EL010 + EL011 for one file against the per-field table. Returns the
/// fields observed (for the staleness pass).
pub fn check_fields(
    path: &str,
    atomics: &FileAtomics,
    table: &OrderingTable,
    out: &mut Vec<Diagnostic>,
) {
    for (field, uses) in atomics {
        let Some(entry) = table.entry_for(path, field) else {
            let first = uses.iter().map(|u| u.line).min().unwrap_or(0);
            let mut names: Vec<&str> = uses.iter().map(|u| u.ordering).collect();
            names.sort_unstable();
            names.dedup();
            out.push(diag(
                path,
                first,
                "EL010",
                format!(
                    "atomic field `{field}` uses orderings ({}) but has no \
                     LINT_ORDERINGS.toml entry for (path, field)",
                    names.join(", ")
                ),
            ));
            continue;
        };
        for u in uses {
            if !entry.allow.iter().any(|a| a == u.ordering) {
                out.push(diag(
                    path,
                    u.line,
                    "EL011",
                    format!(
                        "Ordering::{} on field `{field}` is not in its allowed set \
                         [{}] — change the code or update the table with a new `why`",
                        u.ordering,
                        entry.allow.join(", ")
                    ),
                ));
            }
        }
    }
}

/// EL012: table staleness in both directions, over the observed
/// `(path → field → uses)` map.
pub fn check_staleness(
    table: &OrderingTable,
    seen: &BTreeMap<String, FileAtomics>,
    out: &mut Vec<Diagnostic>,
) {
    for entry in &table.entries {
        let observed = seen.get(&entry.path).and_then(|f| f.get(&entry.field));
        match observed {
            None => out.push(Diagnostic {
                path: "LINT_ORDERINGS.toml".to_string(),
                line: entry.line,
                rule: "EL012",
                msg: format!(
                    "stale entry: no atomic use of field `{}` observed in `{}`",
                    entry.field, entry.path
                ),
            }),
            Some(uses) => {
                for allowed in &entry.allow {
                    if !uses.iter().any(|u| u.ordering == allowed) {
                        out.push(Diagnostic {
                            path: "LINT_ORDERINGS.toml".to_string(),
                            line: entry.line,
                            rule: "EL012",
                            msg: format!(
                                "stale entry: `{}` field `{}` allows Ordering::{} but \
                                 the code no longer uses it",
                                entry.path, entry.field, allowed
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// EL013: workspace-wide release/acquire pairing per field, plus the
/// Relaxed-only barrier-justification requirement.
///
/// Pairing groups sites by *field name* across files: the release side of
/// a protocol frequently lives in a different function (or crate) than its
/// acquire side, and a same-named field in two unrelated structs would
/// only mask a finding, never invent one on the release side (it can mask
/// — documented unsoundness). Helper-keyed (`fn:…`) and loose (`*`) sites
/// carry no direction and are excluded.
pub fn check_pairing(
    seen: &BTreeMap<String, FileAtomics>,
    table: &OrderingTable,
    out: &mut Vec<Diagnostic>,
) {
    // field name → (release-writes, acquire-reads, first write site).
    struct Pair {
        rel_writes: Vec<(String, usize)>,
        acq_reads: usize,
    }
    let mut fields: BTreeMap<&str, Pair> = BTreeMap::new();
    for (path, atomics) in seen {
        for (field, uses) in atomics {
            if field.starts_with("fn:") || field == "*" {
                continue;
            }
            let p = fields.entry(field.as_str()).or_insert(Pair {
                rel_writes: Vec::new(),
                acq_reads: 0,
            });
            for u in uses {
                let rel = matches!(u.ordering, "Release" | "AcqRel" | "SeqCst");
                let acq = matches!(u.ordering, "Acquire" | "AcqRel" | "SeqCst");
                if u.writes && rel {
                    p.rel_writes.push((path.clone(), u.line));
                }
                if u.reads && acq {
                    p.acq_reads += 1;
                }
            }
        }
    }
    for (field, p) in &fields {
        if !p.rel_writes.is_empty() && p.acq_reads == 0 {
            let (path, line) = &p.rel_writes[0];
            out.push(diag(
                path,
                *line,
                "EL013",
                format!(
                    "field `{field}` is written with Release/AcqRel but no \
                     Acquire/AcqRel reader of it exists anywhere in the workspace \
                     — the publish has no observer to pair with"
                ),
            ));
        }
    }

    // Relaxed-only fields must record what provides the happens-before
    // edge instead (`barrier = "…"` in the table).
    for (path, atomics) in seen {
        for (field, uses) in atomics {
            if field.starts_with("fn:") || field == "*" {
                continue;
            }
            if !uses.iter().all(|u| u.ordering == "Relaxed") {
                continue;
            }
            if let Some(entry) = table.entry_for(path, field) {
                if entry.barrier.is_none() {
                    out.push(Diagnostic {
                        path: "LINT_ORDERINGS.toml".to_string(),
                        line: entry.line,
                        rule: "EL013",
                        msg: format!(
                            "field `{field}` in `{path}` is Relaxed-only: its table \
                             entry must carry `barrier = \"…\"` naming what provides \
                             the happens-before edge (region barrier, join, mutex)"
                        ),
                    });
                }
            }
            // No entry at all is EL010's finding; don't double-report.
        }
    }
}

/// Renders the observed usage map as per-field TOML entry skeletons — the
/// `--dump-atomics` migration aid.
pub fn dump_toml(seen: &BTreeMap<String, FileAtomics>) -> String {
    let mut out = String::new();
    for (path, atomics) in seen {
        for (field, uses) in atomics {
            let mut names: Vec<&str> = uses.iter().map(|u| u.ordering).collect();
            names.sort_unstable();
            names.dedup();
            let mut ops: Vec<&str> = uses.iter().map(|u| u.op.as_str()).collect();
            ops.sort_unstable();
            ops.dedup();
            out.push_str("[[atomic]]\n");
            out.push_str(&format!("path = \"{path}\"\n"));
            out.push_str(&format!("field = \"{field}\"\n"));
            out.push_str(&format!(
                "allow = [{}]\n",
                names
                    .iter()
                    .map(|n| format!("\"{n}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!("why = \"TODO ({})\"\n\n", ops.join(", ")));
        }
    }
    out
}

/// True when any line of the span carries the given waiver marker in its
/// comment channel.
pub fn line_waived(m: &FileModel, line: usize, marker: &str) -> bool {
    m.lines
        .get(line)
        .is_some_and(|l| l.comment.contains(marker) || contains_word(&l.comment, marker))
}
