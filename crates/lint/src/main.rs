//! CLI for `essentials-lint`.
//!
//! ```text
//! cargo run -p essentials-lint                      # lint the workspace
//! cargo run -p essentials-lint -- --root DIR        # lint another tree
//! cargo run -p essentials-lint -- --json out.json   # write the CI artifact
//! cargo run -p essentials-lint -- --baseline FILE   # fail only on findings
//!                                                   # not in FILE
//! cargo run -p essentials-lint -- --write-baseline FILE
//! cargo run -p essentials-lint -- --dump-atomics    # [[atomic]] skeletons
//! ```
//!
//! Exit status: 0 clean (or all findings baselined), 1 findings, 2 the run
//! itself failed. The unresolved-call-edge count is always reported — a
//! resolver that silently resolves nothing would otherwise look perfect.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut dump_atomics = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_err("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage_err("--json needs a file path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_err("--baseline needs a file path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_err("--write-baseline needs a file path"),
            },
            "--dump-atomics" => dump_atomics = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: essentials-lint [--root DIR] [--json FILE] \
                     [--baseline FILE] [--write-baseline FILE] [--dump-atomics]"
                );
                eprintln!("Lints the workspace rooted at DIR (default: nearest");
                eprintln!("ancestor of the current directory with LINT_ORDERINGS.toml).");
                return ExitCode::SUCCESS;
            }
            other => return usage_err(&format!("unknown argument `{other}` (try --help)")),
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("no LINT_ORDERINGS.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    if dump_atomics {
        return match essentials_lint::dump_atomics(&root) {
            Ok(toml) => {
                print!("{toml}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("essentials-lint: error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match essentials_lint::run_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("essentials-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        let json = essentials_lint::report_to_json(&report);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("essentials-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    // Baselines hold one `path:line: RULE msg` line per finding — the same
    // shape the run prints, so `--write-baseline` output diffs cleanly.
    if let Some(path) = &write_baseline {
        let mut s = String::new();
        for d in &report.diagnostics {
            s.push_str(&format!("{d}\n"));
        }
        if let Err(e) = std::fs::write(path, s) {
            eprintln!("essentials-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let baselined: BTreeSet<String> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("essentials-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => BTreeSet::new(),
    };

    let mut fresh = 0usize;
    for d in &report.diagnostics {
        let line = d.to_string();
        if baselined.contains(&line) {
            continue;
        }
        println!("{line}");
        fresh += 1;
    }

    let st = &report.stats;
    eprintln!(
        "essentials-lint: {} file(s), {} function(s), {} resolved / {} unresolved \
         call edge(s), {} atomic field(s)",
        st.files, st.functions, st.resolved_calls, st.unresolved_calls, st.atomic_fields
    );
    let suppressed = report.diagnostics.len() - fresh;
    if fresh == 0 {
        if suppressed > 0 {
            eprintln!("essentials-lint: clean ({suppressed} baselined finding(s))");
        } else {
            eprintln!("essentials-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "essentials-lint: {fresh} finding(s){}",
            if suppressed > 0 {
                format!(" ({suppressed} baselined)")
            } else {
                String::new()
            }
        );
        ExitCode::FAILURE
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory containing the ordering table.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("LINT_ORDERINGS.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
