//! CLI for `essentials-lint`.
//!
//! ```text
//! cargo run -p essentials-lint            # lint the enclosing workspace
//! cargo run -p essentials-lint -- --root path/to/tree
//! ```
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 the run itself failed.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: essentials-lint [--root DIR]");
                eprintln!("Lints the workspace rooted at DIR (default: nearest");
                eprintln!("ancestor of the current directory with LINT_ORDERINGS.toml).");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("no LINT_ORDERINGS.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    match essentials_lint::run_root(&root) {
        Ok(diags) if diags.is_empty() => {
            eprintln!("essentials-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("essentials-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("essentials-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor of the current directory containing the ordering table.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("LINT_ORDERINGS.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
