//! The rule catalog (the lexical half — the interprocedural rules live in
//! `interproc`, the per-field atomic checks in `atomics`).
//!
//! | id    | invariant                                                        |
//! |-------|------------------------------------------------------------------|
//! | EL001 | every `unsafe` is annotated with a `SAFETY:`/`# Safety` comment  |
//! | EL002 | `unsafe` only appears in allowlisted low-level modules           |
//! | EL010 | an atomic *field* has a `LINT_ORDERINGS.toml` entry              |
//! | EL011 | every atomic `Ordering` is in its field's allowed set            |
//! | EL012 | the ordering table carries no stale entries (both directions)    |
//! | EL013 | Release/AcqRel writes pair with an Acquire reader somewhere in   |
//! |       | the workspace; Relaxed-only fields record a `barrier =` instead  |
//! | EL020 | hot-path modules don't allocate without an `alloc-ok:` waiver    |
//! | EL021 | no alloc-shaped code within k call hops of a worker chunk body   |
//! | EL030 | `take_scratch`/`put_scratch` are paired per function             |
//! | EL031 | checked-out leases are recycled or returned on every path        |
//! | EL040 | resilience-audited crates don't `unwrap()`/`expect()` unwaived   |
//! | EL050 | no blocking call reachable from a worker chunk body              |
//!
//! Diagnostics are `path:line: ELxxx message` — one line each, sorted, no
//! colors, no fix-ups — so CI output diffs cleanly against a previous run.

use std::collections::BTreeMap;
use std::fmt;

use crate::config::ATOMIC_ORDERINGS;
use crate::lexer::{contains_word, find_word};
use crate::model::FileModel;

/// Modules in which `unsafe` is permitted (EL002). Everything else must
/// build on the safe abstractions these export. Extending this list is a
/// reviewed diff of the linter itself — which is the point.
///
/// Files under a `tests/` directory and `#[cfg(test)]` regions are exempt
/// from the *allowlist* (test harnesses legitimately implement e.g.
/// `GlobalAlloc`), but never from the `SAFETY:` comment rule.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    // The threading substrate: lifetime-erased regions, disjoint-write scan.
    "crates/parallel/src/",
    // Lock-free per-worker collection buffers.
    "crates/frontier/src/worker_buffers.rs",
    // The AtomicPtr scratch slot and its generic substrate.
    "crates/core/src/scratch.rs",
    "crates/core/src/slot.rs",
    // The advance/compute operators that drive the buffers.
    "crates/core/src/operators/advance.rs",
    "crates/core/src/operators/compute.rs",
    // The propagation-blocked gather: column-disjoint counting-sort writes
    // and per-bin flush windows over pooled buffers (DESIGN.md §12).
    "crates/core/src/operators/blocked.rs",
    // Deterministic sum: disjoint per-chunk partial-slot writes combined
    // in chunk order after the join.
    "crates/core/src/operators/reduce.rs",
    // Compressed adjacency: the parallel encoder's disjoint byte-range
    // writes, and the decode-aware operators' per-worker buffer pushes
    // (DESIGN.md §14).
    "crates/graph/src/ccsr.rs",
    "crates/core/src/operators/compressed.rs",
    // The mmap loader: read-only page mappings reinterpreted as the
    // aligned sections a CcsrView borrows (DESIGN.md §14).
    "crates/io/src/mmap.rs",
];

/// Modules under the zero-allocation steady-state contract (EL020); see
/// `tests/zero_alloc.rs` for the dynamic counterpart of this gate.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/core/src/operators/advance.rs",
    "crates/core/src/operators/blocked.rs",
    // Byte-coded expansion: decoders are stack values over borrowed
    // slices, so the compressed paths inherit the full contract.
    "crates/core/src/operators/compressed.rs",
    "crates/core/src/load_balance.rs",
    "crates/core/src/scratch.rs",
    "crates/parallel/src/scan.rs",
    "crates/frontier/src/worker_buffers.rs",
    // The serving engine's per-request checkout path: a lease must be one
    // CAS, never an allocation (the zero-alloc serving test is the dynamic
    // counterpart).
    "crates/serve/src/pool.rs",
];

/// Crates whose *library* code must not `unwrap()`/`expect()` a fallible
/// value without a same-line waiver (EL040). With the resilient execution
/// layer turning worker panics into typed [`ExecError`]s, an unwrap on
/// these paths is a latent panic that bypasses the error taxonomy: the
/// hot-path crates sit inside `catch_unwind` regions, and the io readers
/// return line-numbered errors instead of panicking on malformed input.
/// Test files and `#[cfg(test)]` regions are exempt.
pub const NO_UNWRAP_CRATES: &[&str] = &[
    "crates/parallel/src/",
    "crates/core/src/",
    "crates/frontier/src/",
    "crates/io/src/",
    "crates/serve/src/",
];

/// Panic-shaped method calls flagged by EL040. `.unwrap_or*`,
/// `.unwrap_err(…)` and `.expect_err(…)` do not match — they are either
/// infallible or themselves assertions about errors.
const UNWRAP_PATTERNS: &[&str] = &[".unwrap()", ".expect("];

/// Allocation-shaped constructs flagged in hot-path modules (EL020) and in
/// code reachable from worker chunk bodies (EL021).
pub const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    ".to_vec(",
    ".collect(",
    ".collect::<",
    ".clone(",
    ".push(",
];

/// One finding.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.msg)
    }
}

fn diag(path: &str, line: usize, rule: &'static str, msg: impl Into<String>) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: line + 1, // models are 0-based
        rule,
        msg: msg.into(),
    }
}

/// True for files whose whole content is test code (integration tests,
/// fixtures aside — those are never walked).
pub fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

fn is_allowlisted(path: &str) -> bool {
    UNSAFE_ALLOWLIST
        .iter()
        .any(|p| path == *p || (p.ends_with('/') && path.starts_with(p)))
}

/// EL001 + EL002: the SAFETY rules.
pub fn check_unsafe(path: &str, m: &FileModel, out: &mut Vec<Diagnostic>) {
    for (i, line) in m.lines.iter().enumerate() {
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        if !has_safety_comment(m, i) {
            out.push(diag(
                path,
                i,
                "EL001",
                "`unsafe` without a `// SAFETY:` comment (same line or the comment \
                 block directly above; `/// # Safety` docs count for `unsafe fn`)",
            ));
        }
        if !is_allowlisted(path) && !is_test_file(path) && !m.in_test[i] {
            out.push(diag(
                path,
                i,
                "EL002",
                "`unsafe` outside the allowlisted low-level modules (see \
                 UNSAFE_ALLOWLIST in essentials-lint; extend it only with review)",
            ));
        }
    }
}

/// A `SAFETY:`/`# Safety` annotation on the line itself or in the contiguous
/// comment/attribute block directly above it.
fn has_safety_comment(m: &FileModel, line: usize) -> bool {
    let marks = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
    if marks(&m.lines[line].comment) {
        return true;
    }
    let mut j = line;
    while j > 0 {
        j -= 1;
        let l = &m.lines[j];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !l.is_code_blank() && !is_attr {
            return false; // hit real code: block ended
        }
        if marks(&l.comment) {
            return true;
        }
        if l.is_code_blank() && l.comment.is_empty() {
            return false; // blank line breaks adjacency
        }
    }
    false
}

/// Atomic orderings used by a file: ordering name → lines of use (0-based).
pub fn orderings_used(m: &FileModel) -> BTreeMap<&'static str, Vec<usize>> {
    let mut used: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
    for (i, line) in m.lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = code[from..].find("Ordering::") {
            let at = from + pos;
            let rest = &code[at + "Ordering::".len()..];
            for name in ATOMIC_ORDERINGS {
                if rest.starts_with(name) && find_word(rest, name) == Some(0) {
                    used.entry(name).or_default().push(i);
                }
            }
            from = at + "Ordering::".len();
        }
    }
    used
}

/// EL020: allocation-shaped code in hot-path modules without a waiver.
pub fn check_hot_path_allocs(path: &str, m: &FileModel, out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_MODULES.contains(&path) {
        return;
    }
    for (i, line) in m.lines.iter().enumerate() {
        if m.in_test[i] || line.comment.contains("alloc-ok:") {
            continue;
        }
        for pat in ALLOC_PATTERNS {
            if line.code.contains(pat) {
                out.push(diag(
                    path,
                    i,
                    "EL020",
                    format!(
                        "`{}` in a zero-alloc hot-path module — justify with a \
                         same-line `// alloc-ok: <reason>` waiver or hoist it \
                         out of the hot path",
                        pat.trim_end_matches('(')
                    ),
                ));
                break; // one diagnostic per line
            }
        }
    }
}

/// EL040: unwaived `unwrap()`/`expect()` in library code of the
/// resilience-audited crates.
pub fn check_unwraps(path: &str, m: &FileModel, out: &mut Vec<Diagnostic>) {
    if is_test_file(path) || !NO_UNWRAP_CRATES.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, line) in m.lines.iter().enumerate() {
        if m.in_test[i] || line.comment.contains("unwrap-ok:") {
            continue;
        }
        for pat in UNWRAP_PATTERNS {
            if line.code.contains(pat) {
                out.push(diag(
                    path,
                    i,
                    "EL040",
                    format!(
                        "`{}` in library code of a resilience-audited crate — return \
                         a typed error instead, or justify the invariant with a \
                         same-line `// unwrap-ok: <reason>` waiver",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
                break; // one diagnostic per line
            }
        }
    }
}

/// EL030: `take_scratch`/`put_scratch` pairing per function.
pub fn check_scratch_pairing(path: &str, m: &FileModel, out: &mut Vec<Diagnostic>) {
    if is_test_file(path) {
        return;
    }
    for f in &m.functions {
        let mut takes: Vec<usize> = Vec::new();
        let mut puts: Vec<usize> = Vec::new();
        for i in f.start..=f.end.min(m.lines.len().saturating_sub(1)) {
            if m.in_test[i] {
                continue;
            }
            // Skip the definition sites of the pairing API itself.
            if i == f.decl_line
                && (contains_word(&m.lines[i].code, "fn")
                    && (m.lines[i].code.contains("fn take_scratch")
                        || m.lines[i].code.contains("fn put_scratch")))
            {
                continue;
            }
            // Attribute to the innermost function only.
            if m.enclosing_fn(i).map(|g| (g.start, g.end)) != Some((f.start, f.end)) {
                continue;
            }
            if contains_word(&m.lines[i].code, "take_scratch") {
                takes.push(i);
            }
            if contains_word(&m.lines[i].code, "put_scratch") {
                puts.push(i);
            }
        }
        if !takes.is_empty() && puts.is_empty() {
            out.push(diag(
                path,
                takes[0],
                "EL030",
                "take_scratch without a put_scratch in the same function — the \
                 scratch must return to the Context slot on every path",
            ));
        }
        if !puts.is_empty() && takes.is_empty() {
            out.push(diag(
                path,
                puts[0],
                "EL030",
                "put_scratch without a take_scratch in the same function — \
                 returning a scratch you did not take is an ownership smell",
            ));
        }
    }
}
