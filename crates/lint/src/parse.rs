//! Token-tree-level parser: the structural layer between the lexer and the
//! interprocedural rules.
//!
//! The lexer (`lexer.rs`) already separates code from comments and blanks
//! literal contents; this module tokenizes the code channel and extracts the
//! facts the call-graph rules need: function items (with the impl/trait type
//! they hang off), call sites (free, path, and method calls — turbofish
//! included), worker-closure extents (the chunk bodies passed to
//! `parallel_for`/`for_each_chunk`), atomic operation sites resolved to
//! *fields*, lease acquire/release sites, and blocking-call sites.
//!
//! It is deliberately not a full Rust parser. Known unsoundness is
//! documented in DESIGN.md §15: types are tracked by last-segment name only,
//! receiver types come from `self`/param/`let` hints, and anything the
//! resolver cannot pin down is surfaced as an *unresolved edge* rather than
//! silently dropped.

use crate::lexer::Line;

/// One code token with its 0-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 0-based line index.
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword. Raw identifiers (`r#type`) are stored with
    /// the `r#` stripped and `raw = true` is implied by the original text
    /// having carried the prefix (the rules never need to distinguish).
    Ident,
    /// A numeric literal (kept as one token so `1.0` does not produce a
    /// stray `.` that could be mistaken for a method-call dot).
    Num,
    /// A single punctuation byte (`>` twice for `>>`, so nested generic
    /// closers need no special casing downstream).
    Punct,
}

/// Tokenizes the code channels of lexed lines.
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let b = line.code.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_ascii_whitespace() {
                i += 1;
            } else if c == b'r' && i + 2 < b.len() && b[i + 1] == b'#' && is_ident_start(b[i + 2]) {
                // Raw identifier: `r#type` → Ident("type").
                let start = i + 2;
                let mut j = start;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: line.code[start..j].to_string(),
                    line: lineno,
                });
                i = j;
            } else if is_ident_start(c) {
                let mut j = i;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: line.code[i..j].to_string(),
                    line: lineno,
                });
                i = j;
            } else if c.is_ascii_digit() {
                // Number; consume `1_000`, `1.5`, `0x1f`, stopping before
                // `..` so ranges keep their punctuation.
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric()
                        || d == b'_'
                        || (d == b'.'
                            && b.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                            && b.get(j.wrapping_sub(1)) != Some(&b'.'))
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Num,
                    text: line.code[i..j].to_string(),
                    line: lineno,
                });
                i = j;
            } else if c.is_ascii() {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line: lineno,
                });
                i += 1;
            } else {
                // Non-ASCII in code position (only possible inside paths or
                // identifiers we do not care about): skip the sequence.
                let len = utf8_len(c);
                i += len;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "in", "as", "move", "fn",
    "unsafe", "ref", "mut", "pub", "use", "where", "impl", "dyn", "box", "await",
];

/// The atomic RMW/load/store method names that take `Ordering` arguments.
pub const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
];

/// Ops that observe the value (acquire side of a pairing).
pub fn op_reads(op: &str) -> bool {
    op != "store"
}
/// Ops that publish a value (release side of a pairing).
pub fn op_writes(op: &str) -> bool {
    op != "load"
}

/// The parallel-loop entry points whose closure arguments are worker chunk
/// bodies (EL021/EL050 roots).
pub const WORKER_LOOPS: &[&str] = &[
    "parallel_for",
    "parallel_for_with",
    "try_parallel_for",
    "try_parallel_for_with",
    "for_each_chunk",
];

/// Blocking calls that must never be reachable from a worker chunk body
/// (EL050): condvar waits, mutex locks, channel receives, sleeps.
pub const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "lock",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "sleep",
];

/// Lease families checked by EL031: `(acquire, release)` method names.
/// `take_scratch`/`put_scratch` stay under the older per-function EL030 and
/// are deliberately absent here.
pub const LEASE_FAMILIES: &[(&str, &str)] = &[
    ("take_dense_frontier", "recycle_dense_frontier"),
    ("take_f64_buffer", "recycle_f64_buffer"),
    ("take_u32_buffer", "recycle_u32_buffer"),
    ("take_u64_buffer", "recycle_u64_buffer"),
];

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment, turbofish stripped).
    pub callee: String,
    /// Receiver type hint: `Some("Graph")` for `g.foo()` when `g: &Graph`
    /// is in scope, for `self.foo()` inside `impl Graph`, and for
    /// `Graph::foo()` path calls. `None` when no hint exists.
    pub recv_type: Option<String>,
    /// True for `x.m()` / `Type::m()`; false for free `m()`.
    pub is_method: bool,
    /// True when the method receiver is a chain (`self.field.m()`,
    /// `x[i].m()`, `a().m()`): the receiver's type is some *member's* type,
    /// so the caller's own impl type must not be assumed for it.
    pub chained_recv: bool,
    /// 0-based line of the callee token.
    pub line: usize,
    /// Token index of the callee (used for worker-closure membership).
    pub tok: usize,
    /// The call's value syntactically escapes to the caller (`return` or
    /// tail expression) — EL031 uses this to track lease handoffs one
    /// level up the graph.
    pub escapes: bool,
}

/// An atomic operation site resolved to a field key.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The field key: last identifier of the receiver chain
    /// (`self.claimed[i].compare_exchange…` → `claimed`, `FLAG.load` →
    /// `FLAG`). Orderings passed to non-atomic helper calls get the helper
    /// name prefixed with `fn:`; orderings outside any call get `*`.
    pub field: String,
    /// The op name (`load`, `store`, `fetch_or`, …) or the helper callee.
    pub op: String,
    /// `(ordering name, 0-based line)` pairs seen in this call's argument
    /// list, innermost-call-first claimed so a wrapper call never
    /// re-attributes an inner op's orderings.
    pub orderings: Vec<(&'static str, usize)>,
    /// 0-based line of the op token.
    pub line: usize,
}

/// A lease acquire or release site.
#[derive(Debug, Clone)]
pub struct LeaseSite {
    /// Index into [`LEASE_FAMILIES`].
    pub family: usize,
    pub is_acquire: bool,
    /// For acquires: the lease value syntactically escapes to the caller
    /// (tail expression or `return`).
    pub escapes: bool,
    pub line: usize,
}

/// A blocking call site (EL050 candidates; only flagged when reachable
/// from a worker closure).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub what: String,
    pub line: usize,
    pub tok: usize,
}

/// One parsed function.
#[derive(Debug)]
pub struct FnSyn {
    pub name: String,
    /// Enclosing `impl Type` / `trait Type` name, if any.
    pub self_type: Option<String>,
    /// 0-based declaration line.
    pub decl_line: usize,
    /// 0-based inclusive body line span.
    pub line_span: (usize, usize),
    /// Token index range of the body (inclusive braces).
    pub tok_span: (usize, usize),
    pub calls: Vec<CallSite>,
    pub atomic_sites: Vec<AtomicSite>,
    pub lease_sites: Vec<LeaseSite>,
    pub blocking_sites: Vec<BlockingSite>,
    /// Token ranges of worker-closure bodies (`parallel_for`-family closure
    /// arguments) inside this function.
    pub worker_regions: Vec<(usize, usize)>,
}

impl FnSyn {
    /// True when token index `t` falls inside a worker-closure body.
    pub fn in_worker(&self, t: usize) -> bool {
        self.worker_regions.iter().any(|&(a, b)| a <= t && t <= b)
    }
    /// Line spans of the worker-closure bodies.
    pub fn worker_line_spans(&self, toks: &[Tok]) -> Vec<(usize, usize)> {
        self.worker_regions
            .iter()
            .map(|&(a, b)| (toks[a].line, toks[b].line))
            .collect()
    }
}

/// Parsed facts for one file.
pub struct FileSyntax {
    pub toks: Vec<Tok>,
    pub fns: Vec<FnSyn>,
}

/// Parses the token stream of one file into functions and their facts.
pub fn parse_file(lines: &[Line]) -> FileSyntax {
    let toks = tokenize(lines);
    let fns = parse_items(&toks);
    // Nested fn items own their tokens: the enclosing function skips them
    // so a nested body's facts are not double-attributed.
    let spans: Vec<(usize, usize)> = fns.iter().map(|f| f.tok_span).collect();
    let mut syn = FileSyntax { toks, fns };
    for f in &mut syn.fns {
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .copied()
            .filter(|&(s, e)| s > f.tok_span.0 && e <= f.tok_span.1)
            .collect();
        extract_facts(&syn.toks, f, &nested);
    }
    syn
}

/// Context while walking the item tree: the impl/trait type names by brace
/// depth, so nested items resolve their `self` type.
struct ImplFrame {
    type_name: String,
    /// Brace depth *inside* the impl body.
    body_depth: i32,
}

/// First pass: find `impl`/`trait` frames and `fn` items with body extents.
fn parse_items(toks: &[Tok]) -> Vec<FnSyn> {
    let mut fns: Vec<FnSyn> = Vec::new();
    let mut impls: Vec<ImplFrame> = Vec::new();
    struct OpenFn {
        name: String,
        self_type: Option<String>,
        decl_line: usize,
        start_tok: usize,
        body_depth: i32,
    }
    let mut open_fns: Vec<OpenFn> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => {
                if let Some((name, brace_at)) = impl_header(toks, i) {
                    // Walk forward to the body brace, counting nothing in
                    // between (headers contain no braces).
                    impls.push(ImplFrame {
                        type_name: name,
                        body_depth: depth + 1,
                    });
                    // Jump to the `{`; the `{` itself is processed below.
                    i = brace_at;
                    continue;
                }
                i += 1;
            }
            (TokKind::Ident, "fn") => {
                // `fn name … {` or `fn name …;` (trait signature).
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        // Scan to the body `{` or terminating `;` at this
                        // depth, skipping nested parens/brackets/generics.
                        if let Some(body_at) = fn_body_open(toks, i + 2) {
                            open_fns.push(OpenFn {
                                name: name_tok.text.clone(),
                                self_type: impls.last().map(|f| f.type_name.clone()),
                                decl_line: t.line,
                                start_tok: body_at,
                                body_depth: depth + 1,
                            });
                            i = body_at;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokKind::Punct, "}") => {
                if let Some(open) = open_fns.last() {
                    if depth == open.body_depth {
                        let open = open_fns.pop().expect("non-empty");
                        fns.push(FnSyn {
                            name: open.name,
                            self_type: open.self_type,
                            decl_line: open.decl_line,
                            line_span: (toks[open.start_tok].line, t.line),
                            tok_span: (open.start_tok, i),
                            calls: Vec::new(),
                            atomic_sites: Vec::new(),
                            lease_sites: Vec::new(),
                            blocking_sites: Vec::new(),
                            worker_regions: Vec::new(),
                        });
                    }
                }
                if let Some(f) = impls.last() {
                    if depth == f.body_depth {
                        impls.pop();
                    }
                }
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    fns.sort_by_key(|f| f.tok_span.0);
    fns
}

/// Parses an `impl`/`trait` header starting at token `at` (the keyword).
/// Returns `(type_name, index_of_body_brace)`. For `impl Trait for Type`
/// the *type* wins; for `trait Name` the trait name is the frame (so trait
/// default bodies resolve `self` to the trait).
fn impl_header(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    // Skip leading generics `<…>` (types only in headers, so `<`/`>`
    // balance exactly; `>>` arrives as two `>` tokens).
    let mut gdepth = 0i32;
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => gdepth += 1,
            (TokKind::Punct, ">") => gdepth -= 1,
            (TokKind::Punct, "{") if gdepth == 0 => {
                let name = after_for.or(first_ident)?;
                return Some((name, i));
            }
            (TokKind::Punct, ";") if gdepth == 0 => return None, // `impl Trait for T;`? bail
            (TokKind::Ident, "for") if gdepth == 0 => seen_for = true,
            (TokKind::Ident, "where") if gdepth == 0 => {
                // `where` clauses may contain `Fn(…) -> …` bounds; the type
                // name is already decided by now.
                let name = after_for.clone().or(first_ident.clone())?;
                // Find the body brace at gdepth 0.
                let mut j = i;
                let mut gd = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => gd += 1,
                        ">" => gd -= 1,
                        "{" if gd <= 0 => return Some((name, j)),
                        ";" if gd <= 0 => return None,
                        _ => {}
                    }
                    j += 1;
                }
                return None;
            }
            (TokKind::Ident, w)
                if gdepth == 0 && !matches!(w, "dyn" | "mut" | "const" | "unsafe") =>
            {
                if seen_for {
                    if after_for.is_none() {
                        after_for = Some(w.to_string());
                    }
                } else {
                    // Later path segments (`mod::Type`) override so the
                    // last segment before `for`/`{` is the name.
                    first_ident = Some(w.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// From the token after a `fn name`, find the opening `{` of its body.
/// Returns `None` for bodiless signatures (`fn f(…);`).
fn fn_body_open(toks: &[Tok], mut i: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut gdepth = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" if paren == 0 && bracket == 0 => gdepth += 1,
                ">" if paren == 0 && bracket == 0 => {
                    // `->` arrives as `-`,`>`: don't let return arrows close
                    // generics.
                    if i > 0 && toks[i - 1].text == "-" {
                        // part of `->`
                    } else if gdepth > 0 {
                        gdepth -= 1;
                    }
                }
                "{" if paren == 0 && bracket == 0 => return Some(i),
                ";" if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Second pass over one function body: type hints, call sites, worker
/// regions, atomic sites, lease sites, blocking sites. `nested` holds the
/// token spans of fn items nested inside this body, which are skipped.
fn extract_facts(toks: &[Tok], f: &mut FnSyn, nested: &[(usize, usize)]) {
    let (body_start, body_end) = f.tok_span;
    // --- local type hints -------------------------------------------------
    let mut hints: Vec<(String, String)> = Vec::new(); // (var, type)
    if let Some(t) = &f.self_type {
        hints.push(("self".to_string(), t.clone()));
    }
    collect_param_hints(toks, f, &mut hints);
    collect_let_hints(toks, body_start, body_end, &mut hints);
    let hint_for = |var: &str| -> Option<String> {
        hints
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, t)| t.clone())
    };

    // --- scan body tokens: raw call records first -------------------------
    struct RawCall {
        tok: usize,
        open: usize,
        close: usize,
        callee: String,
        is_method_dot: bool,
        is_path: bool,
    }
    let mut raw: Vec<RawCall> = Vec::new();
    let mut i = body_start;
    while i <= body_end {
        if let Some(&(_, e)) = nested.iter().find(|&&(s, _)| s == i) {
            i = e + 1; // nested fn body: its own FnSyn owns these facts
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // `fn helper(…)` / `struct S(…)` declarations nested in a body are
        // items, not calls.
        if i > 0
            && toks[i - 1].kind == TokKind::Ident
            && matches!(
                toks[i - 1].text.as_str(),
                "fn" | "struct" | "enum" | "union"
            )
        {
            i += 1;
            continue;
        }
        // Macro invocation `name ! (…)` — not a call edge; skip the bang.
        if next_is(toks, i + 1, "!") {
            i += 2;
            continue;
        }
        let Some(open) = call_open_paren(toks, i) else {
            i += 1;
            continue;
        };
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        raw.push(RawCall {
            tok: i,
            open,
            close: match_paren(toks, open, body_end),
            callee: t.text.clone(),
            is_method_dot: prev.is_some_and(|p| p.text == "." && p.kind == TokKind::Punct),
            is_path: prev.is_some_and(|p| p.text == ":")
                && i >= 2
                && toks[i - 2].text == ":"
                && i >= 3
                && toks[i - 3].kind == TokKind::Ident,
        });
        i += 1;
    }

    // --- atomic sites: claim orderings innermost-call-first ---------------
    // Each `Ordering::X` token belongs to exactly one call — the innermost
    // argument list containing it. Sorting by opening paren descending
    // visits inner calls before their wrappers, so `Some(x.load(Acquire))`
    // attributes Acquire to `x.load`, never to `fn:Some`.
    let mut claimed = vec![false; toks.len()];
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(raw[k].open));
    let mut sites: Vec<AtomicSite> = Vec::new();
    for k in order {
        let c = &raw[k];
        let ords = claim_orderings(toks, c.open, c.close, &mut claimed);
        if ords.is_empty() {
            continue;
        }
        let is_atomic_op = ATOMIC_OPS.contains(&c.callee.as_str()) && c.is_method_dot;
        sites.push(AtomicSite {
            field: if is_atomic_op {
                field_key(toks, c.tok - 1)
            } else {
                format!("fn:{}", c.callee)
            },
            op: c.callee.clone(),
            orderings: ords,
            line: toks[c.tok].line,
        });
    }
    sites.sort_by_key(|s| s.line);
    f.atomic_sites = sites;

    // --- the rest of the facts --------------------------------------------
    for c in &raw {
        let t = &toks[c.tok];
        let chained_recv = c.is_method_dot && {
            let dot = c.tok - 1;
            dot == 0
                || toks[dot - 1].kind != TokKind::Ident
                || (dot >= 2 && toks[dot - 2].text == ".")
        };
        let (recv_type, is_method) = if c.is_method_dot {
            (method_recv_hint(toks, c.tok - 1, &hint_for), true)
        } else if c.is_path {
            let seg = &toks[c.tok - 3].text;
            let is_type = seg.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            (is_type.then(|| seg.clone()), is_type)
        } else {
            (None, false)
        };
        if let Some(fam) = LEASE_FAMILIES.iter().position(|(a, _)| *a == c.callee) {
            f.lease_sites.push(LeaseSite {
                family: fam,
                is_acquire: true,
                escapes: escapes_to_caller(toks, c.tok, c.close, (body_start, body_end)),
                line: t.line,
            });
        }
        if let Some(fam) = LEASE_FAMILIES.iter().position(|(_, r)| *r == c.callee) {
            f.lease_sites.push(LeaseSite {
                family: fam,
                is_acquire: false,
                escapes: false,
                line: t.line,
            });
        }
        if BLOCKING_METHODS.contains(&c.callee.as_str()) {
            // `thread::sleep` is a path call; the rest are method calls.
            if c.is_method_dot || (c.callee == "sleep" && c.is_path) {
                f.blocking_sites.push(BlockingSite {
                    what: if c.is_path {
                        format!("{}::{}", toks[c.tok - 3].text, c.callee)
                    } else {
                        c.callee.clone()
                    },
                    line: t.line,
                    tok: c.tok,
                });
            }
        }
        if WORKER_LOOPS.contains(&c.callee.as_str()) {
            for (a, b) in closure_bodies(toks, c.open, c.close) {
                f.worker_regions.push((a, b));
            }
        }
        f.calls.push(CallSite {
            callee: c.callee.clone(),
            recv_type,
            is_method,
            chained_recv,
            line: t.line,
            tok: c.tok,
            escapes: escapes_to_caller(toks, c.tok, c.close, (body_start, body_end)),
        });
    }
}

/// If the ident at `i` heads a call, returns the index of its `(` —
/// handling an interposed turbofish (`ident::<…>(`).
fn call_open_paren(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if next_is(toks, j, ":") && next_is(toks, j + 1, ":") && next_is(toks, j + 2, "<") {
        // Turbofish: balance `<`/`>` (each `>` is its own token, so `>>`
        // closes two levels naturally).
        let mut depth = 0i32;
        j += 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                ";" | "{" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    (next_is(toks, j, "(")).then_some(j)
}

fn next_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// Index of the `)` matching the `(` at `open` (clamped to `end`).
fn match_paren(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i <= end.min(toks.len() - 1) {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.min(toks.len() - 1)
}

/// Unclaimed `Ordering::X` names between tokens `open..=close`, claiming
/// them so outer wrapper calls cannot re-attribute.
fn claim_orderings(
    toks: &[Tok],
    open: usize,
    close: usize,
    claimed: &mut [bool],
) -> Vec<(&'static str, usize)> {
    use crate::config::ATOMIC_ORDERINGS;
    let mut out = Vec::new();
    let mut i = open;
    while i + 3 <= close {
        if toks[i].text == "Ordering"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && !claimed[i]
        {
            if let Some(name) = ATOMIC_ORDERINGS.iter().find(|n| toks[i + 3].text == **n) {
                out.push((*name, toks[i + 3].line));
                claimed[i] = true;
            }
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// The field key of an atomic receiver: the last identifier of the dotted
/// chain before the op, skipping index brackets (`self.claimed[i].op` →
/// `claimed`). Falls back to `*` when the receiver is not a name.
fn field_key(toks: &[Tok], dot: usize) -> String {
    // `dot` is the index of the `.` before the op name.
    let mut i = dot;
    // Skip a trailing `[…]` index.
    loop {
        if i == 0 {
            return "*".to_string();
        }
        i -= 1;
        let t = &toks[i];
        if t.text == "]" {
            // Walk back to the matching `[`.
            let mut depth = 0i32;
            while i > 0 {
                match toks[i].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            return t.text.clone();
        }
        if t.kind == TokKind::Num {
            // Tuple-field receiver (`self.0.load`, `cursors[w].0.fetch_add`):
            // skip the index and its dot, keep walking to the named part.
            if i > 0 && toks[i - 1].text == "." {
                i -= 1;
                continue;
            }
            return "*".to_string();
        }
        if t.text == ")" {
            // Receiver is a call result (`self.slot().load(…)`): use the
            // called method's name as the key.
            let mut depth = 0i32;
            while i > 0 {
                match toks[i].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
            if toks[i].kind == TokKind::Ident {
                return toks[i].text.clone();
            }
            return "*".to_string();
        }
        return "*".to_string();
    }
}

/// Receiver-type hint for a method call whose `.` sits at `dot`.
fn method_recv_hint(
    toks: &[Tok],
    dot: usize,
    hint_for: &dyn Fn(&str) -> Option<String>,
) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &toks[dot - 1];
    if prev.kind != TokKind::Ident {
        return None; // chained call / index result: unknown.
    }
    // Single-name receiver (`x.m()`): hint from scope. Dotted chains
    // (`self.field.m()`) have an ident before the previous `.` — we only
    // resolve the single-step case, everything deeper is name-resolved.
    if dot >= 2 && toks[dot - 2].text == "." {
        return None;
    }
    hint_for(&prev.text)
}

/// Parameter type hints: `name: … Type` pairs from the fn signature.
fn collect_param_hints(toks: &[Tok], f: &FnSyn, hints: &mut Vec<(String, String)>) {
    // Walk back from the body brace to the `fn` keyword, then forward to
    // the param list — going backward alone could mistake a tuple return
    // type's parens for the parameter parens.
    let mut k = f.tok_span.0;
    while k > 0 {
        k -= 1;
        if toks[k].kind == TokKind::Ident && toks[k].text == "fn" {
            break;
        }
    }
    // First `(` after the fn name (skipping generics) opens the params.
    let mut open = None;
    let mut j = k + 1;
    let mut gdepth = 0i32;
    while j < f.tok_span.0 {
        match toks[j].text.as_str() {
            "<" => gdepth += 1,
            ">" if toks[j - 1].text != "-" => gdepth -= 1,
            "(" if gdepth == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return };
    let close = match_paren(toks, open, f.tok_span.0);
    // Split params on top-level commas.
    let mut start = open + 1;
    let mut pdepth = 0i32;
    let mut gdepth = 0i32;
    for j in open + 1..=close {
        let txt = toks[j].text.as_str();
        match txt {
            "(" | "[" => pdepth += 1,
            ")" | "]" if j != close => pdepth -= 1,
            "<" => gdepth += 1,
            ">" if j > 0 && toks[j - 1].text != "-" => gdepth -= 1,
            _ => {}
        }
        if (txt == "," && pdepth == 0 && gdepth <= 0) || j == close {
            param_hint(&toks[start..j], hints);
            start = j + 1;
        }
    }
}

/// One parameter: `name : Type…` → hint (name, principal type ident).
fn param_hint(param: &[Tok], hints: &mut Vec<(String, String)>) {
    let colon = param.iter().position(|t| t.text == ":");
    let Some(c) = colon else { return };
    if c == 0 || param[c - 1].kind != TokKind::Ident {
        return;
    }
    let name = param[c - 1].text.clone();
    if let Some(ty) = principal_type_ident(&param[c + 1..]) {
        hints.push((name, ty));
    }
}

/// The principal type name of a type token sequence: the first path-segment
/// identifier, unwrapping references and the `Box`/`Arc`/`Rc` smart
/// pointers (`&mut Arc<Graph>` → `Graph`). `dyn Trait` and `impl Trait`
/// yield the trait name, which the resolver treats as dispatch-opaque.
fn principal_type_ident(ty: &[Tok]) -> Option<String> {
    let mut i = 0;
    let mut dyn_seen = false;
    while i < ty.len() {
        let t = &ty[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "&") | (TokKind::Punct, "'") => i += 1,
            (TokKind::Ident, "mut") | (TokKind::Ident, "const") => i += 1,
            (TokKind::Ident, "dyn") | (TokKind::Ident, "impl") => {
                dyn_seen = true;
                i += 1;
            }
            (TokKind::Ident, "Box") | (TokKind::Ident, "Arc") | (TokKind::Ident, "Rc") => {
                // Unwrap one generic level: `Box<Inner…>`.
                if ty.get(i + 1).is_some_and(|t| t.text == "<") {
                    i += 2;
                } else {
                    return Some(t.text.clone());
                }
            }
            (TokKind::Ident, name) => {
                // Lifetime idents directly after `'` were skipped with the
                // quote; path prefixes (`module::Type`) keep the last
                // segment.
                let mut last = name.to_string();
                let mut j = i + 1;
                while j + 1 < ty.len() && ty[j].text == ":" && ty[j + 1].text == ":" {
                    if let Some(nt) = ty.get(j + 2) {
                        if nt.kind == TokKind::Ident {
                            last = nt.text.clone();
                            j += 3;
                            continue;
                        }
                    }
                    break;
                }
                return Some(if dyn_seen {
                    format!("dyn {last}")
                } else {
                    last
                });
            }
            _ => return None,
        }
    }
    None
}

/// `let`-binding type hints inside a body: `let [mut] name: Type = …` and
/// the `let name = Type::new(…)` constructor idiom.
fn collect_let_hints(toks: &[Tok], start: usize, end: usize, hints: &mut Vec<(String, String)>) {
    let mut i = start;
    while i + 2 <= end {
        if toks[i].text == "let" && toks[i].kind == TokKind::Ident {
            let mut j = i + 1;
            if next_is(toks, j, "mut") || toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = toks[j].text.clone();
                if next_is(toks, j + 1, ":") && !next_is(toks, j + 2, ":") {
                    // Annotated: type tokens run to `=` or `;` at depth 0.
                    let mut k = j + 2;
                    let mut ty = Vec::new();
                    let mut gd = 0i32;
                    while k <= end {
                        match toks[k].text.as_str() {
                            "<" => gd += 1,
                            ">" => gd -= 1,
                            "=" | ";" if gd <= 0 => break,
                            _ => {}
                        }
                        ty.push(toks[k].clone());
                        k += 1;
                    }
                    if let Some(t) = principal_type_ident(&ty) {
                        hints.push((name, t));
                    }
                } else if next_is(toks, j + 1, "=")
                    && toks.get(j + 2).is_some_and(|t| {
                        t.kind == TokKind::Ident
                            && t.text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_ascii_uppercase())
                    })
                    && next_is(toks, j + 3, ":")
                    && next_is(toks, j + 4, ":")
                {
                    // `let x = Type::ctor(…)`.
                    hints.push((name, toks[j + 2].text.clone()));
                }
            }
        }
        i += 1;
    }
}

/// Closure bodies among a call's arguments: for each `|params| body`,
/// returns the token range of the body (brace-matched block or the
/// expression up to the next top-level `,`/`)`).
fn closure_bodies(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = open + 1;
    let mut depth = 0i32; // nesting of (), [], {} inside the arg list
    while i < close {
        let txt = toks[i].text.as_str();
        match txt {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => {
                // Closure params until the matching `|` (params contain no
                // `|` except closing; `||` empty-params arrives as two).
                let mut j = i + 1;
                while j < close && toks[j].text != "|" {
                    j += 1;
                }
                // Body: block or expression.
                let body_start = j + 1;
                if body_start >= close {
                    break;
                }
                let body_end = if toks[body_start].text == "{" {
                    let mut d = 0i32;
                    let mut k = body_start;
                    while k <= close {
                        match toks[k].text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k.min(close)
                } else {
                    // Expression closure: to the `,`/`)` at arg-list level.
                    let mut d = 0i32;
                    let mut k = body_start;
                    while k < close {
                        match toks[k].text.as_str() {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => d -= 1,
                            "," if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    k - 1
                };
                out.push((body_start, body_end));
                i = body_end;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Does the value produced by the call at `callee_tok` syntactically escape
/// to the caller? True when the statement carrying the call starts with
/// `return`, when the call's expression is the tail of the function body
/// (no `;` between its end and the body's closing brace), or when it is
/// bound by a `let` whose name later feeds a `return` or the body's tail
/// expression — the `let out = take_…(); …; (out, n)` shape.
fn escapes_to_caller(toks: &[Tok], callee_tok: usize, close: usize, body: (usize, usize)) -> bool {
    let (body_start, body_end) = body;
    // Backward to the statement boundary: a `return` prefix escapes
    // directly; remember where the statement starts for the binding check.
    let mut stmt_start = body_start + 1;
    let mut i = callee_tok;
    while i > body_start {
        i -= 1;
        match toks[i].text.as_str() {
            ";" | "{" | "}" => {
                stmt_start = i + 1;
                break;
            }
            "return" => return true,
            _ => {}
        }
    }
    // Forward from the call's close paren: skip chained `.method(…)` /
    // `?` / `)` and see whether we reach the body's final brace without a
    // semicolon or another statement.
    let mut i = close + 1;
    while i <= body_end {
        let txt = toks[i].text.as_str();
        match txt {
            ";" => break,
            "." => {
                // chained method: skip `ident ( … )`.
                i += 1;
                if toks.get(i).is_some_and(|t| t.kind == TokKind::Ident) {
                    i += 1;
                    if next_is(toks, i, "(") {
                        i = match_paren(toks, i, body_end) + 1;
                    }
                } else {
                    i += 1;
                }
            }
            "?" | ")" => i += 1,
            "}" if i == body_end => return true,
            _ => break,
        }
    }
    // Bound-then-returned: collect the names a `let [mut] <pat> =` binding
    // introduces (single idents and destructuring tuples alike; a `:` cuts
    // off the type annotation) …
    if toks[stmt_start].text != "let" {
        return false;
    }
    let mut names: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = stmt_start + 1;
    while j < callee_tok {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ":" | "=" if depth == 0 => break,
            "mut" => {}
            _ if t.kind == TokKind::Ident => names.push(t.text.as_str()),
            _ => {}
        }
        j += 1;
    }
    if names.is_empty() {
        return false;
    }
    // A bound name followed by `.` yields a derived value (`v.len()`), not
    // the lease itself — only a bare mention moves ownership out.
    let named = |a: usize, b: usize| {
        (a..b).any(|p| {
            toks[p].kind == TokKind::Ident
                && names.contains(&toks[p].text.as_str())
                && toks.get(p + 1).is_none_or(|t| t.text != ".")
        })
    };
    // … then look for one of them in the tail expression (everything after
    // the last statement-level `;`) …
    let mut depth = 0i32;
    let mut tail_start = body_start + 1;
    for (k, tok) in toks.iter().enumerate().take(body_end).skip(body_start + 1) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => tail_start = k + 1,
            _ => {}
        }
    }
    if tail_start > close && named(tail_start, body_end) {
        return true;
    }
    // … or in a later `return …;` statement.
    let mut k = close;
    while k < body_end {
        if toks[k].text == "return" {
            let mut e = k + 1;
            while e < body_end && toks[e].text != ";" {
                e += 1;
            }
            if named(k + 1, e) {
                return true;
            }
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;

    fn parse(src: &str) -> FileSyntax {
        parse_file(&split_lines(src))
    }

    fn fn_named<'a>(syn: &'a FileSyntax, name: &str) -> &'a FnSyn {
        syn.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not parsed"))
    }

    #[test]
    fn raw_identifiers_tokenize_and_call() {
        // Satellite regression: `r#type` is one identifier, both as a fn
        // name and at a call site; a raw-string `r#"…"#` must not confuse.
        let syn = parse(
            "fn r#type(x: u32) -> u32 { x }\nfn caller() { let s = r#\"raw\"#; r#type(1); }\n",
        );
        assert!(syn.fns.iter().any(|f| f.name == "type"));
        let caller = fn_named(&syn, "caller");
        assert!(caller.calls.iter().any(|c| c.callee == "type"));
    }

    #[test]
    fn nested_generic_closers_do_not_derail_bodies() {
        // Satellite regression: `Vec<Vec<u32>>` — the `>>` closes two
        // generic levels; both fns and the call edge must survive.
        let src = "fn deep(v: Vec<Vec<u32>>) -> Vec<Vec<u32>> { inner(v) }\nfn inner(v: Vec<Vec<u32>>) -> Vec<Vec<u32>> { v }\n";
        let syn = parse(src);
        assert_eq!(syn.fns.len(), 2);
        assert!(fn_named(&syn, "deep")
            .calls
            .iter()
            .any(|c| c.callee == "inner"));
    }

    #[test]
    fn turbofish_call_edges_are_extracted() {
        // Satellite regression: `collect::<Vec<_>>()` and
        // `helper::<Vec<Vec<u32>>>(x)` are calls to `collect` / `helper`.
        let src = "fn f(it: I) { let v = it.collect::<Vec<_>>(); helper::<Vec<Vec<u32>>>(v); }\n";
        let syn = parse(src);
        let f = fn_named(&syn, "f");
        assert!(f.calls.iter().any(|c| c.callee == "collect" && c.is_method));
        assert!(f.calls.iter().any(|c| c.callee == "helper" && !c.is_method));
    }

    #[test]
    fn method_receiver_hints_resolve_from_self_params_and_lets() {
        let src = "impl Graph {\n  fn go(&self, f: &SparseFrontier) {\n    self.probe();\n    f.walk();\n    let d: DenseFrontier = make();\n    d.scan();\n    let q = Queue::new();\n    q.pop();\n  }\n}\n";
        let syn = parse(src);
        let f = fn_named(&syn, "go");
        let hint = |name: &str| {
            f.calls
                .iter()
                .find(|c| c.callee == name)
                .unwrap()
                .recv_type
                .clone()
        };
        assert_eq!(hint("probe").as_deref(), Some("Graph"));
        assert_eq!(hint("walk").as_deref(), Some("SparseFrontier"));
        assert_eq!(hint("scan").as_deref(), Some("DenseFrontier"));
        assert_eq!(hint("pop").as_deref(), Some("Queue"));
    }

    #[test]
    fn impl_trait_for_type_resolves_to_the_type() {
        let syn = parse("impl Sink for Counters {\n  fn push_record(&self) { self.bump(); }\n}\n");
        let f = fn_named(&syn, "push_record");
        assert_eq!(f.self_type.as_deref(), Some("Counters"));
    }

    #[test]
    fn atomic_sites_resolve_to_fields() {
        let src = "impl Slot {\n  fn claim(&self, i: usize) -> bool {\n    self.in_use[i]\n      .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)\n      .is_ok()\n  }\n  fn release(&self) { self.in_use[0].store(false, Ordering::Release); FLAG.load(Ordering::Acquire); }\n}\n";
        let syn = parse(src);
        let claim = fn_named(&syn, "claim");
        assert_eq!(claim.atomic_sites.len(), 1);
        let s = &claim.atomic_sites[0];
        assert_eq!(s.field, "in_use");
        assert_eq!(s.op, "compare_exchange");
        let names: Vec<_> = s.orderings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["Acquire", "Relaxed"]);
        let release = fn_named(&syn, "release");
        let fields: Vec<_> = release
            .atomic_sites
            .iter()
            .map(|s| s.field.as_str())
            .collect();
        assert!(
            fields.contains(&"in_use") && fields.contains(&"FLAG"),
            "{fields:?}"
        );
    }

    #[test]
    fn tuple_field_receivers_resolve_to_the_named_part() {
        let src = "impl AtomicF64 {\n  fn get(&self) -> u64 { self.0.load(Ordering::Relaxed) }\n}\nfn tick(cursors: &[(AtomicUsize, u32)], w: usize) { cursors[w].0.fetch_add(1, Ordering::Relaxed); }\n";
        let syn = parse(src);
        assert_eq!(fn_named(&syn, "get").atomic_sites[0].field, "self");
        assert_eq!(fn_named(&syn, "tick").atomic_sites[0].field, "cursors");
    }

    #[test]
    fn wrapper_calls_do_not_steal_inner_orderings() {
        let src = "fn f(x: AtomicU32) -> Option<u32> { Some(x.load(Ordering::Acquire)) }\nfn g(a: AtomicU32) { helper(&a, Ordering::AcqRel); }\n";
        let syn = parse(src);
        let f = fn_named(&syn, "f");
        assert_eq!(f.atomic_sites.len(), 1);
        assert_eq!(f.atomic_sites[0].field, "x");
        let g = fn_named(&syn, "g");
        assert_eq!(g.atomic_sites.len(), 1);
        assert_eq!(g.atomic_sites[0].field, "fn:helper");
    }

    #[test]
    fn worker_closures_and_blocking_sites() {
        let src = "fn op(pool: &ThreadPool, m: Mutex<u32>) {\n  before.lock();\n  pool.parallel_for(0..n, Schedule::Static, |i| {\n    m.lock();\n    work(i);\n  });\n  after.lock();\n}\n";
        let syn = parse(src);
        let f = fn_named(&syn, "op");
        assert_eq!(f.worker_regions.len(), 1);
        // Exactly the lock on line 3 (0-based) is inside the closure.
        let inside: Vec<_> = f
            .blocking_sites
            .iter()
            .filter(|b| f.in_worker(b.tok))
            .map(|b| b.line)
            .collect();
        assert_eq!(inside, vec![3]);
        assert_eq!(f.blocking_sites.len(), 3);
        // The call to `work` is inside the region; `before`/`after` not.
        let work = f.calls.iter().find(|c| c.callee == "work").unwrap();
        assert!(f.in_worker(work.tok));
    }

    #[test]
    fn lease_sites_and_escape_detection() {
        let src = "fn leak(ctx: &Context) { let v = ctx.take_f64_buffer(); use_it(&v); }\nfn source(ctx: &Context) -> Vec<f64> { ctx.take_f64_buffer() }\nfn ret(ctx: &Context) -> Vec<f64> { return ctx.take_f64_buffer(); }\nfn balanced(ctx: &Context) { let v = ctx.take_f64_buffer(); ctx.recycle_f64_buffer(v); }\n";
        let syn = parse(src);
        let at = |name: &str| &fn_named(&syn, name).lease_sites;
        assert!(!at("leak")[0].escapes);
        assert!(at("source")[0].escapes);
        assert!(at("ret")[0].escapes);
        let b = at("balanced");
        assert_eq!(b.len(), 2);
        assert!(b.iter().any(|l| !l.is_acquire));
    }

    #[test]
    fn bound_then_returned_leases_escape() {
        // The workspace's dominant handoff shape: bind the lease, mutate it,
        // return it as the tail expression — bare, inside a tuple, or via an
        // explicit `return`. A binding that is dropped on the floor (or
        // shadowed away from the tail) must NOT count as escaping.
        let src = "\
fn tail(ctx: &Context, n: usize) -> Vec<f64> { let mut v = ctx.take_f64_buffer(); v.resize(n, 0.0); v }\n\
fn tuple_tail(ctx: &Context) -> (DenseFrontier, usize) { let output = ctx.take_dense_frontier(9); let m = scan(); (output, m) }\n\
fn destructured(ctx: &Context) -> Vec<u32> { let (buf, _n) = (ctx.take_u32_buffer(), 3); buf }\n\
fn explicit(ctx: &Context) -> Vec<f64> { let v = ctx.take_f64_buffer(); if v.is_empty() { return v; } ctx.recycle_f64_buffer(v); Vec::new() }\n\
fn dropped(ctx: &Context) -> usize { let v = ctx.take_f64_buffer(); v.len() }\n";
        let syn = parse(src);
        let acq = |name: &str| {
            fn_named(&syn, name)
                .lease_sites
                .iter()
                .find(|l| l.is_acquire)
                .unwrap()
                .escapes
        };
        assert!(acq("tail"));
        assert!(acq("tuple_tail"));
        assert!(acq("destructured"));
        assert!(acq("explicit"));
        assert!(!acq("dropped"));
    }

    #[test]
    fn trait_signatures_and_dyn_hints() {
        let src = "trait Sink {\n  fn record(&self, x: u32);\n}\nfn drive(s: &dyn Sink) { s.record(1); }\n";
        let syn = parse(src);
        assert!(
            !syn.fns.iter().any(|f| f.name == "record"),
            "bodiless sig parsed as fn"
        );
        let d = fn_named(&syn, "drive");
        let c = d.calls.iter().find(|c| c.callee == "record").unwrap();
        assert_eq!(c.recv_type.as_deref(), Some("dyn Sink"));
    }
}
