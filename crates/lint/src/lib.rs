//! `essentials-lint` — the workspace's concurrency-correctness gate.
//!
//! The paper's portability claim (operators keep identical semantics while
//! execution policies swap parallel strategies underneath) rests on a small
//! set of hand-maintained invariants the Rust compiler cannot check: every
//! `unsafe` block is justified and quarantined, every atomic ordering is a
//! recorded decision, the operator hot path does not allocate, and the
//! advance scratch always returns to its slot. This crate enforces those as
//! a lexical static-analysis pass over the workspace's own sources — run as
//! `cargo run -p essentials-lint`, in CI, and by its own test suite against
//! a corpus of known-bad fixtures.
//!
//! See `rules` for the catalog and `config` for the `LINT_ORDERINGS.toml`
//! format. The crate is dependency-free by design.

pub mod config;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use rules::Diagnostic;

/// Lints the workspace rooted at `root` (the directory holding
/// `LINT_ORDERINGS.toml`). Returns all diagnostics, sorted.
///
/// `Err` means the run itself could not proceed (unreadable tree, malformed
/// ordering table) — callers should treat that as a failure too, not a pass.
pub fn run_root(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let table_path = root.join("LINT_ORDERINGS.toml");
    let table_src = std::fs::read_to_string(&table_path)
        .map_err(|e| format!("cannot read {}: {e}", table_path.display()))?;
    let table = config::parse(&table_src).map_err(|e| e.to_string())?;

    let files = walk::workspace_rs_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;

    let mut out: Vec<Diagnostic> = Vec::new();
    let mut seen_orderings: BTreeMap<String, Vec<&'static str>> = BTreeMap::new();
    for rel in &files {
        let path = walk::rel_str(rel);
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let m = model::FileModel::build(lexer::split_lines(&src));
        rules::check_unsafe(&path, &m, &mut out);
        let used = rules::check_orderings(&path, &m, &table, &mut out);
        if !used.is_empty() {
            seen_orderings.insert(path.clone(), used);
        }
        rules::check_hot_path_allocs(&path, &m, &mut out);
        rules::check_scratch_pairing(&path, &m, &mut out);
        rules::check_unwraps(&path, &m, &mut out);
    }
    rules::check_table_staleness(&table, &seen_orderings, &mut out);
    out.sort();
    Ok(out)
}
