//! `essentials-lint` — the workspace's concurrency-correctness gate.
//!
//! The paper's portability claim (operators keep identical semantics while
//! execution policies swap parallel strategies underneath) rests on a small
//! set of hand-maintained invariants the Rust compiler cannot check: every
//! `unsafe` block is justified and quarantined, every atomic ordering is a
//! recorded per-field decision with a pairing story, the operator hot path
//! does not allocate or block — even transitively — and every pooled lease
//! returns to its pool. This crate enforces those as a static-analysis pass
//! over the workspace's own sources: a comment/string-aware lexer
//! (`lexer`), a token-tree parser extracting functions, call sites, atomic
//! fields and leases (`parse`), a heuristically-resolved call graph with an
//! explicit unresolved-edge report (`callgraph`), and the rule layers
//! (`rules` for lexical checks, `atomics` for the per-field ordering table,
//! `interproc` for reachability rules). Run as
//! `cargo run -p essentials-lint`, in CI, and by its own test suite against
//! a corpus of known-bad fixtures.
//!
//! The crate is dependency-free by design; DESIGN.md §15 documents the
//! analysis model and its known unsoundness.

pub mod atomics;
pub mod callgraph;
pub mod config;
pub mod interproc;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use callgraph::UnresolvedEdge;
pub use rules::Diagnostic;

/// Aggregate run statistics (reported, and asserted on by fixtures so a
/// resolver regression cannot silently zero a category).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LintStats {
    pub files: usize,
    pub functions: usize,
    /// Resolved call-edge instances.
    pub resolved_calls: usize,
    /// Call sites the resolver declined to pin down (see
    /// [`LintReport::unresolved`] for the sites themselves).
    pub unresolved_calls: usize,
    /// Distinct `(path, field)` atomic keys observed.
    pub atomic_fields: usize,
}

/// Everything one lint run produces.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Call edges the resolver reported rather than guessed (trait
    /// dispatch, ambiguous bare names). Not failures — but never silently
    /// zero either.
    pub unresolved: Vec<UnresolvedEdge>,
    pub stats: LintStats,
}

/// Lints the workspace rooted at `root` (the directory holding
/// `LINT_ORDERINGS.toml`).
///
/// `Err` means the run itself could not proceed (unreadable tree, malformed
/// ordering table) — callers should treat that as a failure too, not a pass.
pub fn run_root(root: &Path) -> Result<LintReport, String> {
    let table_path = root.join("LINT_ORDERINGS.toml");
    let table_src = std::fs::read_to_string(&table_path)
        .map_err(|e| format!("cannot read {}: {e}", table_path.display()))?;
    let table = config::parse(&table_src).map_err(|e| e.to_string())?;

    let rels = walk::workspace_rs_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;

    // --- phase 1: per-file models and lexical rules -----------------------
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut files: Vec<interproc::WsFile> = Vec::new();
    for rel in &rels {
        let path = walk::rel_str(rel);
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let m = model::FileModel::build(lexer::split_lines(&src));
        let syn = parse::parse_file(&m.lines);
        rules::check_unsafe(&path, &m, &mut out);
        rules::check_hot_path_allocs(&path, &m, &mut out);
        rules::check_scratch_pairing(&path, &m, &mut out);
        rules::check_unwraps(&path, &m, &mut out);
        files.push(interproc::WsFile {
            path,
            model: m,
            syn,
        });
    }

    // --- phase 2: per-field atomic checks ---------------------------------
    let mut seen: BTreeMap<String, atomics::FileAtomics> = BTreeMap::new();
    for f in &files {
        let observed = atomics::file_atomics(&f.model, &f.syn);
        if observed.is_empty() {
            continue;
        }
        atomics::check_fields(&f.path, &observed, &table, &mut out);
        seen.insert(f.path.clone(), observed);
    }
    atomics::check_staleness(&table, &seen, &mut out);
    atomics::check_pairing(&seen, &table, &mut out);

    // --- phase 3: call graph and interprocedural rules --------------------
    let triples: Vec<(String, bool, &parse::FileSyntax)> = files
        .iter()
        .map(|f| (f.path.clone(), rules::is_test_file(&f.path), &f.syn))
        .collect();
    let graph = callgraph::build(&triples, |file_idx, line| {
        files[file_idx]
            .model
            .in_test
            .get(line)
            .copied()
            .unwrap_or(false)
    });
    interproc::check_worker_reachability(&files, &graph, &mut out);
    interproc::check_lease_lifecycle(&files, &graph, &mut out);

    out.sort();
    out.dedup();
    let stats = LintStats {
        files: files.len(),
        functions: graph.fns.len(),
        resolved_calls: graph.resolved_count,
        unresolved_calls: graph.unresolved.len(),
        atomic_fields: seen.values().map(|f| f.len()).sum(),
    };
    Ok(LintReport {
        diagnostics: out,
        unresolved: graph.unresolved,
        stats,
    })
}

/// Renders the observed per-field atomic usage of the workspace as
/// `[[atomic]]` TOML skeletons — the `--dump-atomics` migration aid.
pub fn dump_atomics(root: &Path) -> Result<String, String> {
    let rels = walk::workspace_rs_files(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut seen: BTreeMap<String, atomics::FileAtomics> = BTreeMap::new();
    for rel in &rels {
        let path = walk::rel_str(rel);
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let m = model::FileModel::build(lexer::split_lines(&src));
        let syn = parse::parse_file(&m.lines);
        let observed = atomics::file_atomics(&m, &syn);
        if !observed.is_empty() {
            seen.insert(path, observed);
        }
    }
    Ok(atomics::dump_toml(&seen))
}

/// Serializes a report as a stable JSON document (the CI artifact). No
/// serde: the shape is flat and the strings only need `"`/`\` escaping.
pub fn report_to_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}{}\n",
            esc(&d.path),
            d.line,
            d.rule,
            esc(&d.msg),
            if i + 1 < report.diagnostics.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n  \"unresolved_calls\": [\n");
    for (i, u) in report.unresolved.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"callee\": \"{}\", \"reason\": \"{}\"}}{}\n",
            esc(&u.path),
            u.line,
            esc(&u.callee),
            esc(&u.reason),
            if i + 1 < report.unresolved.len() {
                ","
            } else {
                ""
            }
        ));
    }
    let st = &report.stats;
    s.push_str(&format!(
        "  ],\n  \"stats\": {{\"files\": {}, \"functions\": {}, \"resolved_calls\": {}, \
         \"unresolved_calls\": {}, \"atomic_fields\": {}}}\n}}\n",
        st.files, st.functions, st.resolved_calls, st.unresolved_calls, st.atomic_fields
    ));
    s
}
