//! Structural model of one source file: per-line test-region membership and
//! function extents, derived from the lexed code channel by brace counting.
//!
//! This is deliberately *approximate* parsing — no AST, no token tree. Brace
//! counting over comment- and literal-stripped code is exact for the
//! constructs the rules care about (`#[cfg(test)] mod … { }` regions and
//! `fn` bodies); the known blind spots (braces inside const generics,
//! `fn`-typed macro fragments) do not occur in this workspace and would fail
//! loudly as spurious diagnostics rather than silent passes.

use crate::lexer::{contains_word, Line};

/// A function body: the lines `[start, end]` (0-based, inclusive) spanned by
/// the innermost `{ … }` following a `fn` keyword.
#[derive(Debug)]
pub struct FnSpan {
    /// Line of the `fn` keyword.
    pub decl_line: usize,
    /// First line of the body (the one with the opening brace).
    pub start: usize,
    /// Line of the matching closing brace.
    pub end: usize,
}

/// Lexed lines plus structural facts.
pub struct FileModel {
    pub lines: Vec<Line>,
    /// Per line: inside a `#[cfg(test)] mod … { }` region.
    pub in_test: Vec<bool>,
    /// All function bodies, in source order.
    pub functions: Vec<FnSpan>,
}

impl FileModel {
    pub fn build(lines: Vec<Line>) -> FileModel {
        let in_test = mark_test_regions(&lines);
        let functions = find_functions(&lines);
        FileModel {
            lines,
            in_test,
            functions,
        }
    }

    /// The innermost function span containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }
}

/// Net and minimum brace depth contribution of a code line.
fn brace_delta(code: &str) -> i32 {
    let mut d = 0i32;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Marks the lines inside `#[cfg(test)] mod … { }` regions.
fn mark_test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth = 0i32;
    // (depth at which the test mod's body closes)
    let mut test_close_depth: Option<i32> = None;
    // A `#[cfg(test)]` attribute has been seen and no item consumed it yet.
    let mut pending_cfg_test = false;

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if test_close_depth.is_some() {
            in_test[i] = true;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && !code.is_empty() {
            if contains_word(code, "mod") && test_close_depth.is_none() {
                // Region starts at this mod's opening brace; it closes when
                // depth returns to the current level.
                in_test[i] = true;
                test_close_depth = Some(depth);
            }
            // Any other item (or the mod itself) consumes the attribute.
            if !code.starts_with("#[") && !code.starts_with("#!") {
                pending_cfg_test = false;
            }
        }
        depth += brace_delta(&line.code);
        if let Some(close) = test_close_depth {
            if depth <= close {
                test_close_depth = None;
            }
        }
    }
    in_test
}

/// Finds all `fn` bodies by pairing each `fn` keyword with the next opening
/// brace and tracking depth to its close. Nested functions nest properly via
/// the stack.
fn find_functions(lines: &[Line]) -> Vec<FnSpan> {
    struct Open {
        decl_line: usize,
        start: usize,
        /// Depth *inside* the body.
        body_depth: i32,
    }
    let mut spans = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut depth = 0i32;
    // A `fn` keyword seen, its body brace not yet.
    let mut pending_fn: Option<usize> = None;

    for (i, line) in lines.iter().enumerate() {
        if contains_word(&line.code, "fn") {
            // Bodiless trait methods / fn-pointer types ending in `;` on the
            // same line never open a body; the `{` check below filters the
            // rest (a pending fn whose line-sequence hits `;` first is
            // cleared there too).
            pending_fn = Some(i);
        }
        for b in line.code.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    if let Some(decl_line) = pending_fn.take() {
                        stack.push(Open {
                            decl_line,
                            start: i,
                            body_depth: depth,
                        });
                    }
                }
                b'}' => {
                    if let Some(open) = stack.last() {
                        if depth == open.body_depth {
                            let open = stack.pop().expect("non-empty");
                            spans.push(FnSpan {
                                decl_line: open.decl_line,
                                start: open.start,
                                end: i,
                            });
                        }
                    }
                    depth -= 1;
                }
                // `fn f(…);` (trait signature) — no body follows.
                b';' if depth == stack.last().map_or(0, |o| o.body_depth) => {
                    pending_fn = None;
                }
                _ => {}
            }
        }
    }
    spans.sort_by_key(|s| s.start);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_lines;

    fn model(src: &str) -> FileModel {
        FileModel::build(split_lines(src))
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let m = model("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert_eq!(m.in_test, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item_does_not_open_region() {
        let m = model("#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(m.in_test.iter().all(|&t| !t));
    }

    #[test]
    fn function_spans_nest() {
        let m = model("fn outer() {\n    let c = |x: u32| x + 1;\n    fn inner() {\n        body();\n    }\n}\n");
        assert_eq!(m.functions.len(), 2);
        let inner = m.enclosing_fn(3).unwrap();
        assert_eq!((inner.start, inner.end), (2, 4));
        let outer = m.enclosing_fn(1).unwrap();
        assert_eq!((outer.start, outer.end), (0, 5));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let m = model(
            "trait T {\n    fn sig(&self);\n    fn with_body(&self) {\n        x();\n    }\n}\n",
        );
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].start, 2);
    }
}
