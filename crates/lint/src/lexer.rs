//! A minimal line-oriented lexer for Rust source.
//!
//! The rules in this crate are lexical: they need to know, per line, what is
//! *code* and what is *comment* — nothing more. This module splits a source
//! file into per-line `(code, comment)` pairs with string/char literal
//! contents blanked out of the code channel, so a rule that greps the code
//! channel for `unsafe` or `Ordering::SeqCst` can never be fooled by a
//! comment, a doc-example, or a string literal containing those tokens.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! count, `b`-prefixed forms), char/byte literals, and the char-literal vs.
//! lifetime ambiguity (`'a'` vs `&'a mut`).

/// One source line, split into its code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and literal contents blanked (quotes are
    /// kept so the shape of the line survives).
    pub code: String,
    /// Concatenated comment text of the line, without the `//`/`/*` markers.
    pub comment: String,
}

impl Line {
    /// True when the line carries no code at all (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// Lexer state that can span line boundaries.
enum State {
    Code,
    /// Inside nested block comments at the given depth.
    BlockComment(u32),
    /// Inside a plain string literal.
    Str,
    /// Inside a raw string literal terminated by `"` + this many `#`s.
    RawStr(u32),
}

/// Splits `src` into per-line code/comment channels.
pub fn split_lines(src: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let bytes = src.as_bytes();
    let mut i = 0;

    // Byte-wise scan: every delimiter this lexer cares about is ASCII, and
    // non-ASCII bytes are copied through verbatim inside their channel.
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            out.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    // Line comment: rest of the line is comment text.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\n' {
                        j += 1;
                    }
                    line.comment.push_str(&src[i + 2..j]);
                    i = j;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                b'"' => {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                }
                b'r' | b'b' => {
                    // Possible raw-string / byte-string prefix. Only treat it
                    // as one when `r`/`b`/`br` is its own token (previous
                    // byte is not part of an identifier).
                    let prev_is_ident =
                        i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                    if !prev_is_ident {
                        if let Some((hashes, consumed)) = raw_string_open(&bytes[i..]) {
                            line.code.push_str(&src[i..i + consumed]);
                            state = State::RawStr(hashes);
                            i += consumed;
                            continue;
                        }
                        if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                            line.code.push_str("b\"");
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                    }
                    line.code.push(b as char);
                    i += 1;
                }
                b'\'' => {
                    // Char literal or lifetime?
                    if let Some(consumed) = char_literal_len(&bytes[i..]) {
                        // Blank the contents, keep the quotes.
                        line.code.push_str("''");
                        i += consumed;
                    } else {
                        line.code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    // Copy through whatever this byte starts (possibly a
                    // multi-byte UTF-8 sequence).
                    let ch_len = utf8_len(b);
                    line.code.push_str(&src[i..i + ch_len]);
                    i += ch_len;
                }
            },
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    let ch_len = utf8_len(b);
                    line.comment.push_str(&src[i..i + ch_len]);
                    i += ch_len;
                }
            }
            State::Str => match b {
                b'\\' => i += 2, // skip the escaped byte, blanked anyway
                b'"' => {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                }
                _ => i += utf8_len(b),
            },
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(&bytes[i + 1..], hashes) {
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += utf8_len(b);
                }
            }
        }
    }
    // Match `str::lines` semantics: a trailing newline does not create an
    // extra empty line.
    if !src.is_empty() && !src.ends_with('\n') {
        out.push(line);
    }
    out
}

/// If `bytes` opens a raw string (`r"`, `r#"`, `br##"` …), returns
/// `(hash_count, bytes_consumed_through_opening_quote)`.
fn raw_string_open(bytes: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// True when `rest` (the bytes after a `"`) begins with `hashes` `#`s.
fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    rest.len() >= h && rest[..h].iter().all(|&b| b == b'#')
}

/// If `bytes` (starting at a `'`) is a char/byte literal, returns its total
/// byte length; `None` means it is a lifetime (or a stray quote).
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    debug_assert_eq!(bytes[0], b'\'');
    match bytes.get(1)? {
        b'\\' => {
            // Escape: scan to the closing quote.
            let mut j = 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    b'\\' => j += 2,
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            // `'X'` where X is one char: a literal. `'a` followed by
            // anything else: a lifetime.
            let first_len = utf8_len(*bytes.get(1)?);
            if bytes.get(1 + first_len) == Some(&b'\'') {
                Some(first_len + 2)
            } else {
                None
            }
        }
    }
}

/// Length of the UTF-8 sequence starting with `b` (1 for ASCII/continuation).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// True when `needle` occurs in `haystack` as a whole word (neighbours are
/// not identifier characters). The dependency-free stand-in for `\bword\b`.
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    find_word(haystack, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle`.
pub fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(h[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= h.len() || !is_ident_byte(h[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let lines = split_lines("let x = 1; // SAFETY: fine\n// unsafe in comment");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("SAFETY: fine"));
        assert!(lines[1].is_code_blank());
        assert!(lines[1].comment.contains("unsafe in comment"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let lines = split_lines("a /* one /* two */ still */ b\n/* open\nunsafe\n*/ c");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[2].is_code_blank());
        assert!(lines[2].comment.contains("unsafe"));
        assert_eq!(lines[3].code.trim(), "c");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = split_lines(r#"let s = "unsafe // not a comment"; tail"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("tail"));
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and unsafe\"#; after";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("after"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lines = codes("let c = '\"'; fn f<'a>(x: &'a str) {} let d = '\\'';");
        // The quote char literal must not open a string.
        assert!(lines[0].contains("fn f<'a>"));
        assert!(lines[0].contains("&'a str"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let lines = codes(r#"let s = "a\"unsafe\"b"; let t = 1;"#);
        assert!(!lines[0].contains("unsafe"));
        assert!(lines[0].contains("let t = 1;"));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(contains_word("pub unsafe fn", "unsafe"));
        assert!(!contains_word("unsafe_code", "unsafe"));
        assert!(!contains_word("not_unsafe", "unsafe"));
        assert!(contains_word("x.take_scratch()", "take_scratch"));
    }
}
