//! Workspace file discovery.
//!
//! Walks the workspace's own Rust sources: `src/`, `tests/`, `examples/`,
//! and `crates/`. Skips `vendor/` (third-party shims keep their upstream
//! idioms), `target/`, and any directory named `fixtures` (the linter's own
//! known-bad corpus must not lint the tree it certifies).

use std::fs;
use std::path::{Path, PathBuf};

/// Directories under the root that are scanned.
const ROOTS: [&str; 4] = ["src", "tests", "examples", "crates"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", "fixtures"];

/// All workspace `.rs` files under `root`, repo-relative with forward
/// slashes, sorted for stable diagnostics.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .map(|p| {
            p.strip_prefix(root)
                .expect("collected under root")
                .to_path_buf()
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders a repo-relative path with forward slashes regardless of platform.
pub fn rel_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
