//! The workspace call graph: functions from every walked file, call edges
//! resolved by name + receiver-type heuristics, and k-hop reachability.
//!
//! Resolution policy (DESIGN.md §15): a call with a concrete receiver-type
//! hint resolves against the `(type, method)` index; a call without a hint
//! resolves only when its name is *unique* in the workspace. Everything
//! else — `dyn Trait`/`impl Trait` dispatch and ambiguous bare names — is
//! recorded as an **unresolved edge** with a reason, never silently
//! dropped: the run reports the count and the JSON artifact lists every
//! site. Calls to names not defined anywhere in the workspace are external
//! (std or vendored) and are out of scope by construction.

use std::collections::BTreeMap;

use crate::parse::{CallSite, FileSyntax};

/// Flat function id across the workspace: index into [`CallGraph::fns`].
pub type FnId = usize;

/// One function node.
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Index of the file in the caller-provided file list.
    pub file: usize,
    /// Index of the function within that file's [`FileSyntax::fns`].
    pub fn_idx: usize,
    /// Name and optional `impl`/`trait` type.
    pub name: String,
    pub self_type: Option<String>,
    /// Test functions (test files or `#[cfg(test)]` regions) neither root
    /// nor extend interprocedural reachability.
    pub is_test: bool,
}

/// A call site the resolver could not pin to one definition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnresolvedEdge {
    pub path: String,
    /// 1-based line of the call.
    pub line: usize,
    pub callee: String,
    /// `trait-dispatch` or `ambiguous(N)`.
    pub reason: String,
}

/// The resolved graph.
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Out-edges per function (deduplicated).
    pub edges: Vec<Vec<FnId>>,
    /// In-edges per function (deduplicated).
    pub callers: Vec<Vec<FnId>>,
    /// Per function: `(call-site index, resolved target)` pairs, so rules
    /// can seed reachability from a subset of a body's calls (e.g. only
    /// those inside a worker closure).
    pub call_targets: Vec<Vec<(usize, FnId)>>,
    pub unresolved: Vec<UnresolvedEdge>,
    /// Total resolved call-edge instances (before dedup).
    pub resolved_count: usize,
}

/// Builds the graph over `(path, is_test_file, syntax)` triples. The
/// `in_test` closure reports whether a 0-based line of a file sits in a
/// `#[cfg(test)]` region.
pub fn build(
    files: &[(String, bool, &FileSyntax)],
    in_test: impl Fn(usize, usize) -> bool,
) -> CallGraph {
    // --- function index ---------------------------------------------------
    let mut fns: Vec<FnNode> = Vec::new();
    for (file_idx, (path, test_file, syn)) in files.iter().enumerate() {
        for (fn_idx, f) in syn.fns.iter().enumerate() {
            fns.push(FnNode {
                path: path.clone(),
                file: file_idx,
                fn_idx,
                name: f.name.clone(),
                self_type: f.self_type.clone(),
                is_test: *test_file || in_test(file_idx, f.decl_line),
            });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    for (id, n) in fns.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(id);
        if let Some(t) = &n.self_type {
            by_type_method.entry((t, &n.name)).or_default().push(id);
        }
    }

    // --- edge resolution --------------------------------------------------
    let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
    let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
    let mut call_targets: Vec<Vec<(usize, FnId)>> = vec![Vec::new(); fns.len()];
    let mut unresolved: Vec<UnresolvedEdge> = Vec::new();
    let mut resolved_count = 0usize;

    for (caller_id, node) in fns.iter().enumerate() {
        let (path, _, syn) = &files[node.file];
        let f = &syn.fns[node.fn_idx];
        for (call_idx, call) in f.calls.iter().enumerate() {
            match resolve(call, node, &by_name, &by_type_method) {
                Resolution::Edge(target) => {
                    resolved_count += 1;
                    edges[caller_id].push(target);
                    callers[target].push(caller_id);
                    call_targets[caller_id].push((call_idx, target));
                }
                Resolution::External => {}
                Resolution::Unresolved(reason) => {
                    // Test code calls into everything; its ambiguity is not
                    // a property of the analyzed system.
                    if !node.is_test {
                        unresolved.push(UnresolvedEdge {
                            path: path.clone(),
                            line: call.line + 1,
                            callee: call.callee.clone(),
                            reason,
                        });
                    }
                }
            }
        }
    }
    for v in edges.iter_mut().chain(callers.iter_mut()) {
        v.sort_unstable();
        v.dedup();
    }
    unresolved.sort();
    unresolved.dedup();

    CallGraph {
        fns,
        edges,
        callers,
        call_targets,
        unresolved,
        resolved_count,
    }
}

enum Resolution {
    Edge(FnId),
    External,
    Unresolved(String),
}

fn resolve(
    call: &CallSite,
    caller: &FnNode,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<FnId>>,
) -> Resolution {
    let callee = call.callee.as_str();
    let candidates = by_name.get(callee).map(Vec::as_slice).unwrap_or(&[]);
    if candidates.is_empty() {
        return Resolution::External;
    }
    if let Some(recv) = &call.recv_type {
        if let Some(trait_name) = recv.strip_prefix("dyn ") {
            // Trait-object dispatch: which impl runs is a runtime fact.
            let _ = trait_name;
            return Resolution::Unresolved(format!("trait-dispatch({recv})"));
        }
        if let Some(hits) = by_type_method.get(&(recv.as_str(), callee)) {
            // Same-file definition wins among duplicates (re-impls for
            // different generic params parse as separate nodes).
            return Resolution::Edge(pick(hits, caller));
        }
        // Hinted type has no such method in the workspace: the receiver is
        // a std/vendored type that happens to share a method name with
        // workspace functions (e.g. `v.push(…)` on a Vec while the
        // workspace also defines `push`). Claiming any of those edges
        // would be wrong; claiming none is the conservative choice.
        return Resolution::External;
    }
    // No hint: unique names resolve, ambiguous ones are reported.
    if candidates.len() == 1 {
        return Resolution::Edge(candidates[0]);
    }
    // Method call with multiple same-named definitions: prefer a method on
    // the caller's own impl type (`self`-adjacent helper chains), then
    // give up. Chained receivers (`self.field.len()`) are excluded — the
    // receiver there is a *member's* type, and claiming the impl's own
    // same-named method would invent an edge (e.g. `Vec::len` →
    // `Collector::len`).
    if call.is_method && !call.chained_recv {
        if let Some(t) = &caller.self_type {
            if let Some(hits) = by_type_method.get(&(t.as_str(), callee)) {
                return Resolution::Edge(pick(hits, caller));
            }
        }
    }
    Resolution::Unresolved(format!("ambiguous({})", candidates.len()))
}

/// Among same-signature candidates, prefer one in the caller's file.
fn pick(hits: &[FnId], caller: &FnNode) -> FnId {
    let _ = caller;
    hits[0]
}

impl CallGraph {
    /// Flat ids of the functions of file `file_idx`, in definition order.
    pub fn fns_of_file(&self, file_idx: usize) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file_idx)
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from `roots`, following out-edges up to `k` hops. Returns
    /// `(fn_id, hops, via)` for every non-test function first reached at
    /// `1..=k` hops, where `via` is the immediate caller on the shortest
    /// path. Roots themselves are not returned.
    pub fn reachable(&self, roots: &[FnId], k: usize) -> Vec<(FnId, usize, FnId)> {
        let mut dist: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut via: Vec<FnId> = vec![0; self.fns.len()];
        let mut frontier: Vec<FnId> = Vec::new();
        for &r in roots {
            if dist[r].is_none() {
                dist[r] = Some(0);
                frontier.push(r);
            }
        }
        let mut out = Vec::new();
        for hop in 1..=k {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.edges[u] {
                    if dist[v].is_none() && !self.fns[v].is_test {
                        dist[v] = Some(hop);
                        via[v] = u;
                        next.push(v);
                        out.push((v, hop, u));
                    }
                }
            }
            frontier = next;
        }
        out
    }
}
