//! The partitioned graph as "just another underlying representation"
//! (§III-D): top-level queries delegate to the owning sub-graph.
//!
//! Each part stores the CSR rows of the vertices it owns (columns keep
//! global ids). [`PartitionedGraph`] implements the same traits as
//! `essentials_graph::Graph`, so every operator and algorithm in the
//! workspace runs on it unchanged — queries are simply routed through the
//! ownership table to the sub-graph, exactly the delegation the paper
//! describes. `essentials-mp` builds its ranks from the same parts.

use essentials_graph::{EdgeId, EdgeValue, EdgeWeights, GraphBase, OutNeighbors, VertexId};

use crate::Partitioning;

/// One part's slice of the graph: the rows of its owned vertices.
pub struct Part<W: EdgeValue> {
    /// Owned vertices (ascending global ids).
    pub owned: Vec<VertexId>,
    /// Local CSR offsets over `owned` (len = owned.len() + 1).
    pub offsets: Vec<usize>,
    /// Destinations in **global** ids.
    pub cols: Vec<VertexId>,
    /// Edge weights aligned with `cols`.
    pub vals: Vec<W>,
    /// First global edge id of this part (parts own contiguous edge-id
    /// ranges so the partitioned graph exposes a consistent numbering).
    pub edge_base: EdgeId,
}

impl<W: EdgeValue> Part<W> {
    /// Number of edges owned by this part.
    pub fn num_edges(&self) -> usize {
        self.cols.len()
    }
}

/// A graph stored as `k` per-part sub-graphs plus an ownership table.
pub struct PartitionedGraph<W: EdgeValue = f32> {
    n: usize,
    m: usize,
    /// `owner[v]` = part id.
    owner: Vec<u32>,
    /// `local[v]` = index of v within its owner's `owned` list.
    local: Vec<u32>,
    parts: Vec<Part<W>>,
}

impl<W: EdgeValue> PartitionedGraph<W> {
    /// Splits `g` according to `p`. Edge ids are renumbered part-major (all
    /// of part 0's edges, then part 1's, …).
    pub fn build<G: EdgeWeights<W>>(g: &G, p: &Partitioning) -> Self {
        let n = g.num_vertices();
        assert_eq!(p.assignment.len(), n);
        let mut parts: Vec<Part<W>> = (0..p.k)
            .map(|_| Part {
                owned: Vec::new(),
                offsets: vec![0],
                cols: Vec::new(),
                vals: Vec::new(),
                edge_base: 0,
            })
            .collect();
        let mut local = vec![0u32; n];
        for v in g.vertices() {
            let part = &mut parts[p.assignment[v as usize] as usize];
            local[v as usize] = part.owned.len() as u32;
            part.owned.push(v);
            for e in g.out_edges(v) {
                part.cols.push(g.edge_dest(e));
                part.vals.push(g.edge_weight(e));
            }
            part.offsets.push(part.cols.len());
        }
        let mut base = 0;
        for part in &mut parts {
            part.edge_base = base;
            base += part.num_edges();
        }
        PartitionedGraph {
            n,
            m: base,
            owner: p.assignment.clone(),
            local,
            parts,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Owning part of a vertex.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> u32 {
        self.owner[v as usize]
    }

    /// The sub-graph of one part.
    pub fn part(&self, k: usize) -> &Part<W> {
        &self.parts[k]
    }

    /// Count of edges whose endpoints live in different parts — the
    /// communication volume a message-passing run will see.
    pub fn remote_edges(&self) -> usize {
        let mut cnt = 0;
        for (pi, part) in self.parts.iter().enumerate() {
            cnt += part
                .cols
                .iter()
                .filter(|&&d| self.owner[d as usize] as usize != pi)
                .count();
        }
        cnt
    }

    #[inline]
    fn locate(&self, v: VertexId) -> (&Part<W>, usize) {
        let part = &self.parts[self.owner[v as usize] as usize];
        (part, self.local[v as usize] as usize)
    }

    /// Resolves a global edge id to its owning part and local offset.
    fn locate_edge(&self, e: EdgeId) -> (&Part<W>, usize) {
        debug_assert!(e < self.m);
        let pi = self
            .parts
            .partition_point(|p| p.edge_base <= e)
            .saturating_sub(1);
        let part = &self.parts[pi];
        (part, e - part.edge_base)
    }
}

impl<W: EdgeValue> GraphBase for PartitionedGraph<W> {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn num_edges(&self) -> usize {
        self.m
    }
}

impl<W: EdgeValue> OutNeighbors for PartitionedGraph<W> {
    fn out_degree(&self, v: VertexId) -> usize {
        let (part, i) = self.locate(v);
        part.offsets[i + 1] - part.offsets[i]
    }
    fn out_edges(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        let (part, i) = self.locate(v);
        part.edge_base + part.offsets[i]..part.edge_base + part.offsets[i + 1]
    }
    fn edge_dest(&self, e: EdgeId) -> VertexId {
        let (part, off) = self.locate_edge(e);
        part.cols[off]
    }
    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (part, i) = self.locate(v);
        &part.cols[part.offsets[i]..part.offsets[i + 1]]
    }
}

impl<W: EdgeValue> EdgeWeights<W> for PartitionedGraph<W> {
    fn edge_weight(&self, e: EdgeId) -> W {
        let (part, off) = self.locate_edge(e);
        part.vals[off]
    }
    fn out_neighbor_weights(&self, v: VertexId) -> &[W] {
        let (part, i) = self.locate(v);
        &part.vals[part.offsets[i]..part.offsets[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_partition;
    use essentials_gen as gen;
    use essentials_graph::Graph;

    fn graph() -> Graph<f32> {
        let coo = gen::gnm(60, 400, 4);
        Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 1))
    }

    #[test]
    fn queries_match_the_flat_graph() {
        let g = graph();
        let p = random_partition(g.get_num_vertices(), 3, 7);
        let pg = PartitionedGraph::build(&g, &p);
        assert_eq!(pg.num_vertices(), g.num_vertices());
        assert_eq!(pg.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(pg.out_degree(v), g.out_degree(v));
            assert_eq!(pg.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(pg.out_neighbor_weights(v), g.out_neighbor_weights(v));
            // Edge-id-level queries route correctly too.
            for e in pg.out_edges(v) {
                assert!(pg.out_neighbors(v).contains(&pg.edge_dest(e)));
            }
        }
    }

    #[test]
    fn algorithms_run_unchanged_on_the_partitioned_representation() {
        // BFS via the trait-generic operator path: neighbors_expand works on
        // any EdgeWeights graph, so a quick reachability check suffices.
        use essentials_core::prelude::*;
        let g = graph();
        let p = random_partition(g.get_num_vertices(), 4, 3);
        let pg = PartitionedGraph::build(&g, &p);
        let ctx = Context::new(2);
        let f = SparseFrontier::single(0);
        let mut a = neighbors_expand(execution::par, &ctx, &g, &f, |_, _, _, _| true);
        let mut b = neighbors_expand(execution::par, &ctx, &pg, &f, |_, _, _, _| true);
        a.uniquify();
        b.uniquify();
        assert_eq!(a, b);
    }

    #[test]
    fn remote_edges_zero_for_single_part() {
        let g = graph();
        let p = Partitioning::new(vec![0; g.get_num_vertices()], 1);
        let pg = PartitionedGraph::build(&g, &p);
        assert_eq!(pg.remote_edges(), 0);
    }

    #[test]
    fn remote_edges_track_edge_cut() {
        let g = graph();
        let p = random_partition(g.get_num_vertices(), 4, 9);
        let pg = PartitionedGraph::build(&g, &p);
        assert_eq!(pg.remote_edges(), crate::metrics::edge_cut(&g, &p));
    }

    #[test]
    fn empty_parts_are_fine() {
        let g = graph();
        // Everything in part 0 of 3.
        let p = Partitioning::new(vec![0; g.get_num_vertices()], 3);
        let pg = PartitionedGraph::build(&g, &p);
        assert_eq!(pg.part(1).owned.len(), 0);
        assert_eq!(pg.out_degree(5), g.out_degree(5));
    }
}
