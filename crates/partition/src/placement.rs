//! Locality-aware partitioner view: vertex ranges → worker segments.
//!
//! §III-D treats a partitioned graph as "just another representation";
//! the memory-locality engine (DESIGN.md §12) needs the same idea one
//! level down — a [`Placement`] mapping contiguous vertex ranges to pool
//! workers so that the segmented dynamic schedule, the per-worker scratch
//! pools, and the blocked-gather bins all agree on where a vertex's data
//! lives. This module derives that map from graph structure (or from an
//! existing [`Partitioning`]); `essentials-parallel` consumes it.

use essentials_graph::{EdgeValue, Graph, GraphBase, OutNeighbors};
use essentials_parallel::Placement;

use crate::Partitioning;

/// An even contiguous split of `n` vertices into `workers` segments — the
/// baseline placement (identical to what the pool assumes when no
/// placement is installed).
pub fn contiguous_placement(n: usize, workers: usize) -> Placement {
    Placement::even(n, workers)
}

/// A contiguous split of the vertex space into `workers` segments whose
/// *edge* mass (out-degree sum) is balanced, so each worker's local
/// segment carries roughly the same gather work. Power-law graphs make
/// the even split badly skewed; this walks the degree prefix sum and cuts
/// at ideal boundaries (a vertex's edges never straddle a cut).
pub fn degree_balanced_placement<W: EdgeValue>(g: &Graph<W>, workers: usize) -> Placement {
    let workers = workers.max(1);
    let n = g.num_vertices();
    let total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
    if total == 0 || workers == 1 {
        return Placement::even(n, workers);
    }
    let ideal = total as f64 / workers as f64;
    let mut starts = Vec::with_capacity(workers + 1);
    starts.push(0usize);
    let mut acc = 0usize;
    for v in g.vertices() {
        acc += g.out_degree(v);
        // Cut after `v` each time the running mass crosses the next ideal
        // boundary (several cuts at once when one vertex is that heavy).
        while starts.len() <= workers && acc as f64 >= ideal * starts.len() as f64 {
            starts.push((v as usize + 1).min(n));
        }
    }
    while starts.len() <= workers {
        starts.push(n);
    }
    starts[workers] = n;
    Placement::from_boundaries(starts)
}

/// The placement induced by a k-way [`Partitioning`]: worker `w`'s
/// segment length is part `w`'s size, laid out contiguously in part
/// order. Exact when the partitioning is contiguous (each part is a
/// vertex range); for scattered assignments it still preserves each
/// part's *share* of the space, which is what the segmented scheduler
/// consumes.
pub fn placement_from_partitioning(p: &Partitioning) -> Placement {
    let sizes = p.part_sizes();
    let mut starts = Vec::with_capacity(p.k + 1);
    starts.push(0usize);
    let mut acc = 0usize;
    for s in sizes {
        acc += s;
        starts.push(acc);
    }
    Placement::from_boundaries(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Coo;

    fn star(n: usize) -> Graph<()> {
        // Vertex 0 points at everyone: all edge mass on the first vertex.
        let mut coo = Coo::new(n);
        for v in 1..n {
            coo.push(0, v as essentials_graph::VertexId, ());
        }
        Graph::from_coo(&coo)
    }

    #[test]
    fn contiguous_matches_even_split() {
        assert_eq!(contiguous_placement(100, 4), Placement::even(100, 4));
    }

    #[test]
    fn degree_balance_isolates_heavy_vertices() {
        let g = star(1000);
        let p = degree_balanced_placement(&g, 4);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.len(), 1000);
        // All edge mass sits on vertex 0, so the first segment is just the
        // hub and the remaining segments split the (edgeless) tail.
        assert_eq!(p.segment(0), 0..1);
    }

    #[test]
    fn degree_balance_on_uniform_graph_is_roughly_even() {
        let mut coo = Coo::new(64);
        for v in 0..64u32 {
            coo.push(v, (v + 1) % 64, ());
        }
        let g: Graph<()> = Graph::from_coo(&coo);
        let p = degree_balanced_placement(&g, 4);
        for w in 0..4 {
            assert_eq!(p.segment(w).len(), 16, "segment {w}");
        }
    }

    #[test]
    fn partitioning_view_preserves_part_shares() {
        let p = Partitioning::new(vec![0, 1, 0, 1, 1, 2], 3);
        let placement = placement_from_partitioning(&p);
        assert_eq!(placement.workers(), 3);
        assert_eq!(placement.segment(0).len(), 2);
        assert_eq!(placement.segment(1).len(), 3);
        assert_eq!(placement.segment(2).len(), 1);
    }
}
