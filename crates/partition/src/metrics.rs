//! Partition quality metrics: edge cut and balance.

use essentials_graph::{EdgeValue, OutNeighbors};

use crate::Partitioning;

/// Number of edges whose endpoints land in different parts. (On symmetric
/// graphs each undirected cut edge is counted twice, consistently across
/// heuristics.)
pub fn edge_cut<G: OutNeighbors>(g: &G, p: &Partitioning) -> usize {
    assert_eq!(p.assignment.len(), g.num_vertices());
    let mut cut = 0;
    for u in g.vertices() {
        let pu = p.assignment[u as usize];
        for &v in g.out_neighbors(u) {
            if p.assignment[v as usize] != pu {
                cut += 1;
            }
        }
    }
    cut
}

/// Load imbalance: `max part size / ideal part size` (1.0 = perfect).
pub fn balance(p: &Partitioning) -> f64 {
    let sizes = p.part_sizes();
    let max = *sizes.iter().max().unwrap_or(&0) as f64;
    let ideal = p.assignment.len() as f64 / p.k as f64;
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Edge-weighted cut: the total weight of cut edges — what distributed
/// communication volume actually tracks.
pub fn weighted_edge_cut<W, G>(g: &G, p: &Partitioning, weight_of: impl Fn(W) -> f64) -> f64
where
    W: EdgeValue,
    G: essentials_graph::EdgeWeights<W>,
{
    let mut cut = 0.0;
    for u in g.vertices() {
        let pu = p.assignment[u as usize];
        for e in g.out_edges(u) {
            if p.assignment[g.edge_dest(e) as usize] != pu {
                cut += weight_of(g.edge_weight(e));
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::{Coo, Graph};

    #[test]
    fn cut_counts_cross_part_edges() {
        // 0-1 same part, 1-2 cut.
        let g = Graph::<()>::from_coo(&Coo::from_edges(3, [(0, 1, ()), (1, 2, ())]));
        let p = Partitioning::new(vec![0, 0, 1], 2);
        assert_eq!(edge_cut(&g, &p), 1);
    }

    #[test]
    fn perfect_balance_is_one() {
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(balance(&p), 1.0);
        let q = Partitioning::new(vec![0, 0, 0, 1], 2);
        assert_eq!(balance(&q), 1.5);
    }

    #[test]
    fn weighted_cut() {
        let g = Graph::<f32>::from_coo(&Coo::from_edges(3, [(0, 1, 5.0), (1, 2, 2.0)]));
        let p = Partitioning::new(vec![0, 1, 1], 2);
        let c = weighted_edge_cut(&g, &p, |w| w as f64);
        assert_eq!(c, 5.0);
    }
}
