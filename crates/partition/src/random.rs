//! Baseline assignments: random and contiguous chunking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Partitioning;

/// Uniform random assignment — Table I's "random partitioning" baseline.
/// Ignores structure entirely; expected edge cut is `(1 - 1/k) · m`.
pub fn random_partition(n: usize, k: usize, seed: u64) -> Partitioning {
    assert!(k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    Partitioning::new((0..n).map(|_| rng.gen_range(0..k) as u32).collect(), k)
}

/// Contiguous chunks of vertex ids. On generators that number vertices
/// coherently (grids, rings) this is a surprisingly strong locality
/// heuristic; on scrambled ids it degenerates to random.
pub fn contiguous_partition(n: usize, k: usize) -> Partitioning {
    assert!(k >= 1);
    let chunk = n.div_ceil(k).max(1);
    Partitioning::new((0..n).map(|v| (v / chunk) as u32).collect(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = random_partition(100, 4, 1);
        let b = random_partition(100, 4, 1);
        assert_eq!(a, b);
        assert!(a.assignment.iter().all(|&p| p < 4));
    }

    #[test]
    fn random_is_roughly_balanced() {
        let p = random_partition(10_000, 4, 7);
        for s in p.part_sizes() {
            assert!((2000..3000).contains(&s), "{s}");
        }
    }

    #[test]
    fn contiguous_chunks_are_exact() {
        let p = contiguous_partition(10, 3);
        assert_eq!(p.assignment, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn more_parts_than_vertices() {
        let p = contiguous_partition(2, 5);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 2);
    }
}
