//! `essentials-partition` — partitioning heuristics (TLAV pillar 4).
//!
//! §III-D of the paper leaves partitioning "largely unexplored … work in
//! progress", but specifies the architecture: a partitioned graph is *just
//! another underlying representation*, and top-level graph queries delegate
//! to the owning sub-graph. This crate supplies:
//!
//! * [`random`] — random and contiguous (chunked) assignments, the
//!   baselines Table I lists under "Heuristics";
//! * [`multilevel`] — a from-scratch METIS-family multilevel partitioner
//!   (heavy-edge-matching coarsening → greedy region growing → boundary
//!   refinement), standing in for the METIS dependency \[7\];
//! * [`metrics`] — edge-cut and balance, the quantities experiment E4
//!   reports;
//! * [`partitioned_graph`] — the delegating representation of §III-D,
//!   implementing the same graph traits as `essentials_graph::Graph` and
//!   feeding `essentials-mp`'s ranks.

#![warn(missing_docs)]

pub mod metrics;
pub mod multilevel;
pub mod partitioned_graph;
pub mod placement;
pub mod random;

pub use metrics::{balance, edge_cut};
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use partitioned_graph::PartitionedGraph;
pub use placement::{contiguous_placement, degree_balanced_placement, placement_from_partitioning};
pub use random::{contiguous_partition, random_partition};

/// A k-way assignment of vertices to parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` = part id in `0..k`.
    pub assignment: Vec<u32>,
    /// Number of parts.
    pub k: usize,
}

impl Partitioning {
    /// Validates and wraps an assignment vector.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1, "need at least one part");
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "assignment references a part >= k"
        );
        Partitioning { assignment, k }
    }

    /// Number of vertices in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Vertices of one part, ascending.
    pub fn members(&self, part: u32) -> Vec<essentials_graph::VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(v, _)| v as essentials_graph::VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_sizes_and_members() {
        let p = Partitioning::new(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(p.part_sizes(), vec![2, 3]);
        assert_eq!(p.members(0), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "part >= k")]
    fn rejects_out_of_range_assignment() {
        Partitioning::new(vec![0, 2], 2);
    }
}
