//! Multilevel k-way partitioning — the from-scratch stand-in for METIS \[7\].
//!
//! The classic three-phase scheme:
//!
//! 1. **Coarsen**: heavy-edge matching (HEM) contracts matched pairs,
//!    accumulating vertex and edge weights, until the graph is small;
//! 2. **Initial partition**: greedy region growing assigns the coarsest
//!    vertices to k parts of near-equal vertex weight;
//! 3. **Uncoarsen + refine**: the assignment is projected back level by
//!    level, with greedy boundary refinement (positive-gain moves under a
//!    balance constraint — the Fiduccia–Mattheyses move rule without the
//!    bucket structure) at every level.
//!
//! Deterministic in `(graph, config)`: all randomness comes from the seeded
//! RNG.

use essentials_graph::OutNeighbors;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Partitioning;

/// Tuning knobs for the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelConfig {
    /// Number of parts.
    pub k: usize,
    /// RNG seed (matching order, seed selection, refinement order).
    pub seed: u64,
    /// Allowed imbalance: a part may weigh up to `imbalance × ideal`.
    pub imbalance: f64,
    /// Stop coarsening when at most this many vertices remain.
    pub coarsen_until: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
}

impl MultilevelConfig {
    /// Defaults for `k` parts.
    pub fn new(k: usize) -> Self {
        MultilevelConfig {
            k,
            seed: 1,
            imbalance: 1.10,
            coarsen_until: (20 * k).max(64),
            refine_passes: 4,
        }
    }
}

/// Internal undirected weighted graph used across levels.
struct WGraph {
    /// Vertex weights (coarse vertices aggregate the fines they contain).
    vw: Vec<u64>,
    /// Adjacency: `(neighbor, edge weight)`, deduplicated, loop-free.
    adj: Vec<Vec<(u32, u64)>>,
}

impl WGraph {
    fn n(&self) -> usize {
        self.vw.len()
    }
    fn total_weight(&self) -> u64 {
        self.vw.iter().sum()
    }
}

/// Runs the multilevel partitioner on (the symmetrized structure of) `g`.
pub fn multilevel_partition<G: OutNeighbors>(g: &G, cfg: MultilevelConfig) -> Partitioning {
    assert!(cfg.k >= 1);
    let n = g.num_vertices();
    if cfg.k == 1 || n == 0 {
        return Partitioning::new(vec![0; n], cfg.k.max(1));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let base = build_undirected(g);

    // ---- Coarsening ------------------------------------------------------
    let mut levels: Vec<WGraph> = vec![base];
    let mut maps: Vec<Vec<u32>> = Vec::new(); // fine vertex -> coarse vertex
    loop {
        let cur = levels.last().unwrap();
        if cur.n() <= cfg.coarsen_until {
            break;
        }
        // Cap coarse-vertex weight so hubs cannot swallow a part's worth of
        // vertices and make balance unachievable at the coarsest level.
        let max_vw = (cur.total_weight() / (4 * cfg.k as u64)).max(2);
        let (coarse, map) = coarsen_hem(cur, max_vw, &mut rng);
        // Diminishing returns: stop if matching barely shrank the graph.
        if coarse.n() as f64 > cur.n() as f64 * 0.95 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }

    // ---- Initial partition on the coarsest level --------------------------
    let coarsest = levels.last().unwrap();
    let mut assignment = grow_initial(coarsest, cfg, &mut rng);
    refine(coarsest, &mut assignment, cfg, &mut rng);

    // ---- Uncoarsen + refine ----------------------------------------------
    for li in (0..maps.len()).rev() {
        let fine = &levels[li];
        let map = &maps[li];
        let mut fine_assignment = vec![0u32; fine.n()];
        for v in 0..fine.n() {
            fine_assignment[v] = assignment[map[v] as usize];
        }
        assignment = fine_assignment;
        refine(fine, &mut assignment, cfg, &mut rng);
    }

    Partitioning::new(assignment, cfg.k)
}

/// Builds the undirected, deduplicated weighted structure of any directed
/// graph: edge weight = number of directed edges between the pair.
fn build_undirected<G: OutNeighbors>(g: &G) -> WGraph {
    let n = g.num_vertices();
    let mut pair_count: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            *pair_count.entry(key).or_insert(0) += 1;
        }
    }
    let mut adj = vec![Vec::new(); n];
    for (&(u, v), &w) in &pair_count {
        adj[u as usize].push((v, w));
        adj[v as usize].push((u, w));
    }
    // Hash-map iteration order is nondeterministic; sort for reproducibility.
    for row in &mut adj {
        row.sort_unstable();
    }
    WGraph {
        vw: vec![1; n],
        adj,
    }
}

/// Heavy-edge matching: visit vertices in random order, matching each
/// unmatched vertex to its heaviest unmatched neighbor; contract pairs.
fn coarsen_hem(g: &WGraph, max_vw: u64, rng: &mut StdRng) -> (WGraph, Vec<u32>) {
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for &(u, w) in &g.adj[v as usize] {
            if mate[u as usize] == UNMATCHED
                && u != v
                && g.vw[v as usize] + g.vw[u as usize] <= max_vw
            {
                let cand = (w, u);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }
    // Assign coarse ids (smaller endpoint of each pair owns the id).
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }
    // Contract.
    let cn = next as usize;
    let mut vw = vec![0u64; cn];
    for v in 0..n {
        vw[map[v] as usize] += g.vw[v];
    }
    let mut pair: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    for v in 0..n {
        let cv = map[v];
        for &(u, w) in &g.adj[v] {
            let cu = map[u as usize];
            if cu == cv || u < v as u32 {
                continue; // each undirected edge once (u > v side)
            }
            let key = if cv < cu { (cv, cu) } else { (cu, cv) };
            *pair.entry(key).or_insert(0) += w;
        }
    }
    let mut adj = vec![Vec::new(); cn];
    for (&(a, b), &w) in &pair {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    for row in &mut adj {
        row.sort_unstable();
    }
    (WGraph { vw, adj }, map)
}

/// Greedy region growing: grow each part by BFS from a random unassigned
/// seed until it reaches the ideal weight; leftovers join the lightest part.
fn grow_initial(g: &WGraph, cfg: MultilevelConfig, rng: &mut StdRng) -> Vec<u32> {
    let n = g.n();
    const FREE: u32 = u32::MAX;
    let mut assignment = vec![FREE; n];
    let ideal = g.total_weight() as f64 / cfg.k as f64;
    let mut part_weight = vec![0u64; cfg.k];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;
    for part in 0..cfg.k as u32 {
        // Find a free seed.
        while cursor < n && assignment[order[cursor] as usize] != FREE {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed = order[cursor];
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(v) = queue.pop_front() {
            if assignment[v as usize] != FREE {
                continue;
            }
            if part_weight[part as usize] as f64 >= ideal && part + 1 < cfg.k as u32 {
                break; // part is full; remaining queue abandoned
            }
            assignment[v as usize] = part;
            part_weight[part as usize] += g.vw[v as usize];
            for &(u, _) in &g.adj[v as usize] {
                if assignment[u as usize] == FREE {
                    queue.push_back(u);
                }
            }
        }
    }
    // Leftovers (disconnected remainders): lightest part wins.
    for (v, a) in assignment.iter_mut().enumerate() {
        if *a == FREE {
            let part = (0..cfg.k).min_by_key(|&p| part_weight[p]).unwrap();
            *a = part as u32;
            part_weight[part] += g.vw[v];
        }
    }
    assignment
}

/// Greedy boundary refinement: positive-gain moves under the balance
/// constraint, several randomized passes.
fn refine(g: &WGraph, assignment: &mut [u32], cfg: MultilevelConfig, rng: &mut StdRng) {
    let n = g.n();
    let k = cfg.k;
    let mut part_weight = vec![0u64; k];
    for v in 0..n {
        part_weight[assignment[v] as usize] += g.vw[v];
    }
    let max_weight = (g.total_weight() as f64 / k as f64 * cfg.imbalance).ceil() as u64;
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..cfg.refine_passes {
        order.shuffle(rng);
        let mut moved = false;
        let mut conn = vec![0u64; k];
        for &v in &order {
            let vu = v as usize;
            let home = assignment[vu] as usize;
            // Connectivity of v to each part.
            let mut touched: Vec<usize> = Vec::new();
            for &(u, w) in &g.adj[vu] {
                let p = assignment[u as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += w;
            }
            let internal = conn[home];
            #[allow(unused_mut)]
            let mut best: Option<(u64, usize)> = None;
            for &p in &touched {
                if p == home {
                    continue;
                }
                if part_weight[p] + g.vw[vu] > max_weight {
                    continue;
                }
                if conn[p] > internal && best.is_none_or(|(bw, _)| conn[p] > bw) {
                    best = Some((conn[p], p));
                }
            }
            // Balance repair: an overweight home part evicts even without
            // positive gain, preferring the best-connected feasible part and
            // falling back to the globally lightest one.
            if best.is_none() && part_weight[home] > max_weight {
                let fallback = (0..k)
                    .filter(|&p| p != home && part_weight[p] + g.vw[vu] <= max_weight)
                    .max_by_key(|&p| (conn[p], std::cmp::Reverse(part_weight[p])));
                if let Some(p) = fallback {
                    best = Some((conn[p], p));
                }
            }
            if let Some((_, p)) = best {
                part_weight[home] -= g.vw[vu];
                part_weight[p] += g.vw[vu];
                assignment[vu] = p as u32;
                moved = true;
            }
            for &p in &touched {
                conn[p] = 0;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, edge_cut};
    use crate::random::random_partition;
    use essentials_gen as gen;
    use essentials_graph::{Graph, GraphBuilder};

    fn sym(coo: &essentials_graph::Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo.clone())
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn beats_random_cut_on_a_grid_by_a_wide_margin() {
        let g = sym(&gen::grid2d(32, 32));
        let ml = multilevel_partition(&g, MultilevelConfig::new(4));
        let rnd = random_partition(g.get_num_vertices(), 4, 1);
        let (c_ml, c_rnd) = (edge_cut(&g, &ml), edge_cut(&g, &rnd));
        assert!(
            c_ml * 3 < c_rnd,
            "multilevel {c_ml} should be well under random {c_rnd}"
        );
        assert!(balance(&ml) <= 1.15, "balance {}", balance(&ml));
    }

    #[test]
    fn respects_balance_on_power_law_graphs() {
        let g = sym(&gen::rmat(10, 8, gen::RmatParams::default(), 5));
        let ml = multilevel_partition(&g, MultilevelConfig::new(8));
        assert!(balance(&ml) <= 1.35, "balance {}", balance(&ml));
        let rnd = random_partition(g.get_num_vertices(), 8, 2);
        assert!(edge_cut(&g, &ml) < edge_cut(&g, &rnd));
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = sym(&gen::grid2d(5, 5));
        let p = multilevel_partition(&g, MultilevelConfig::new(1));
        assert!(p.assignment.iter().all(|&x| x == 0));
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = sym(&gen::gnm(500, 2000, 3));
        let a = multilevel_partition(&g, MultilevelConfig::new(4));
        let b = multilevel_partition(&g, MultilevelConfig::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two separate grids.
        let mut coo = essentials_graph::Coo::<()>::new(50);
        for (s, d, _) in gen::grid2d(5, 5).iter() {
            coo.push(s, d, ());
            coo.push(s + 25, d + 25, ());
        }
        let g = sym(&coo);
        let p = multilevel_partition(&g, MultilevelConfig::new(2));
        assert_eq!(p.assignment.len(), 50);
        assert!(balance(&p) <= 1.2);
    }

    #[test]
    fn tiny_graph_fewer_vertices_than_parts() {
        let g = sym(&gen::path(3));
        let p = multilevel_partition(&g, MultilevelConfig::new(8));
        assert_eq!(p.assignment.len(), 3);
        // Every vertex still has a valid part id.
        assert!(p.assignment.iter().all(|&x| (x as usize) < 8));
    }
}
