//! Property-based tests: every partitioner yields a valid cover; the
//! partitioned graph answers exactly the same queries as the flat graph;
//! metrics are internally consistent.

use essentials_graph::{Coo, EdgeWeights, Graph, GraphBase, OutNeighbors, VertexId};
use essentials_partition::{
    balance, contiguous_partition, edge_cut, multilevel_partition, random_partition,
    MultilevelConfig, PartitionedGraph, Partitioning,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph<f32>> {
    (1usize..50).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 1u32..20);
        prop::collection::vec(edge, 0..250).prop_map(move |edges| {
            Graph::from_coo(&Coo::from_edges(
                n,
                edges.into_iter().map(|(s, d, w)| (s, d, w as f32)),
            ))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partitioners_produce_valid_covers(g in arb_graph(), k in 1usize..7, seed in 0u64..8) {
        let n = g.num_vertices();
        for p in [
            random_partition(n, k, seed),
            contiguous_partition(n, k),
            multilevel_partition(&g, MultilevelConfig { seed, ..MultilevelConfig::new(k) }),
        ] {
            prop_assert_eq!(p.assignment.len(), n);
            prop_assert!(p.assignment.iter().all(|&x| (x as usize) < k));
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
            // Edge cut is bounded by the edge count; balance >= 1 when any
            // part is non-empty.
            prop_assert!(edge_cut(&g, &p) <= g.num_edges());
            if n > 0 {
                prop_assert!(balance(&p) >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn partitioned_graph_is_query_equivalent(g in arb_graph(), k in 1usize..6, seed in 0u64..8) {
        let p = random_partition(g.num_vertices(), k, seed);
        let pg = PartitionedGraph::build(&g, &p);
        prop_assert_eq!(pg.num_vertices(), g.num_vertices());
        prop_assert_eq!(pg.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(pg.out_degree(v), g.out_degree(v));
            prop_assert_eq!(pg.out_neighbors(v), g.out_neighbors(v));
            prop_assert_eq!(pg.out_neighbor_weights(v), g.out_neighbor_weights(v));
            let (pr, gr) = (pg.out_edges(v), g.out_edges(v));
            prop_assert_eq!(pr.len(), gr.len());
            for (pe, ge) in pr.zip(gr) {
                prop_assert_eq!(pg.edge_dest(pe), g.edge_dest(ge));
                prop_assert_eq!(pg.edge_weight(pe), g.edge_weight(ge));
            }
        }
        prop_assert_eq!(pg.remote_edges(), edge_cut(&g, &p));
    }

    #[test]
    fn single_part_has_zero_cut_and_perfect_balance(g in arb_graph()) {
        let p = Partitioning::new(vec![0; g.num_vertices()], 1);
        prop_assert_eq!(edge_cut(&g, &p), 0);
        if g.num_vertices() > 0 {
            prop_assert!((balance(&p) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn multilevel_is_deterministic(g in arb_graph(), k in 1usize..5) {
        let a = multilevel_partition(&g, MultilevelConfig::new(k));
        let b = multilevel_partition(&g, MultilevelConfig::new(k));
        prop_assert_eq!(a, b);
    }
}
