//! `essentials-bench` — shared workloads and table formatting for the
//! experiment suite (DESIGN.md §4).
//!
//! The paper has no quantitative tables of its own (Table I is
//! qualitative), so each experiment E1–E8 instantiates one of its coverage
//! claims as a measurable comparison. The same workload definitions feed
//! both the Criterion microbenches (`benches/e*.rs`) and the `harness`
//! binary that prints the full paper-style tables archived in
//! EXPERIMENTS.md.

#![warn(missing_docs)]

use essentials_core::prelude::*;
use essentials_gen as gen;

/// The two topology regimes every experiment sweeps, plus a mid-point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Power-law / low diameter (social-network proxy).
    Rmat,
    /// Uniform / high diameter (road-network proxy).
    Grid,
    /// Small-world in between.
    SmallWorld,
}

impl Workload {
    /// All workloads in report order.
    pub const ALL: [Workload; 3] = [Workload::Rmat, Workload::Grid, Workload::SmallWorld];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Rmat => "rmat",
            Workload::Grid => "grid",
            Workload::SmallWorld => "small-world",
        }
    }

    /// Builds the unweighted edge list at a given size class. `scale`
    /// controls vertex count ≈ 2^scale.
    pub fn edges(&self, scale: u32) -> Coo<()> {
        match self {
            Workload::Rmat => gen::rmat(scale, 16, gen::RmatParams::default(), 42),
            Workload::Grid => {
                let side = ((1usize << scale) as f64).sqrt() as usize;
                gen::grid2d(side, side)
            }
            Workload::SmallWorld => gen::watts_strogatz(1 << scale, 8, 0.1, 42),
        }
    }

    /// Simple directed graph (loops removed, deduplicated), CSR + CSC.
    pub fn directed(&self, scale: u32) -> Graph<()> {
        GraphBuilder::from_coo(self.edges(scale))
            .remove_self_loops()
            .deduplicate()
            .with_csc()
            .build()
    }

    /// Symmetrized simple graph, CSR + CSC.
    pub fn symmetric(&self, scale: u32) -> Graph<()> {
        GraphBuilder::from_coo(self.edges(scale))
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .with_csc()
            .build()
    }

    /// Symmetrized weighted graph (endpoint-hashed weights in [0.1, 2.0),
    /// equal in both directions), CSR + CSC.
    pub fn weighted(&self, scale: u32) -> Graph<f32> {
        let coo = {
            let mut c = self.edges(scale);
            c.remove_self_loops();
            c.symmetrize();
            c.sort_and_dedup();
            c
        };
        let mut g = Graph::from_coo(&gen::hash_weights(&coo, 0.1, 2.0, 42));
        g.ensure_csc();
        g
    }
}

/// Milliseconds of one run of `f`, plus its output.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = std::time::Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64() * 1e3, out)
}

/// Median-of-`reps` wall time in milliseconds (first run discarded as
/// warm-up when `reps > 1`).
pub fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    f(); // warm-up
    for _ in 0..reps {
        samples.push(time_ms(&mut f).0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[reps / 2]
}

/// Prints a table header + rule, `widths` in characters.
pub fn table_header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$}  ", w = w));
        rule.push_str(&format!("{:->w$}  ", "", w = w));
    }
    println!("{line}");
    println!("{rule}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_at_small_scale() {
        for w in Workload::ALL {
            let g = w.directed(8);
            assert!(g.get_num_vertices() > 0, "{}", w.name());
            assert!(g.csc().is_some());
            let s = w.symmetric(8);
            assert!(essentials_graph::properties::is_symmetric(s.csr()));
            let wg = w.weighted(8);
            assert!(wg.csr().values().iter().all(|&x| (0.1..2.0).contains(&x)));
        }
    }

    #[test]
    fn median_ms_is_finite() {
        let m = median_ms(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0 && m.is_finite());
    }
}
