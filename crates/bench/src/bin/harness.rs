//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p essentials-bench --bin harness [scale]`
//! (default scale 12 ⇒ ~4k-vertex graphs; scale 14–16 for longer runs).
//!
//! With `--json FILE` the harness writes the machine-readable benchmark
//! snapshot (schema `essentials-bench/v6`, see EXPERIMENTS.md). The
//! resilience flags `--deadline-ms N` and `--max-iters N` attach a
//! `RunBudget` to a dedicated budget experiment in that session: the
//! flagship algorithms run through their fallible `try_*` entry points and
//! every `ExecError` outcome (deadline-expired, iteration-cap, …) lands in
//! the output as its own row instead of aborting the process. The `chaos`
//! experiment (always part of a `--json` session) drives a seeded
//! fault-injection storm through the serving engine; `--chaos-seed N`
//! overrides the default seed so a failing schedule can be replayed
//! deterministically — every fault key is `(request, iteration, chunk)`.
//!
//! With `--obs FILE` the harness instead runs an *observed* session: the
//! flagship traversals execute with a `TeeSink(CountersSink, TraceSink)`
//! attached to the context, every event is exported to FILE as JSON lines,
//! and a summary digest (MTEPS, load-balance skew, iterations) is printed.
//!
//! Each experiment E1–E8 instantiates one coverage claim of the paper's
//! Table I as a measurable comparison; see DESIGN.md §4 for the mapping.
//! Wall times on this host are indicative only (single-core container);
//! the work columns (relaxations, edges inspected, messages, edge-cut) are
//! machine-independent.

#![allow(clippy::type_complexity)]

use std::sync::Arc;

use essentials_algos::{
    bfs, cc, color, hits, kcore, mst, multi_source, pagerank, spmv, sssp, sswp, tc,
};
use essentials_bench::{median_ms, table_header, time_ms, Workload};
use essentials_core::obs::write_jsonl;
use essentials_core::prelude::*;
use essentials_mp::algorithms::{mp_bfs, mp_pagerank, mp_sssp, mp_sssp_combined};
use essentials_mp::async_mp::{async_mp_bfs, async_mp_sssp};
use essentials_partition::{
    balance, contiguous_partition, degree_balanced_placement, edge_cut, multilevel_partition,
    random_partition, MultilevelConfig, PartitionedGraph,
};

fn main() {
    let mut scale: u32 = 12;
    let mut obs_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_iters: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--obs" {
            obs_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--obs requires an output path (e.g. --obs out.jsonl)");
                std::process::exit(2);
            }));
        } else if arg == "--json" {
            json_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--json requires an output path (e.g. --json bench.json)");
                std::process::exit(2);
            }));
        } else if arg == "--deadline-ms" {
            deadline_ms = Some(number_arg(args.next(), "--deadline-ms"));
        } else if arg == "--max-iters" {
            max_iters = Some(number_arg(args.next(), "--max-iters"));
        } else if arg == "--chaos-seed" {
            chaos_seed = Some(number_arg(args.next(), "--chaos-seed"));
        } else if let Ok(s) = arg.parse() {
            scale = s;
        } else {
            eprintln!(
                "unrecognized argument {arg:?}; usage: harness [scale] [--obs FILE] \
                 [--json FILE [--deadline-ms N] [--max-iters N] [--chaos-seed N]]"
            );
            std::process::exit(2);
        }
    }
    let budget = match (deadline_ms, max_iters) {
        (None, None) => None,
        (d, m) => {
            let mut b = RunBudget::unlimited();
            if let Some(ms) = d {
                b = b.with_timeout(std::time::Duration::from_millis(ms));
            }
            if let Some(n) = m {
                b = b.with_max_iterations(n);
            }
            Some(b)
        }
    };
    if let Some(path) = json_path {
        json_session(scale, &path, budget, chaos_seed.unwrap_or(0xC0FFEE));
        return;
    }
    if budget.is_some() || chaos_seed.is_some() {
        eprintln!("--deadline-ms/--max-iters/--chaos-seed only apply to --json sessions");
        std::process::exit(2);
    }
    if let Some(path) = obs_path {
        obs_session(scale, &path);
        return;
    }
    let threads = [1usize, 2, 4];
    println!("essentials-rs experiment harness — scale {scale}, host threads sweep {threads:?}");
    println!("(single-core host: wall-times are indicative; work columns are exact)\n");

    e1_timing(scale);
    e2_communication(scale);
    e3_direction(scale);
    e4_partitioning(scale);
    e5_load_balance(scale);
    e6_sssp(scale);
    e7_suite(scale);
    e8_message_passing(scale);
}

/// Parses the numeric operand of `flag`, exiting with usage help when it
/// is missing or malformed.
fn number_arg<T: std::str::FromStr>(val: Option<String>, flag: &str) -> T {
    val.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a number (e.g. {flag} 50)");
        std::process::exit(2);
    })
}

/// `--obs` mode: run the flagship traversals with the full observability
/// stack attached, export every event as JSON lines, and print the digest.
fn obs_session(scale: u32, path: &str) {
    let ctx = Context::new(4);
    let workers = ctx.pool().num_threads();
    let counters = Arc::new(CountersSink::new(workers));
    let trace = Arc::new(TraceSink::new());
    let tee = TeeSink::new()
        .with(counters.clone() as Arc<dyn ObsSink>)
        .with(trace.clone() as Arc<dyn ObsSink>);
    let ctx = ctx.with_obs(Arc::new(tee));

    println!("observed session — scale {scale}, {workers} workers, trace → {path}");
    let g = Workload::Rmat.symmetric(scale);
    let wg = Workload::Rmat.weighted(scale);

    trace.mark("bfs-direction-optimizing");
    bfs::bfs_direction_optimizing(execution::par, &ctx, &g, 0, bfs::DoParams::default());
    trace.mark("sssp-bsp");
    sssp::sssp(execution::par, &ctx, &wg, 0);
    trace.mark("pagerank-pull");
    pagerank::pagerank_pull(execution::par, &ctx, &g, pagerank::PrConfig::default());

    let records = trace.records();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    }));
    write_jsonl(&records, &mut file).expect("trace export failed");

    let summary = Summary::from_records(&records);
    println!("{}", summary.render());
    let totals = counters.snapshot();
    println!(
        "counters: {} advance calls, {} edges admitted, {} filter drops, skew {:.3}",
        totals.advance_calls,
        totals.edges_admitted,
        totals.filter_drops,
        totals.skew_ratio()
    );
    println!("{} records written to {path}", records.len());
}

/// One machine-readable benchmark result (a row of BENCH_XXXX.json).
struct JsonRow {
    experiment: &'static str,
    workload: &'static str,
    algo: &'static str,
    variant: String,
    threads: usize,
    ms: f64,
    iterations: usize,
    /// Machine-independent work column: edges inspected (BFS), relaxations
    /// (SSSP), label updates (CC), gathered/scattered edges (PageRank),
    /// set bits visited (bitmap-scan ablation).
    work: usize,
    /// Millions of work units per second (work / ms / 1000).
    mteps: f64,
    /// `"ok"` for completed runs, or the stable [`ExecError::kind`] label
    /// (`cancelled`, `deadline-expired`, `iteration-cap`, `worker-panic`,
    /// `diverged`) when a budgeted run stopped early.
    outcome: &'static str,
    /// Schema-v4 extension point: extra experiment-specific JSON members,
    /// pre-rendered as `,"key":value,...` (empty for plain rows). The
    /// serving experiments carry latency percentiles and saturation flags
    /// here so the core column set stays stable across schema versions.
    extras: String,
}

impl JsonRow {
    fn to_json(&self) -> String {
        // All strings here are static identifiers or ASCII variant labels —
        // nothing needs escaping (same reasoning as the obs JSONL export).
        format!(
            "{{\"experiment\":\"{}\",\"workload\":\"{}\",\"algo\":\"{}\",\"variant\":\"{}\",\"threads\":{},\"ms\":{:.3},\"iterations\":{},\"work\":{},\"mteps\":{:.2},\"outcome\":\"{}\"{}}}",
            self.experiment, self.workload, self.algo, self.variant,
            self.threads, self.ms, self.iterations, self.work, self.mteps,
            self.outcome, self.extras,
        )
    }
}

fn mteps(work: usize, ms: f64) -> f64 {
    if ms > 0.0 {
        work as f64 / ms / 1000.0
    } else {
        0.0
    }
}

/// `--json` mode: the machine-readable benchmark session. Runs the
/// direction-engine comparisons (BFS / SSSP / CC / PageRank, fixed vs
/// adaptive) and the bitmap-scan ablation, and writes every result as one
/// JSON object per row (schema documented in EXPERIMENTS.md). Snapshots of
/// this output are committed as BENCH_XXXX.json; regenerate with
/// `cargo run --release -p essentials-bench --bin harness -- SCALE --json FILE`.
///
/// With a `budget` (from `--deadline-ms`/`--max-iters`) an extra `budget`
/// experiment runs the flagship algorithms through their fallible `try_*`
/// entry points under that [`RunBudget`]; `ExecError` stops become rows
/// with a non-`ok` outcome instead of aborting the session.
///
/// The `chaos` experiment always runs: a seeded fault-injection storm
/// (worker panics at `(iteration, chunk)` coordinates, service delays,
/// exhausted budgets, poisoned recycle locks) against 1-permit and
/// 8-permit serving engines, verifying the resilience contract of
/// DESIGN.md §16 and reporting shed/degraded/quarantine counters. The
/// seed comes from `--chaos-seed` (default `0xC0FFEE`) so any failing
/// schedule replays deterministically.
fn json_session(scale: u32, path: &str, budget: Option<RunBudget>, chaos_seed: u64) {
    use essentials_parallel::atomics::AtomicBitset;

    let mut rows: Vec<JsonRow> = Vec::new();

    // --- direction: BFS push vs pull vs adaptive, thread sweep -----------
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.symmetric(scale);
        let reference = bfs::bfs_sequential(&g, 0).level;
        for &t in &[1usize, 2, 4] {
            let ctx = Context::new(t);
            let runs: Vec<(&str, Box<dyn Fn() -> bfs::BfsResult>)> = vec![
                ("push", Box::new(|| bfs::bfs(execution::par, &ctx, &g, 0))),
                (
                    "pull",
                    Box::new(|| bfs::bfs_pull(execution::par, &ctx, &g, 0)),
                ),
                (
                    "adaptive",
                    Box::new(|| bfs::bfs_adaptive(execution::par, &ctx, &g, 0)),
                ),
            ];
            for (variant, f) in runs {
                let r = f();
                assert_eq!(r.level, reference, "{variant} diverged");
                let ms = median_ms(3, || {
                    f();
                });
                rows.push(JsonRow {
                    experiment: "direction",
                    workload: w.name(),
                    algo: "bfs",
                    variant: variant.to_string(),
                    threads: t,
                    ms,
                    iterations: r.stats.iterations,
                    work: r.edges_inspected,
                    mteps: mteps(r.edges_inspected, ms),
                    outcome: "ok",
                    extras: String::new(),
                });
            }
        }
    }

    // --- direction: SSSP / CC / PageRank, fixed vs adaptive --------------
    let ctx = Context::new(4);
    for w in [Workload::Rmat, Workload::Grid] {
        let wg = w.weighted(scale);
        let g = w.symmetric(scale);
        let n = g.get_num_vertices();
        let m = g.get_num_edges();

        let sssp_runs: Vec<(&str, Box<dyn Fn() -> sssp::SsspResult>)> = vec![
            (
                "push",
                Box::new(|| sssp::sssp(execution::par, &ctx, &wg, 0)),
            ),
            (
                "adaptive",
                Box::new(|| sssp::sssp_adaptive(execution::par, &ctx, &wg, 0)),
            ),
        ];
        for (variant, f) in sssp_runs {
            let r = f();
            let ms = median_ms(3, || {
                f();
            });
            rows.push(JsonRow {
                experiment: "direction",
                workload: w.name(),
                algo: "sssp",
                variant: variant.to_string(),
                threads: 4,
                ms,
                iterations: r.stats.iterations,
                work: r.relaxations,
                mteps: mteps(r.relaxations, ms),
                outcome: "ok",
                extras: String::new(),
            });
        }

        let cc_runs: Vec<(&str, Box<dyn Fn() -> cc::CcResult>)> = vec![
            (
                "label-prop",
                Box::new(|| cc::cc_label_propagation(execution::par, &ctx, &g)),
            ),
            (
                "adaptive",
                Box::new(|| cc::cc_adaptive(execution::par, &ctx, &g)),
            ),
        ];
        for (variant, f) in cc_runs {
            let r = f();
            let ms = median_ms(3, || {
                f();
            });
            rows.push(JsonRow {
                experiment: "direction",
                workload: w.name(),
                algo: "cc",
                variant: variant.to_string(),
                threads: 4,
                ms,
                iterations: r.stats.iterations,
                work: r.updates,
                mteps: mteps(r.updates, ms),
                outcome: "ok",
                extras: String::new(),
            });
        }

        let cfg = pagerank::PrConfig {
            damping: 0.85,
            tolerance: 0.0, // fixed iteration count: identical work per variant
            max_iterations: 20,
        };
        let pr_runs: Vec<(&str, Box<dyn Fn() -> pagerank::PageRankResult>)> = vec![
            (
                "pull",
                Box::new(|| pagerank::pagerank_pull(execution::par, &ctx, &g, cfg)),
            ),
            (
                "push",
                Box::new(|| pagerank::pagerank_push(execution::par, &ctx, &g, cfg)),
            ),
            (
                "adaptive",
                Box::new(|| {
                    pagerank::pagerank_adaptive(execution::par, &ctx, &g, cfg, Default::default())
                }),
            ),
        ];
        for (variant, f) in pr_runs {
            let r = f();
            let ms = median_ms(3, || {
                f();
            });
            let work = m * r.stats.iterations;
            rows.push(JsonRow {
                experiment: "direction",
                workload: w.name(),
                algo: "pagerank",
                variant: variant.to_string(),
                threads: 4,
                ms,
                iterations: r.stats.iterations,
                work,
                mteps: mteps(work, ms),
                outcome: "ok",
                extras: String::new(),
            });
        }
        let _ = n;
    }

    // --- ablation: bitmap decode — per-bit probe vs iterator vs word scan
    // The "work" column counts the set bits each scan visits; "mteps" is
    // millions of set bits decoded per second. The word scan must win at
    // high density (one load per 64 bits, no iterator machinery).
    let nbits = 1usize << 20;
    for density_pct in [1usize, 25, 50, 90] {
        let bits = AtomicBitset::new(nbits);
        for i in 0..nbits {
            if (i.wrapping_mul(2654435761)) % 100 < density_pct {
                bits.set(i);
            }
        }
        let set = bits.count_ones();
        let sink = std::sync::atomic::AtomicUsize::new(0);
        let pool_ctx = Context::new(4);
        let scans: Vec<(&str, Box<dyn Fn() -> usize>)> = vec![
            (
                "bit_probe",
                Box::new(|| (0..nbits).filter(|&i| bits.get(i)).count()),
            ),
            ("iter_ones", Box::new(|| bits.iter_ones().count())),
            (
                "word_scan",
                Box::new(|| {
                    let mut acc = 0usize;
                    bits.for_each_set(|_| acc += 1);
                    acc
                }),
            ),
            (
                // The kernel the masked pull actually runs: workers take
                // disjoint word ranges and decode them independently.
                "word_scan_par",
                Box::new(|| {
                    pool_ctx.pool().parallel_reduce(
                        0..bits.num_words(),
                        Schedule::Dynamic(64),
                        0usize,
                        |wi| {
                            let mut acc = 0usize;
                            bits.for_each_set_in_words(wi, wi + 1, &mut |_| acc += 1);
                            acc
                        },
                        |a, b| a + b,
                    )
                }),
            ),
        ];
        for (variant, f) in scans {
            assert_eq!(f(), set, "{variant} decoded a different set");
            // Sub-millisecond scans: amortize over 8 inner repetitions and
            // take the median of 9 trials to keep host jitter out of the
            // committed snapshot.
            let ms = median_ms(9, || {
                for _ in 0..8 {
                    sink.fetch_add(f(), std::sync::atomic::Ordering::Relaxed);
                }
            }) / 8.0;
            rows.push(JsonRow {
                experiment: "bitmap-scan",
                workload: "uniform",
                algo: "decode",
                variant: format!("{variant}/{density_pct}pct"),
                threads: if variant == "word_scan_par" { 4 } else { 1 },
                ms,
                iterations: 1,
                work: set,
                mteps: mteps(set, ms),
                outcome: "ok",
                extras: String::new(),
            });
        }
    }

    // --- compression: byte-coded CSR vs raw adjacency (DESIGN.md §14) ----
    // Three claims, one experiment. (1) Layout: zigzag+class-coded gaps
    // against the raw 4-bytes-per-edge column array — the bytes-per-edge
    // row carries both totals and the reduction factor in extras.
    // (2) Decode bandwidth: streaming decoders vs the raw u32 scan across
    // frontier densities; the work column counts edges visited and the
    // extras carry GB/s of adjacency bytes actually touched (the coded
    // stream moves fewer bytes per edge, so equal-MTEPS decode already
    // means less memory traffic). (3) End-to-end: adaptive BFS and pull
    // PageRank over compressed adjacency vs their raw twins, asserted
    // bit-identical before timing — the differential suite pins the same
    // equality at small scale, the harness re-checks it at benchmark
    // scale so the committed MTEPS compare like for like.
    {
        let build_ctx = Context::new(4);
        for w in [Workload::Rmat, Workload::Grid] {
            let g = w.symmetric(scale);
            let n = g.get_num_vertices();
            let m = g.get_num_edges();
            let cg = CompressedGraph::from_graph(build_ctx.pool(), &g);

            let coded = cg.out_ccsr().topology_bytes();
            let raw = 4 * m;
            rows.push(JsonRow {
                experiment: "compression",
                workload: w.name(),
                algo: "layout",
                variant: "bytes-per-edge".to_string(),
                threads: 1,
                ms: 0.0,
                iterations: 1,
                work: coded,
                mteps: 0.0,
                outcome: "ok",
                extras: format!(
                    ",\"coded_bytes\":{},\"raw_bytes\":{},\"bytes_per_edge\":{:.3},\"reduction\":{:.2}",
                    coded,
                    raw,
                    coded as f64 / m.max(1) as f64,
                    raw as f64 / coded.max(1) as f64
                ),
            });

            let byte_offsets = cg.out_ccsr().sections().1;
            let sink = std::sync::atomic::AtomicUsize::new(0);
            for density_pct in [1usize, 10, 50, 100] {
                let frontier: Vec<VertexId> = (0..n)
                    .filter(|&v| (v.wrapping_mul(2654435761)) % 100 < density_pct)
                    .map(|v| v as VertexId)
                    .collect();
                let edges: usize = frontier
                    .iter()
                    .map(|&v| DecodeOutNeighbors::out_degree(&cg, v))
                    .sum();
                let coded_bytes: usize = frontier
                    .iter()
                    .map(|&v| (byte_offsets[v as usize + 1] - byte_offsets[v as usize]) as usize)
                    .sum();
                let decode_pass = || {
                    let mut acc = 0usize;
                    for &v in &frontier {
                        for u in cg.out_decoder(v) {
                            acc = acc.wrapping_add(u as usize);
                        }
                    }
                    acc
                };
                let raw_pass = || {
                    let mut acc = 0usize;
                    for &v in &frontier {
                        for &u in g.out_neighbors(v) {
                            acc = acc.wrapping_add(u as usize);
                        }
                    }
                    acc
                };
                assert_eq!(decode_pass(), raw_pass(), "decoder diverged from raw scan");
                let scans: [(&str, usize, Box<dyn Fn() -> usize>); 2] = [
                    ("decode", coded_bytes, Box::new(decode_pass)),
                    ("raw-scan", 4 * edges, Box::new(raw_pass)),
                ];
                for (variant, bytes, f) in scans {
                    let ms = median_ms(3, || {
                        sink.fetch_add(f(), std::sync::atomic::Ordering::Relaxed);
                    });
                    rows.push(JsonRow {
                        experiment: "compression",
                        workload: w.name(),
                        algo: "scan",
                        variant: format!("{variant}/{density_pct}pct"),
                        threads: 1,
                        ms,
                        iterations: 1,
                        work: edges,
                        mteps: mteps(edges, ms),
                        outcome: "ok",
                        extras: format!(
                            ",\"density_pct\":{},\"bytes\":{},\"gb_per_s\":{:.3}",
                            density_pct,
                            bytes,
                            if ms > 0.0 {
                                bytes as f64 / ms / 1e6
                            } else {
                                0.0
                            }
                        ),
                    });
                }
            }

            let ctx = Context::new(4);
            let raw_bfs = bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
            let cmp_bfs = bfs::bfs_adaptive_compressed(
                execution::par,
                &ctx,
                &cg,
                0,
                DirectionPolicy::default(),
            );
            assert_eq!(raw_bfs.level, cmp_bfs.level, "compressed BFS diverged");
            let bfs_runs: [(&str, &bfs::BfsResult, Box<dyn Fn()>); 2] = [
                (
                    "raw-adaptive",
                    &raw_bfs,
                    Box::new(|| {
                        bfs::bfs_adaptive(execution::par, &ctx, &g, 0);
                    }),
                ),
                (
                    "compressed-adaptive",
                    &cmp_bfs,
                    Box::new(|| {
                        bfs::bfs_adaptive_compressed(
                            execution::par,
                            &ctx,
                            &cg,
                            0,
                            DirectionPolicy::default(),
                        );
                    }),
                ),
            ];
            for (variant, r, f) in bfs_runs {
                let ms = median_ms(3, &*f);
                rows.push(JsonRow {
                    experiment: "compression",
                    workload: w.name(),
                    algo: "bfs",
                    variant: variant.to_string(),
                    threads: 4,
                    ms,
                    iterations: r.stats.iterations,
                    work: r.edges_inspected,
                    mteps: mteps(r.edges_inspected, ms),
                    outcome: "ok",
                    extras: String::new(),
                });
            }

            let cfg = pagerank::PrConfig {
                damping: 0.85,
                tolerance: 0.0, // fixed iteration count: identical work per variant
                max_iterations: 20,
            };
            let raw_pr = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
            let cmp_pr = pagerank::pagerank_pull_compressed(execution::par, &ctx, &cg, cfg);
            assert_eq!(raw_pr.rank, cmp_pr.rank, "compressed PageRank diverged");
            let pr_runs: [(&str, &pagerank::PageRankResult, Box<dyn Fn()>); 2] = [
                (
                    "raw-pull",
                    &raw_pr,
                    Box::new(|| {
                        pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
                    }),
                ),
                (
                    "compressed-pull",
                    &cmp_pr,
                    Box::new(|| {
                        pagerank::pagerank_pull_compressed(execution::par, &ctx, &cg, cfg);
                    }),
                ),
            ];
            for (variant, r, f) in pr_runs {
                let ms = median_ms(3, &*f);
                let work = m * r.stats.iterations;
                rows.push(JsonRow {
                    experiment: "compression",
                    workload: w.name(),
                    algo: "pagerank",
                    variant: variant.to_string(),
                    threads: 4,
                    ms,
                    iterations: r.stats.iterations,
                    work,
                    mteps: mteps(work, ms),
                    outcome: "ok",
                    extras: String::new(),
                });
            }
        }
    }

    // --- locality: naive vs blocked vs blocked+placement pull PageRank ---
    // The memory-locality ablation (DESIGN.md §12), measured at iteration
    // granularity: the blocked layout is built once per run (as the
    // algorithms use it), so the timed region is the steady-state gather
    // iteration — the thing PageRank repeats until convergence. Arithmetic
    // is identical across variants (the differential suite pins the
    // results to ≤1e-12); the mteps column is pure iteration throughput.
    // The naive pull random-reads the rank vector per edge, the blocked
    // variant streams a destination-binned layout through cache-resident
    // windows, and the placement arm additionally installs a
    // degree-balanced worker→vertex-range map on a dedicated pool so
    // dynamic loops drain their local segment before stealing.
    {
        let g = Workload::Rmat.symmetric(scale);
        let n = g.get_num_vertices();
        let m = g.get_num_edges();
        let bins = BlockedConfig::default();
        let damping = 0.85;
        let base = (1.0 - damping) / n as f64;
        let iters = 10usize;
        let seq_ctx = Context::sequential();
        let mut inv = vec![0.0f64; n];
        fill_indexed_into(execution::seq, &seq_ctx, &mut inv, |v| {
            let d = g.out_degree(v as VertexId);
            if d == 0 {
                0.0
            } else {
                (d as f64).recip()
            }
        });
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        for &t in &[1usize, 4] {
            let plain = Context::new(t);
            let placed = {
                let pool = Arc::new(ThreadPool::new(t));
                pool.set_placement(Some(Arc::new(degree_balanced_placement(&g, t))));
                Context::with_pool(pool)
            };
            let mut push_row = |variant: &str, ms: f64| {
                let work = m * iters;
                rows.push(JsonRow {
                    experiment: "locality",
                    workload: "rmat",
                    algo: "pagerank",
                    variant: variant.to_string(),
                    threads: t,
                    ms,
                    iterations: iters,
                    work,
                    mteps: mteps(work, ms),
                    outcome: "ok",
                    extras: String::new(),
                });
            };

            let ms = median_ms(3, || {
                for _ in 0..iters {
                    let (r_now, inv_d) = (&rank, &inv);
                    fill_indexed_into(execution::par, &plain, &mut next, |v| {
                        let s: f64 = g
                            .in_neighbors(v as VertexId)
                            .iter()
                            .map(|&u| r_now[u as usize] * inv_d[u as usize])
                            .sum();
                        base + damping * s
                    });
                    std::mem::swap(&mut rank, &mut next);
                }
            });
            push_row("naive", ms);

            for (variant, ctx) in [("blocked", &plain), ("blocked+placement", &placed)] {
                let mut gather = BlockedGather::over_out_edges(execution::par, ctx, &g, bins);
                let ms = median_ms(3, || {
                    for _ in 0..iters {
                        let (r_now, inv_d) = (&rank, &inv);
                        gather.gather(
                            execution::par,
                            ctx,
                            |u| r_now[u] * inv_d[u],
                            |_, acc| base + damping * acc,
                            &mut next,
                        );
                        std::mem::swap(&mut rank, &mut next);
                    }
                });
                gather.finish(ctx);
                push_row(variant, ms);
            }
        }
    }

    // --- budget: fallible entry points under the CLI RunBudget -----------
    // One row per flagship algorithm, run through try_* with the budget
    // from --deadline-ms/--max-iters attached to the context. A stopped
    // run is a result, not a failure: its row carries the ExecError kind
    // as the outcome, the iterations completed before the stop, and the
    // wall time of the aborted attempt (work is unknown mid-flight ⇒ 0).
    if let Some(b) = budget {
        let g = Workload::Rmat.symmetric(scale);
        let wg = Workload::Rmat.weighted(scale);
        let m = g.get_num_edges();
        let bctx = Context::new(4).with_budget(b);
        let pr_cfg = pagerank::PrConfig::default();
        let runs: Vec<(
            &str,
            &str,
            Box<dyn Fn() -> Result<(usize, usize), ExecError> + '_>,
        )> = vec![
            (
                "bfs",
                "push",
                Box::new(|| {
                    bfs::try_bfs(execution::par, &bctx, &g, 0)
                        .map(|r| (r.stats.iterations, r.edges_inspected))
                }),
            ),
            (
                "sssp",
                "push",
                Box::new(|| {
                    sssp::try_sssp(execution::par, &bctx, &wg, 0)
                        .map(|r| (r.stats.iterations, r.relaxations))
                }),
            ),
            (
                "cc",
                "label-prop",
                Box::new(|| {
                    cc::try_cc_label_propagation(execution::par, &bctx, &g)
                        .map(|r| (r.stats.iterations, r.updates))
                }),
            ),
            (
                "pagerank",
                "pull",
                Box::new(|| {
                    pagerank::try_pagerank_pull(execution::par, &bctx, &g, pr_cfg)
                        .map(|r| (r.stats.iterations, m * r.stats.iterations))
                }),
            ),
            (
                "hits",
                "pull",
                Box::new(|| {
                    hits::try_hits(execution::par, &bctx, &g, hits::HitsConfig::default())
                        .map(|r| (r.stats.iterations, m * r.stats.iterations))
                }),
            ),
        ];
        for (algo, variant, f) in runs {
            let (ms, res) = time_ms(&*f);
            rows.push(match res {
                Ok((iterations, work)) => JsonRow {
                    experiment: "budget",
                    workload: "rmat",
                    algo,
                    variant: variant.to_string(),
                    threads: 4,
                    ms,
                    iterations,
                    work,
                    mteps: mteps(work, ms),
                    outcome: "ok",
                    extras: String::new(),
                },
                Err(e) => JsonRow {
                    experiment: "budget",
                    workload: "rmat",
                    algo,
                    variant: variant.to_string(),
                    threads: 4,
                    ms,
                    iterations: match &e {
                        ExecError::Budget { progress, .. } => progress.iterations,
                        ExecError::Diverged { iteration, .. } => *iteration,
                        ExecError::WorkerPanic { .. } | ExecError::InvalidInput { .. } => 0,
                    },
                    work: 0,
                    mteps: 0.0,
                    outcome: e.kind(),
                    extras: String::new(),
                },
            });
        }
    }

    // --- multi-source: 64-wide batched BFS vs 64 dedicated traversals ----
    // The serving engine's throughput claim, measured head-on: answering
    // 64 reachability probes with one mask-word batch traversal versus 64
    // independent single-source runs on the same context. The work column
    // is edges inspected; the extras carry the aggregate source
    // throughput, where the batch's amortization (one inspection relaxes
    // up to 64 lanes) should yield ≥4× on power-law graphs.
    {
        let g = Workload::Rmat.symmetric(scale);
        let n = g.get_num_vertices();
        let ctx = Context::new(4);
        let sources: Vec<VertexId> = (0..64)
            .map(|i| ((i * 2_654_435_761usize) % n) as VertexId)
            .collect();
        // Pin correctness before timing anything.
        let batch = multi_source::bfs_multi_source(execution::par, &ctx, &g, &sources);
        let mut seq_edges = 0usize;
        for (s, &src) in sources.iter().enumerate() {
            let single = bfs::bfs(execution::par, &ctx, &g, src);
            assert_eq!(
                batch.source_levels(s),
                single.level,
                "multi-source lane {s} diverged"
            );
            seq_edges += single.edges_inspected;
        }
        let (batch_edges, batch_iters) = (batch.edges_inspected, batch.iterations);
        batch.recycle(&ctx);
        let batched_ms = median_ms(3, || {
            multi_source::bfs_multi_source(execution::par, &ctx, &g, &sources).recycle(&ctx);
        });
        let sequential_ms = median_ms(3, || {
            for &src in &sources {
                bfs::bfs(execution::par, &ctx, &g, src);
            }
        });
        for (variant, ms, iterations, work) in [
            ("batched64", batched_ms, batch_iters, batch_edges),
            ("sequential64", sequential_ms, 0, seq_edges),
        ] {
            rows.push(JsonRow {
                experiment: "multi-source",
                workload: "rmat",
                algo: "bfs",
                variant: variant.to_string(),
                threads: 4,
                ms,
                iterations,
                work,
                mteps: mteps(work, ms),
                outcome: "ok",
                extras: format!(",\"sources\":64,\"sources_per_sec\":{:.1}", 64_000.0 / ms),
            });
        }
    }

    // --- query-mix: closed-loop serving sweep over client counts ---------
    // The serving engine under a mixed light/heavy workload: C closed-loop
    // clients, each cycling think → request → measure, with deterministic
    // Poisson-ish think times (seeded LCG driving an exponential, mean
    // 1 ms — arrival *pattern* is reproducible; wall-times are host
    // facts). Every tenth request per client is a heavy PageRank; the rest
    // are light single-source probes. Rows report aggregate throughput
    // plus light-class latency percentiles, and the saturation point —
    // the first client count whose throughput gain over the previous
    // level drops below 10% (the sweep extends past the engine's permit
    // count, so the knee always exists).
    {
        use essentials_serve::{Engine, EngineConfig};
        let graph = Arc::new(Workload::Rmat.symmetric(scale));
        let n = graph.get_num_vertices();
        let engine = Engine::new(
            graph,
            EngineConfig {
                threads: 4,
                permits: 4,
                heavy_permits: 1,
            },
        );
        let pr_cfg = pagerank::PrConfig {
            damping: 0.85,
            tolerance: 0.0,
            max_iterations: 5,
        };
        const REQS_PER_CLIENT: usize = 12;
        let mut sweep: Vec<(usize, f64, Vec<f64>, usize)> = Vec::new();
        for &clients in &[1usize, 2, 4, 8, 16] {
            let latencies: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
            let completed = std::sync::atomic::AtomicUsize::new(0);
            let t0 = std::time::Instant::now();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let engine = &engine;
                    let latencies = &latencies;
                    let completed = &completed;
                    scope.spawn(move || {
                        // Deterministic per-client think-time stream.
                        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15 ^ (c as u64);
                        for req in 0..REQS_PER_CLIENT {
                            lcg = lcg
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let u = (lcg >> 11) as f64 / (1u64 << 53) as f64;
                            let think_us = (-1000.0 * (1.0 - u).ln()) as u64;
                            std::thread::sleep(std::time::Duration::from_micros(think_us));
                            let source = ((c * 131 + req * 977) % n) as VertexId;
                            let t = std::time::Instant::now();
                            if req % 10 == 9 {
                                engine
                                    .pagerank(pr_cfg, RunBudget::unlimited())
                                    .expect("pagerank served");
                            } else {
                                engine
                                    .bfs(source, RunBudget::unlimited())
                                    .expect("bfs served");
                                let ms = t.elapsed().as_secs_f64() * 1e3;
                                latencies.lock().expect("latency log").push(ms);
                            }
                            completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                }
            });
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut lat = latencies.into_inner().expect("latency log");
            lat.sort_by(|a, b| a.total_cmp(b));
            let total = completed.load(std::sync::atomic::Ordering::Relaxed);
            sweep.push((clients, wall_ms, lat, total));
        }
        let rps: Vec<f64> = sweep
            .iter()
            .map(|(_, wall_ms, _, total)| *total as f64 / (wall_ms / 1e3))
            .collect();
        // Saturation knee: <10% throughput gain over the previous level.
        let knee = (1..rps.len())
            .find(|&i| rps[i] < rps[i - 1] * 1.10)
            .unwrap_or(rps.len() - 1);
        let pct = |lat: &[f64], q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            lat[(((lat.len() - 1) as f64) * q).round() as usize]
        };
        for (i, (clients, wall_ms, lat, total)) in sweep.iter().enumerate() {
            rows.push(JsonRow {
                experiment: "query-mix",
                workload: "rmat",
                algo: "serve",
                variant: format!("mix/c{clients}"),
                threads: 4,
                ms: *wall_ms,
                iterations: *total,
                work: *total,
                mteps: mteps(*total, *wall_ms),
                outcome: "ok",
                extras: format!(
                    ",\"clients\":{},\"rps\":{:.1},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\"saturated\":{}",
                    clients,
                    rps[i],
                    pct(lat, 0.50),
                    pct(lat, 0.95),
                    pct(lat, 0.99),
                    i >= knee
                ),
            });
        }
    }

    // --- chaos: seeded fault-injection storm through the serving engine --
    // The resilience contract of DESIGN.md §16 as a benchmark row: a
    // seeded [`RequestFaultPlan`] (mid-run worker panics at
    // `(iteration, chunk)` coordinates, service delays, exhausted budgets,
    // poisoned recycle locks) is driven through 1-permit and 8-permit
    // engines by closed-loop clients running a mixed light/heavy workload.
    // Every outcome must be a bit-identical result or a documented typed
    // error; slot accounting must never leak; after the storm a recovery
    // wave rebuilds the quarantined scratch and clean results must match
    // the serial oracles. Any violated check prints the plan's exact
    // `(request, iteration, chunk)` fault keys so the schedule replays
    // from `--chaos-seed`.
    {
        use essentials_parallel::{RequestFault, RequestFaultPlan};
        use essentials_serve::{Brownout, Engine, EngineConfig, Outcome};
        use std::sync::Barrier;
        use std::time::Duration;

        #[derive(Debug, Default, Clone, Copy)]
        struct ChaosTally {
            requests: usize,
            ok: usize,
            degraded: usize,
            panics: usize,
            sheds: usize,
            other_typed: usize,
            slot_leaks: usize,
        }

        /// Error kinds a chaos request may legitimately surface.
        const CHAOS_KINDS: &[&str] = &[
            "worker-panic",
            "cancelled",
            "deadline-expired",
            "iteration-cap",
            "diverged",
            "invalid-input",
            "queue-deadline",
            "shed",
        ];

        /// Prints the failed check plus every planned fault key
        /// (`(request, iteration, chunk)`), then aborts the experiment —
        /// rerunning with the printed `--chaos-seed` replays the schedule.
        fn chaos_bail(msg: &str, seed: u64, plan: &RequestFaultPlan) -> ! {
            eprintln!("chaos assertion failed: {msg}");
            eprintln!("replay with --chaos-seed {seed}; planned fault keys:");
            for &(id, ref f) in plan.faults() {
                let (i, c) = f.coordinate();
                eprintln!("  (request {id}, iteration {i}, chunk {c}) [{}]", f.name());
            }
            panic!("chaos experiment failed (seed {seed}): {msg}");
        }

        let seed = chaos_seed;
        // Time-boxed even at large --json scales: this experiment measures
        // resilience counters, not throughput scaling.
        let graph = Arc::new(Workload::Rmat.symmetric(scale.min(11)));
        let n = graph.get_num_vertices();
        const CLIENTS: usize = 4;
        const ROUNDS: usize = 30;
        let storm_requests = (CLIENTS * ROUNDS) as u64;

        // The engine captures injected panics and quarantines the slot; the
        // default hook would still spray their backtraces. Filter only the
        // expected chaos payloads — real panics keep the default report.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.contains("injected fault at") || msg.contains("chaos-injected") {
                return;
            }
            default_hook(info);
        }));

        for &(permits, heavy_permits) in &[(1usize, 1usize), (8usize, 2usize)] {
            let base = RequestFaultPlan::seeded(seed, storm_requests, 45, 30, 20, 10, 3, 2, 300);
            // Recovery-wave requests (ids past the storm) get a service
            // delay so `permits` concurrent requests overlap and claim
            // every slot — quarantined scratch only rebuilds on claim.
            let mut plan = base;
            for id in storm_requests..storm_requests + (permits * 20) as u64 {
                plan = plan.fault_at(id, RequestFault::Delay { micros: 20_000 });
            }
            let plan = Arc::new(plan);
            let faults = plan.len();

            // Serial oracles, computed before any chaos.
            let sources: Vec<VertexId> = (0..CLIENTS as VertexId)
                .map(|i| (i * 97) % n as VertexId)
                .collect();
            let oracle: Vec<Vec<u32>> = sources
                .iter()
                .map(|&s| bfs::bfs_sequential(&graph, s).level)
                .collect();
            let pr_cfg = pagerank::PrConfig {
                damping: 0.85,
                tolerance: 1e-12,
                max_iterations: 20,
            };
            let clean = Engine::new(
                graph.clone(),
                EngineConfig {
                    threads: 2,
                    permits,
                    heavy_permits,
                },
            );
            let pr_ref = clean
                .pagerank(pr_cfg, RunBudget::unlimited())
                .expect("reference pagerank")
                .rank;

            let engine = Engine::new(
                graph.clone(),
                EngineConfig {
                    threads: 2,
                    permits,
                    heavy_permits,
                },
            )
            .with_chaos(plan.clone());

            let start = Barrier::new(CLIENTS);
            let t0 = std::time::Instant::now();
            let results: Vec<(ChaosTally, Vec<f64>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let engine = &engine;
                        let sources = &sources;
                        let oracle = &oracle;
                        let pr_ref = &pr_ref;
                        let plan = &plan;
                        let start = &start;
                        scope.spawn(move || {
                            start.wait();
                            let mut t = ChaosTally::default();
                            let mut light_ms: Vec<f64> = Vec::new();
                            let mut lcg: u64 = seed ^ (c as u64).wrapping_mul(0x9E37_79B9);
                            for round in 0..ROUNDS {
                                lcg = lcg
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1442695040888963407);
                                std::thread::sleep(Duration::from_micros((lcg >> 56) * 2));
                                t.requests += 1;
                                let req_t0 = std::time::Instant::now();
                                let err = match (c + round) % 4 {
                                    // Light probe (bounded deadline feeds
                                    // the shed gate): bit-identical on Ok.
                                    0 => match engine.bfs(
                                        sources[c],
                                        RunBudget::unlimited()
                                            .with_timeout(Duration::from_millis(80)),
                                    ) {
                                        Ok(r) => {
                                            if r.level != oracle[c] {
                                                chaos_bail(
                                                    &format!("client {c} round {round}: wrong bfs under chaos"),
                                                    seed,
                                                    plan,
                                                );
                                            }
                                            light_ms
                                                .push(req_t0.elapsed().as_secs_f64() * 1e3);
                                            None
                                        }
                                        Err(e) => Some(e),
                                    },
                                    // Batched probe: every lane identical.
                                    1 => match engine.bfs_batch(sources, RunBudget::unlimited())
                                    {
                                        Ok(batch) => {
                                            for (s, want) in oracle.iter().enumerate() {
                                                if &batch.source_levels(s) != want {
                                                    chaos_bail(
                                                        &format!("client {c} round {round} lane {s}: wrong batch under chaos"),
                                                        seed,
                                                        plan,
                                                    );
                                                }
                                            }
                                            engine.recycle_batch(batch);
                                            None
                                        }
                                        Err(e) => Some(e),
                                    },
                                    // Degradable heavy: browns out under
                                    // pressure instead of shedding.
                                    2 => match engine.pagerank_degradable(
                                        pr_cfg,
                                        RunBudget::unlimited()
                                            .with_timeout(Duration::from_millis(250)),
                                        Brownout::new(3),
                                    ) {
                                        Ok(resp) => {
                                            let sum: f64 = resp.value.rank.iter().sum();
                                            if (sum - 1.0).abs() > 1e-6 {
                                                chaos_bail(
                                                    &format!("client {c} round {round}: ranks sum to {sum}"),
                                                    seed,
                                                    plan,
                                                );
                                            }
                                            if let Outcome::Degraded { .. } = resp.outcome {
                                                t.degraded += 1;
                                            }
                                            None
                                        }
                                        Err(e) => Some(e),
                                    },
                                    // Plain heavy: within summation noise.
                                    _ => match engine.pagerank(pr_cfg, RunBudget::unlimited())
                                    {
                                        Ok(pr) => {
                                            for (a, b) in pr.rank.iter().zip(pr_ref) {
                                                if (a - b).abs() > 1e-9 {
                                                    chaos_bail(
                                                        &format!("client {c} round {round}: rank drift under chaos"),
                                                        seed,
                                                        plan,
                                                    );
                                                }
                                            }
                                            None
                                        }
                                        Err(e) => Some(e),
                                    },
                                };
                                match err {
                                    Some(e) => {
                                        let kind = e.kind();
                                        if !CHAOS_KINDS.contains(&kind) {
                                            chaos_bail(
                                                &format!("client {c} round {round}: unexpected error kind {kind:?}"),
                                                seed,
                                                plan,
                                            );
                                        }
                                        match kind {
                                            "worker-panic" => t.panics += 1,
                                            "shed" => t.sheds += 1,
                                            _ => t.other_typed += 1,
                                        }
                                    }
                                    None => t.ok += 1,
                                }
                                // Zero-leak invariant, sampled while faults
                                // fly: free + leased + quarantined == permits.
                                let h = engine.health();
                                if h.free_slots + h.leased_slots + h.quarantined_slots
                                    != h.permits
                                {
                                    t.slot_leaks += 1;
                                }
                            }
                            (t, light_ms)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chaos client panicked"))
                    .collect()
            });
            let storm_ms = t0.elapsed().as_secs_f64() * 1e3;

            let mut total = ChaosTally::default();
            let mut light_ms: Vec<f64> = Vec::new();
            for (t, l) in results {
                total.requests += t.requests;
                total.ok += t.ok;
                total.degraded += t.degraded;
                total.panics += t.panics;
                total.sheds += t.sheds;
                total.other_typed += t.other_typed;
                total.slot_leaks += t.slot_leaks;
                light_ms.extend(l);
            }
            light_ms.sort_by(|a, b| a.total_cmp(b));
            let h = engine.health();
            if total.slot_leaks > 0 {
                chaos_bail(
                    &format!("{} slot-leak samples mid-storm", total.slot_leaks),
                    seed,
                    &plan,
                );
            }
            if h.leased_slots != 0 || h.free_slots + h.quarantined_slots != h.permits {
                chaos_bail("slot accounting broken after the storm", seed, &plan);
            }
            if h.quarantined_total != total.panics as u64
                || h.quarantined_total - h.rebuilt_total != h.quarantined_slots as u64
            {
                chaos_bail("quarantine counters do not reconcile", seed, &plan);
            }
            if total.sheds > total.requests / 2 {
                chaos_bail(
                    &format!("unbounded shed rate: {} of {}", total.sheds, total.requests),
                    seed,
                    &plan,
                );
            }

            // Recovery: delay-pinned waves claim (and rebuild) every slot.
            let mut waves = 0;
            while engine.health().quarantined_slots > 0 && waves < 20 {
                let wave_start = Barrier::new(permits);
                std::thread::scope(|scope| {
                    for w in 0..permits {
                        let engine = &engine;
                        let graph = &graph;
                        let plan = &plan;
                        let wave_start = &wave_start;
                        scope.spawn(move || {
                            wave_start.wait();
                            let s = (w as VertexId * 131) % n as VertexId;
                            let got = engine
                                .bfs(s, RunBudget::unlimited())
                                .expect("recovery request must succeed");
                            if got.level != bfs::bfs_sequential(graph, s).level {
                                chaos_bail("recovery bfs not bit-identical", seed, plan);
                            }
                        });
                    }
                });
                waves += 1;
            }
            let h = engine.health();
            if h.quarantined_slots != 0 || h.free_slots != h.permits {
                chaos_bail("quarantined slots did not rebuild", seed, &plan);
            }
            // Post-chaos clean requests: bit-identical vs the oracles.
            let batch = engine
                .bfs_batch(&sources, RunBudget::unlimited())
                .expect("post-chaos batch");
            for (s, want) in oracle.iter().enumerate() {
                if &batch.source_levels(s) != want {
                    chaos_bail("post-chaos batch lane drifted", seed, &plan);
                }
            }
            engine.recycle_batch(batch);
            let pr = engine
                .pagerank(pr_cfg, RunBudget::unlimited())
                .expect("post-chaos pagerank");
            if pr
                .rank
                .iter()
                .zip(&pr_ref)
                .any(|(a, b)| (a - b).abs() > 1e-9)
            {
                chaos_bail("post-chaos rank drifted", seed, &plan);
            }

            let p99 = if light_ms.is_empty() {
                0.0
            } else {
                light_ms[((light_ms.len() - 1) as f64 * 0.99).round() as usize]
            };
            rows.push(JsonRow {
                experiment: "chaos",
                workload: "rmat",
                algo: "serve",
                variant: format!("permits-{permits}"),
                threads: 2,
                ms: storm_ms,
                iterations: total.requests,
                work: total.ok,
                mteps: 0.0,
                outcome: "ok",
                extras: format!(
                    ",\"seed\":{seed},\"faults\":{faults},\"ok\":{},\"sheds\":{},\"degraded\":{},\"panics\":{},\"other_typed\":{},\"quarantined_total\":{},\"rebuilt_total\":{},\"slot_leaks\":{},\"recovered_identical\":true,\"p99_light_ms\":{p99:.3}",
                    total.ok,
                    total.sheds,
                    total.degraded,
                    total.panics,
                    total.other_typed,
                    h.quarantined_total,
                    h.rebuilt_total,
                    total.slot_leaks,
                ),
            });
        }
        // Restore the default panic reporting for the rest of the session.
        let _ = std::panic::take_hook();
    }

    // --- serialize -------------------------------------------------------
    let mut out = String::with_capacity(rows.len() * 160 + 128);
    out.push_str(&format!(
        "{{\n  \"schema\": \"essentials-bench/v6\",\n  \"scale\": {scale},\n  \"rows\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&row.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("{} benchmark rows written to {path}", rows.len());
}

/// E1 — Timing models: BSP vs asynchronous (Table I row 1).
fn e1_timing(scale: u32) {
    println!("== E1: timing — bulk-synchronous vs asynchronous (SSSP & BFS) ==");
    table_header(&[
        ("workload", 11),
        ("algo", 6),
        ("mode", 12),
        ("threads", 7),
        ("ms", 9),
        ("supersteps", 10),
        ("work", 10),
    ]);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(scale);
        for &t in &[1usize, 2, 4] {
            let ctx = Context::new(t);
            // BSP work columns come from the observability layer: one
            // observed run with a CountersSink attached reports the edges
            // the advance operator actually inspected (for SSSP that count
            // *is* the relaxations attempted — see tests/obs_counters.rs).
            // The timed runs use the bare context, so the wall-time column
            // never pays for the detail counting. The async variants bypass
            // the operator layer entirely and keep their algo-level
            // counters.
            let observed_edges = |run: &dyn Fn(&Context)| {
                let sink = Arc::new(CountersSink::new(ctx.pool().num_threads()));
                let octx = ctx.clone().with_obs(sink.clone() as Arc<dyn ObsSink>);
                run(&octx);
                sink.snapshot().edges_inspected as usize
            };
            let runs: Vec<(&str, &str, Box<dyn Fn() -> (usize, usize)>, Box<dyn Fn()>)> = vec![
                (
                    "sssp",
                    "bsp/par",
                    Box::new(|| {
                        let r = sssp::sssp(execution::par, &ctx, &g, 0);
                        let work = observed_edges(&|octx: &Context| {
                            sssp::sssp(execution::par, octx, &g, 0);
                        });
                        (r.stats.iterations, work)
                    }),
                    Box::new(|| {
                        sssp::sssp(execution::par, &ctx, &g, 0);
                    }),
                ),
                (
                    "sssp",
                    "async",
                    Box::new(|| {
                        let r = sssp::sssp_async(&ctx, &g, 0);
                        (r.stats.iterations, r.relaxations)
                    }),
                    Box::new(|| {
                        sssp::sssp_async(&ctx, &g, 0);
                    }),
                ),
                (
                    "bfs",
                    "bsp/par",
                    Box::new(|| {
                        let r = bfs::bfs(execution::par, &ctx, &g, 0);
                        let work = observed_edges(&|octx: &Context| {
                            bfs::bfs(execution::par, octx, &g, 0);
                        });
                        (r.stats.iterations, work)
                    }),
                    Box::new(|| {
                        bfs::bfs(execution::par, &ctx, &g, 0);
                    }),
                ),
                (
                    "bfs",
                    "async",
                    Box::new(|| {
                        let r = bfs::bfs_async(&ctx, &g, 0);
                        (r.stats.iterations, r.edges_inspected)
                    }),
                    Box::new(|| {
                        bfs::bfs_async(&ctx, &g, 0);
                    }),
                ),
            ];
            for (algo, mode, measure, timed) in runs {
                let (iters, work) = measure();
                let ms = median_ms(3, &*timed);
                println!(
                    "{:>11}  {algo:>6}  {mode:>12}  {t:>7}  {ms:>9.2}  {iters:>10}  {work:>10}",
                    w.name()
                );
            }
        }
    }
    println!();
}

/// E2 — Communication: frontier representations behind one interface
/// (Table I row 2).
fn e2_communication(scale: u32) {
    println!("== E2: communication — sparse vs dense(bitmap) vs queue frontiers (BFS) ==");
    table_header(&[
        ("workload", 11),
        ("frontier", 14),
        ("ms", 9),
        ("iters", 6),
        ("edges", 10),
    ]);
    let ctx = Context::new(2);
    for w in Workload::ALL {
        let g = w.directed(scale);
        let runs: Vec<(&str, Box<dyn Fn() -> bfs::BfsResult>)> = vec![
            (
                "sparse(vec)",
                Box::new(|| bfs::bfs(execution::par, &ctx, &g, 0)),
            ),
            (
                "dense(bitmap)",
                Box::new(|| bfs::bfs_dense(execution::par, &ctx, &g, 0)),
            ),
            ("queue(msgs)", Box::new(|| bfs::bfs_queue(&ctx, &g, 0))),
        ];
        let reference = bfs::bfs_sequential(&g, 0).level;
        for (name, f) in runs {
            let r = f();
            assert_eq!(r.level, reference, "{name} diverged");
            let ms = median_ms(3, || {
                f();
            });
            println!(
                "{:>11}  {name:>14}  {ms:>9.2}  {:>6}  {:>10}",
                w.name(),
                r.stats.iterations,
                r.edges_inspected
            );
        }
    }
    println!();
}

/// E3 — Execution model: push vs pull vs direction-optimizing
/// (Table I row 3).
fn e3_direction(scale: u32) {
    println!("== E3: push vs pull vs direction-optimizing ==");
    table_header(&[
        ("workload", 11),
        ("variant", 9),
        ("ms", 9),
        ("edges-inspected", 15),
        ("pull-iters", 10),
    ]);
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.symmetric(scale);
        let reference = bfs::bfs_sequential(&g, 0).level;
        let runs: Vec<(&str, Box<dyn Fn() -> bfs::BfsResult>)> = vec![
            ("push", Box::new(|| bfs::bfs(execution::par, &ctx, &g, 0))),
            (
                "pull",
                Box::new(|| bfs::bfs_pull(execution::par, &ctx, &g, 0)),
            ),
            (
                "do",
                Box::new(|| {
                    bfs::bfs_direction_optimizing(
                        execution::par,
                        &ctx,
                        &g,
                        0,
                        bfs::DoParams::default(),
                    )
                }),
            ),
        ];
        for (name, f) in runs {
            let r = f();
            assert_eq!(r.level, reference, "{name} diverged");
            let pulls = r
                .directions
                .iter()
                .filter(|&&d| d == bfs::Direction::Pull)
                .count();
            let ms = median_ms(3, || {
                f();
            });
            println!(
                "{:>11}  {name:>9}  {ms:>9.2}  {:>15}  {pulls:>10}",
                w.name(),
                r.edges_inspected
            );
        }
    }
    // PageRank push vs pull: same fixpoint, different direction.
    println!("\n   pagerank (same fixpoint through either direction):");
    table_header(&[("workload", 11), ("variant", 9), ("ms", 9), ("iters", 6)]);
    let cfg = pagerank::PrConfig {
        tolerance: 1e-8,
        ..pagerank::PrConfig::default()
    };
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.symmetric(scale);
        let pull = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
        let push = pagerank::pagerank_push(execution::par, &ctx, &g, cfg);
        let diff = pull
            .rank
            .iter()
            .zip(&push.rank)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-6, "push/pull fixpoints diverged: {diff}");
        for (name, iters) in [
            ("pull", pull.stats.iterations),
            ("push", push.stats.iterations),
        ] {
            let ms = median_ms(2, || {
                if name == "pull" {
                    pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
                } else {
                    pagerank::pagerank_push(execution::par, &ctx, &g, cfg);
                }
            });
            println!("{:>11}  {name:>9}  {ms:>9.2}  {iters:>6}", w.name());
        }
    }
    println!();
}

/// E4 — Partitioning heuristics (Table I row 4).
fn e4_partitioning(scale: u32) {
    println!("== E4: partitioning — random vs contiguous vs multilevel ==");
    table_header(&[
        ("workload", 11),
        ("heuristic", 10),
        ("k", 3),
        ("edge-cut", 9),
        ("balance", 8),
        ("mp-bfs remote msgs", 18),
    ]);
    for w in Workload::ALL {
        let g = w.symmetric(scale);
        let n = g.get_num_vertices();
        for k in [2usize, 4, 8] {
            let parts = [
                ("random", random_partition(n, k, 1)),
                ("contig", contiguous_partition(n, k)),
                (
                    "multilevel",
                    multilevel_partition(&g, MultilevelConfig::new(k)),
                ),
            ];
            for (name, p) in parts {
                let cut = edge_cut(&g, &p);
                let bal = balance(&p);
                let pg = PartitionedGraph::build(&g, &p);
                let (_, stats) = mp_bfs(&pg, 0);
                println!(
                    "{:>11}  {name:>10}  {k:>3}  {cut:>9}  {bal:>8.3}  {:>18}",
                    w.name(),
                    stats.messages_remote
                );
            }
        }
    }
    println!();
}

/// E5 — Load balancing inside operators (§IV-C).
fn e5_load_balance(scale: u32) {
    println!("== E5: operator load balancing — vertex- vs edge-balanced advance ==");

    // Machine-independent half: divide the full-graph frontier among T
    // workers statically by vertices vs. by edges, and report the worst
    // worker's share of edge work relative to ideal (1.0 = perfect).
    println!("   static work division imbalance (max worker edges / ideal):");
    table_header(&[
        ("workload", 11),
        ("workers", 7),
        ("by-vertex", 10),
        ("by-edge", 10),
    ]);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.directed(scale);
        let degrees: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
        let total: usize = degrees.iter().sum();
        for t in [2usize, 4, 8] {
            let ideal = total as f64 / t as f64;
            // Vertex-contiguous chunks.
            let chunk = degrees.len().div_ceil(t);
            let worst_vertex = degrees
                .chunks(chunk)
                .map(|c| c.iter().sum::<usize>())
                .max()
                .unwrap_or(0) as f64;
            // Edge-balanced chunks: walk the prefix sum cutting at ideal
            // boundaries (a vertex's edges stay together, as the operator's
            // merge-path division does at vertex granularity).
            let mut worst_edge = 0usize;
            let mut acc = 0usize;
            let mut cut = 1usize;
            let mut current = 0usize;
            for &d in &degrees {
                current += d;
                acc += d;
                if acc as f64 >= ideal * cut as f64 {
                    worst_edge = worst_edge.max(current);
                    current = 0;
                    cut += 1;
                }
            }
            worst_edge = worst_edge.max(current);
            println!(
                "{:>11}  {t:>7}  {:>10.2}  {:>10.2}",
                w.name(),
                worst_vertex / ideal,
                worst_edge as f64 / ideal
            );
        }
    }

    println!(
        "
   wall time (indicative on this host):"
    );
    table_header(&[
        ("workload", 11),
        ("strategy", 15),
        ("threads", 7),
        ("ms", 9),
    ]);
    use essentials_parallel::atomics::Counter;
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.directed(scale);
        let frontier: Vec<VertexId> = g.vertices().collect();
        for &t in &[2usize, 4] {
            let ctx = Context::new(t);
            let vertex_ms = median_ms(3, || {
                let c = Counter::new();
                essentials_core::load_balance::for_each_vertex_balanced(&ctx, &frontier, |_, v| {
                    let mut acc = 0usize;
                    for &d in g.out_neighbors(v) {
                        acc = acc.wrapping_add(d as usize);
                    }
                    c.add(acc & 1);
                });
            });
            let edge_ms = median_ms(3, || {
                let c = Counter::new();
                essentials_core::load_balance::for_each_edge_balanced(
                    &ctx,
                    &g,
                    &frontier,
                    |_, _, e| {
                        c.add(g.edge_dest(e) as usize & 1);
                    },
                );
            });
            println!(
                "{:>11}  {:>15}  {t:>7}  {vertex_ms:>9.2}",
                w.name(),
                "vertex-balanced"
            );
            println!(
                "{:>11}  {:>15}  {t:>7}  {edge_ms:>9.2}",
                w.name(),
                "edge-balanced"
            );
        }
        // Mutex-guarded Listing-3 vs collector-based expansion.
        let ctx = Context::new(4);
        let f: SparseFrontier = g.vertices().collect();
        let mutex_ms = median_ms(2, || {
            neighbors_expand_mutex(execution::par, &ctx, &g, &f, |_, _, _, _| true);
        });
        let collector_ms = median_ms(2, || {
            neighbors_expand(execution::par, &ctx, &g, &f, |_, _, _, _| true);
        });
        println!(
            "{:>11}  {:>15}  {:>7}  {mutex_ms:>9.2}   (Listing-3 mutex output)",
            w.name(),
            "mutex-output",
            4
        );
        println!(
            "{:>11}  {:>15}  {:>7}  {collector_ms:>9.2}   (per-thread collectors)",
            w.name(),
            "collector",
            4
        );
    }
    println!();
}

/// E6 — Listing-4 SSSP against hand-written baselines.
fn e6_sssp(scale: u32) {
    println!("== E6: SSSP variants vs sequential baselines ==");
    table_header(&[
        ("workload", 11),
        ("variant", 16),
        ("ms", 9),
        ("relaxations", 11),
        ("supersteps", 10),
    ]);
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(scale);
        let oracle = sssp::dijkstra(&g, 0);
        let check = |name: &str, r: &sssp::SsspResult| {
            let ok = r
                .dist
                .iter()
                .zip(&oracle.dist)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
            assert!(ok, "{name} diverged from Dijkstra");
        };
        let runs: Vec<(&str, Box<dyn Fn() -> sssp::SsspResult>)> = vec![
            ("dijkstra", Box::new(|| sssp::dijkstra(&g, 0))),
            ("bellman-ford", Box::new(|| sssp::bellman_ford(&g, 0))),
            (
                "bsp (listing 4)",
                Box::new(|| sssp::sssp(execution::par, &ctx, &g, 0)),
            ),
            ("async", Box::new(|| sssp::sssp_async(&ctx, &g, 0))),
            (
                "delta=0.5",
                Box::new(|| sssp::delta_stepping(execution::par, &ctx, &g, 0, 0.5)),
            ),
            (
                "delta=2.0",
                Box::new(|| sssp::delta_stepping(execution::par, &ctx, &g, 0, 2.0)),
            ),
        ];
        for (name, f) in runs {
            let r = f();
            check(name, &r);
            let ms = median_ms(3, || {
                f();
            });
            println!(
                "{:>11}  {name:>16}  {ms:>9.2}  {:>11}  {:>10}",
                w.name(),
                r.relaxations,
                r.stats.iterations
            );
        }
    }
    println!();
}

/// E7 — The full algorithm suite: one abstraction, many algorithms (§V).
fn e7_suite(scale: u32) {
    println!("== E7: algorithm suite (parallel vs sequential baseline, verified) ==");
    table_header(&[
        ("algorithm", 10),
        ("workload", 11),
        ("par ms", 9),
        ("seq ms", 9),
        ("work metric", 24),
    ]);
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let sym = w.symmetric(scale);
        let wg = w.weighted(scale);

        // BFS
        let (p, r) = time_ms(|| bfs::bfs(execution::par, &ctx, &sym, 0));
        let (s, oracle) = time_ms(|| bfs::bfs_sequential(&sym, 0));
        assert_eq!(r.level, oracle.level);
        print_suite_row("bfs", w, p, s, &format!("{} edges", r.edges_inspected));

        // SSSP
        let (p, r) = time_ms(|| sssp::sssp(execution::par, &ctx, &wg, 0));
        let (s, d) = time_ms(|| sssp::dijkstra(&wg, 0));
        assert!(sssp::verify_sssp(&wg, 0, &r.dist, 1e-3));
        let _ = d;
        print_suite_row("sssp", w, p, s, &format!("{} relaxations", r.relaxations));

        // PageRank
        let cfg = pagerank::PrConfig::default();
        let (p, r) = time_ms(|| pagerank::pagerank_pull(execution::par, &ctx, &sym, cfg));
        let (s, _) = time_ms(|| pagerank::pagerank_sequential(&sym, cfg));
        assert!(pagerank::verify_pagerank(&sym, &r.rank, cfg.damping, 1e-6));
        print_suite_row(
            "pagerank",
            w,
            p,
            s,
            &format!("{} iterations", r.stats.iterations),
        );

        // Connected components
        let (p, r) = time_ms(|| cc::cc_label_propagation(execution::par, &ctx, &sym));
        let (s, oracle) = time_ms(|| cc::cc_union_find(&sym));
        assert_eq!(r.comp, oracle.comp);
        print_suite_row(
            "cc",
            w,
            p,
            s,
            &format!("{} components", cc::num_components(&r.comp)),
        );

        // Triangle counting
        let (p, r) = time_ms(|| tc::triangle_count(execution::par, &ctx, &sym, true));
        let (s, r2) = time_ms(|| tc::triangle_count(execution::seq, &ctx, &sym, false));
        assert_eq!(r.triangles, r2.triangles);
        print_suite_row("tc", w, p, s, &format!("{} triangles", r.triangles));

        // k-core
        let (p, r) = time_ms(|| kcore::kcore_peel(execution::par, &ctx, &sym));
        let (s, oracle) = time_ms(|| kcore::kcore_sequential(&sym));
        assert_eq!(r.core, oracle.core);
        let kmax = r.core.iter().max().copied().unwrap_or(0);
        print_suite_row("kcore", w, p, s, &format!("max core {kmax}"));

        // Coloring
        let (p, r) = time_ms(|| color::color_greedy(execution::par, &ctx, &sym));
        let (s, r2) = time_ms(|| color::color_sequential(&sym));
        assert!(color::verify_coloring(&sym, &r.color));
        print_suite_row(
            "color",
            w,
            p,
            s,
            &format!("{} colors (seq {})", r.num_colors, r2.num_colors),
        );

        // MST
        let (p, r) = time_ms(|| mst::boruvka(execution::par, &ctx, &wg));
        let (s, k) = time_ms(|| mst::kruskal(&wg));
        assert!((r.total_weight - k.total_weight).abs() < 1e-2);
        print_suite_row("mst", w, p, s, &format!("weight {:.1}", r.total_weight));

        // HITS
        let (p, r) =
            time_ms(|| hits::hits(execution::par, &ctx, &sym, hits::HitsConfig::default()));
        let (s, _) = time_ms(|| {
            let c = Context::sequential();
            hits::hits(execution::seq, &c, &sym, hits::HitsConfig::default())
        });
        print_suite_row(
            "hits",
            w,
            p,
            s,
            &format!("{} iterations", r.stats.iterations),
        );

        // SpMV
        let x: Vec<f32> = (0..wg.get_num_vertices())
            .map(|i| (i % 13) as f32)
            .collect();
        let (p, y) = time_ms(|| spmv::spmv(execution::par, &ctx, &wg, &x));
        let (s, y2) = time_ms(|| spmv::spmv_sequential(&wg, &x));
        assert_eq!(y, y2);
        print_suite_row("spmv", w, p, s, &format!("{} rows", y.len()));

        // SSWP
        let (p, r) = time_ms(|| sswp::sswp(execution::par, &ctx, &wg, 0));
        let (s, oracle) = time_ms(|| sswp::sswp_sequential(&wg, 0));
        assert_eq!(r.width, oracle.width);
        print_suite_row(
            "sswp",
            w,
            p,
            s,
            &format!("{} supersteps", r.stats.iterations),
        );

        // Betweenness (sampled sources — exact BC is quadratic).
        let sources: Vec<VertexId> = (0..8).collect();
        let (p, r) =
            time_ms(|| essentials_algos::bc::betweenness(execution::par, &ctx, &sym, &sources));
        let (s, oracle) = time_ms(|| essentials_algos::bc::betweenness_sequential(&sym, &sources));
        let ok = r
            .iter()
            .zip(&oracle)
            .all(|(a, b)| (a - b).abs() < 1e-6 * (1.0 + a.abs()));
        assert!(ok);
        print_suite_row("bc(8 src)", w, p, s, "sampled Brandes");
    }
    println!();
}

fn print_suite_row(algo: &str, w: Workload, par_ms: f64, seq_ms: f64, metric: &str) {
    println!(
        "{algo:>10}  {:>11}  {par_ms:>9.2}  {seq_ms:>9.2}  {metric:>24}",
        w.name()
    );
}

/// E8 — Message-passing vertex programs vs shared memory (Pregel row).
fn e8_message_passing(scale: u32) {
    println!("== E8: message-passing (Pregel ranks) vs shared memory ==");
    table_header(&[
        ("workload", 11),
        ("algo", 9),
        ("ranks", 5),
        ("ms", 9),
        ("supersteps", 10),
        ("msgs", 10),
        ("remote", 10),
    ]);
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(scale);
        let bfs_oracle = bfs::bfs(execution::par, &ctx, &g, 0);
        let sssp_oracle = sssp::sssp(execution::par, &ctx, &g, 0);
        for k in [1usize, 2, 4] {
            let p = multilevel_partition(&g, MultilevelConfig::new(k));
            let pg = PartitionedGraph::build(&g, &p);

            let (ms, (levels, stats)) = time_ms(|| mp_bfs(&pg, 0));
            assert_eq!(levels, bfs_oracle.level);
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "mp-bfs",
                stats.supersteps,
                stats.messages_total,
                stats.messages_remote
            );

            let (ms, (dist, stats)) = time_ms(|| mp_sssp(&pg, 0));
            let ok = dist
                .iter()
                .zip(&sssp_oracle.dist)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
            assert!(ok, "mp-sssp diverged");
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "mp-sssp",
                stats.supersteps,
                stats.messages_total,
                stats.messages_remote
            );

            let (ms, (_, stats)) = time_ms(|| mp_pagerank(&pg, 0.85, 20));
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "mp-pr(20)",
                stats.supersteps,
                stats.messages_total,
                stats.messages_remote
            );

            // Sender-side combining (Pregel combiners).
            let (ms, (dist, stats)) = time_ms(|| mp_sssp_combined(&pg, 0));
            let ok = dist
                .iter()
                .zip(&sssp_oracle.dist)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
            assert!(ok, "mp-sssp-combined diverged");
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "mp-sssp+c",
                stats.supersteps,
                stats.messages_total,
                stats.messages_remote
            );

            // Asynchronous message passing (no supersteps at all).
            let (ms, (levels, stats)) = time_ms(|| async_mp_bfs(&pg, 0));
            assert_eq!(levels, bfs_oracle.level, "async-mp-bfs diverged");
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "amp-bfs",
                "-",
                stats.messages_processed,
                stats.messages_remote
            );
            let (ms, (dist, stats)) = time_ms(|| async_mp_sssp(&pg, 0));
            let ok = dist
                .iter()
                .zip(&sssp_oracle.dist)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
            assert!(ok, "async-mp-sssp diverged");
            println!(
                "{:>11}  {:>9}  {k:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
                w.name(),
                "amp-sssp",
                "-",
                stats.messages_processed,
                stats.messages_remote
            );
        }
        // Shared-memory equivalents for reference.
        let (ms, _) = time_ms(|| bfs::bfs(execution::par, &ctx, &g, 0));
        println!(
            "{:>11}  {:>9}  {:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
            w.name(),
            "shm-bfs",
            "-",
            "-",
            "-",
            "-"
        );
        let (ms, _) = time_ms(|| sssp::sssp(execution::par, &ctx, &g, 0));
        println!(
            "{:>11}  {:>9}  {:>5}  {ms:>9.2}  {:>10}  {:>10}  {:>10}",
            w.name(),
            "shm-sssp",
            "-",
            "-",
            "-",
            "-"
        );
    }
    println!();
}
