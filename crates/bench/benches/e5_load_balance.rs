//! E5 — load balancing inside operators: vertex- vs edge-balanced work
//! division, and the Listing-3 mutex output vs per-thread collectors
//! (paper §IV-C: operators are "where the bulk of optimizations" lives).

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_bench::Workload;
use essentials_core::load_balance::{for_each_edge_balanced, for_each_vertex_balanced};
use essentials_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_load_balance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.directed(10);
        let frontier: Vec<VertexId> = g.vertices().collect();
        group.bench_function(format!("vertex_balanced/{}", w.name()), |b| {
            b.iter(|| {
                let acc = AtomicUsize::new(0);
                for_each_vertex_balanced(&ctx, &frontier, |_, v| {
                    acc.fetch_add(g.out_degree(v), Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
        group.bench_function(format!("edge_balanced/{}", w.name()), |b| {
            b.iter(|| {
                let acc = AtomicUsize::new(0);
                for_each_edge_balanced(&ctx, &g, &frontier, |_, _, _| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
        let f: SparseFrontier = g.vertices().collect();
        group.bench_function(format!("expand_mutex/{}", w.name()), |b| {
            b.iter(|| neighbors_expand_mutex(execution::par, &ctx, &g, &f, |_, _, _, _| true))
        });
        group.bench_function(format!("expand_collector/{}", w.name()), |b| {
            b.iter(|| neighbors_expand(execution::par, &ctx, &g, &f, |_, _, _, _| true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
