//! Ablations of individual design choices inside the abstraction —
//! the knobs DESIGN.md's inventory calls out, measured in isolation:
//! uniquify strategies, frontier conversions, loop schedules, adjacency
//! intersection kernels, and representation build costs.

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_bench::Workload;
use essentials_core::operators::filter::{uniquify, uniquify_with_bitmap};
use essentials_core::operators::intersect::{intersect_count, intersect_count_gallop};
use essentials_core::prelude::*;
use essentials_frontier::convert;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    let ctx = Context::new(2);
    let n = 1 << 14;

    // --- uniquify: sort-based vs bitmap-based, at two duplicate rates ----
    for (label, dup_factor) in [("low_dup", 1usize), ("high_dup", 16)] {
        let ids: Vec<VertexId> = (0..(n / 4) * dup_factor)
            .map(|i| ((i * 2654435761) % n) as VertexId)
            .collect();
        let f = SparseFrontier::from_vec(ids);
        group.bench_function(format!("uniquify_sort/{label}"), |b| {
            b.iter(|| uniquify(execution::seq, &ctx, &f))
        });
        group.bench_function(format!("uniquify_bitmap/{label}"), |b| {
            b.iter(|| uniquify_with_bitmap(execution::par, &ctx, &f, n))
        });
    }

    // --- frontier conversions (the direction-optimizing switch cost) -----
    for density_pct in [1usize, 25, 75] {
        let ids: Vec<VertexId> = (0..n)
            .filter(|i| (i * 37) % 100 < density_pct)
            .map(|i| i as VertexId)
            .collect();
        let sparse = SparseFrontier::from_vec(ids);
        let dense = convert::sparse_to_dense(&sparse, n);
        group.bench_function(format!("sparse_to_dense/{density_pct}pct"), |b| {
            b.iter(|| convert::sparse_to_dense(&sparse, n))
        });
        group.bench_function(format!("dense_to_sparse/{density_pct}pct"), |b| {
            b.iter(|| convert::dense_to_sparse(&dense))
        });
    }

    // --- schedules on skewed per-index work --------------------------------
    let g = Workload::Rmat.directed(10);
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic_64", Schedule::Dynamic(64)),
        ("dynamic_1024", Schedule::Dynamic(1024)),
        ("guided_64", Schedule::Guided(64)),
    ] {
        group.bench_function(format!("schedule/{name}"), |b| {
            b.iter(|| {
                let acc = std::sync::atomic::AtomicUsize::new(0);
                ctx.pool()
                    .parallel_for(0..g.get_num_vertices(), schedule, |i| {
                        // Per-vertex work proportional to degree (skewed).
                        let mut s = 0usize;
                        for &d in g.out_neighbors(i as VertexId) {
                            s = s.wrapping_add(d as usize);
                        }
                        acc.fetch_add(s & 7, std::sync::atomic::Ordering::Relaxed);
                    });
                acc.into_inner()
            })
        });
    }

    // --- intersection kernels: balanced vs skewed list sizes -------------
    let a: Vec<VertexId> = (0..4096).map(|i| i * 3).collect();
    let b_: Vec<VertexId> = (0..4096).map(|i| i * 5).collect();
    let tiny: Vec<VertexId> = (0..32).map(|i| i * 391).collect();
    group.bench_function("intersect_merge/balanced", |bch| {
        bch.iter(|| intersect_count(&a, &b_))
    });
    group.bench_function("intersect_gallop/balanced", |bch| {
        bch.iter(|| intersect_count_gallop(&a, &b_))
    });
    group.bench_function("intersect_merge/skewed", |bch| {
        bch.iter(|| intersect_count(&tiny, &a))
    });
    group.bench_function("intersect_gallop/skewed", |bch| {
        bch.iter(|| intersect_count_gallop(&tiny, &a))
    });

    // --- representation build costs (Listing 1's "cost of memory space") -
    let coo = Workload::Rmat.edges(10);
    group.bench_function("build_csr", |b| b.iter(|| Csr::from_coo(&coo)));
    let csr = Csr::<()>::from_coo(&coo);
    group.bench_function("build_csc_from_csr", |b| b.iter(|| csr.transposed()));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
