//! Ablations of individual design choices inside the abstraction —
//! the knobs DESIGN.md's inventory calls out, measured in isolation:
//! frontier-pipeline collector and dedup strategies, uniquify strategies,
//! frontier conversions, loop schedules, adjacency intersection kernels,
//! degree-scan parallelism, and representation build costs.

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_bench::Workload;
use essentials_core::operators::filter::{uniquify, uniquify_with_bitmap};
use essentials_core::operators::intersect::{intersect_count, intersect_count_gallop};
use essentials_core::prelude::*;
use essentials_frontier::convert;
use essentials_parallel::{parallel_scan, serial_scan};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    let ctx = Context::new(2);
    let n = 1 << 14;

    // --- uniquify: sort-based vs bitmap-based, at two duplicate rates ----
    for (label, dup_factor) in [("low_dup", 1usize), ("high_dup", 16)] {
        let ids: Vec<VertexId> = (0..(n / 4) * dup_factor)
            .map(|i| ((i * 2654435761) % n) as VertexId)
            .collect();
        let f = SparseFrontier::from_vec(ids);
        group.bench_function(format!("uniquify_sort/{label}"), |b| {
            b.iter(|| uniquify(execution::seq, &ctx, &f))
        });
        group.bench_function(format!("uniquify_bitmap/{label}"), |b| {
            b.iter(|| uniquify_with_bitmap(execution::par, &ctx, &f, n))
        });
    }

    // --- frontier conversions (the direction-optimizing switch cost) -----
    for density_pct in [1usize, 25, 75] {
        let ids: Vec<VertexId> = (0..n)
            .filter(|i| (i * 37) % 100 < density_pct)
            .map(|i| i as VertexId)
            .collect();
        let sparse = SparseFrontier::from_vec(ids);
        let dense = convert::sparse_to_dense(&sparse, n);
        group.bench_function(format!("sparse_to_dense/{density_pct}pct"), |b| {
            b.iter(|| convert::sparse_to_dense(&sparse, n))
        });
        group.bench_function(format!("dense_to_sparse/{density_pct}pct"), |b| {
            b.iter(|| convert::dense_to_sparse(&dense))
        });
    }

    // --- schedules on skewed per-index work --------------------------------
    let g = Workload::Rmat.directed(10);
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic_64", Schedule::Dynamic(64)),
        ("dynamic_1024", Schedule::Dynamic(1024)),
        ("guided_64", Schedule::Guided(64)),
    ] {
        group.bench_function(format!("schedule/{name}"), |b| {
            b.iter(|| {
                let acc = std::sync::atomic::AtomicUsize::new(0);
                ctx.pool()
                    .parallel_for(0..g.get_num_vertices(), schedule, |i| {
                        // Per-vertex work proportional to degree (skewed).
                        let mut s = 0usize;
                        for &d in g.out_neighbors(i as VertexId) {
                            s = s.wrapping_add(d as usize);
                        }
                        acc.fetch_add(s & 7, std::sync::atomic::Ordering::Relaxed);
                    });
                acc.into_inner()
            })
        });
    }

    // --- intersection kernels: balanced vs skewed list sizes -------------
    let a: Vec<VertexId> = (0..4096).map(|i| i * 3).collect();
    let b_: Vec<VertexId> = (0..4096).map(|i| i * 5).collect();
    let tiny: Vec<VertexId> = (0..32).map(|i| i * 391).collect();
    group.bench_function("intersect_merge/balanced", |bch| {
        bch.iter(|| intersect_count(&a, &b_))
    });
    group.bench_function("intersect_gallop/balanced", |bch| {
        bch.iter(|| intersect_count_gallop(&a, &b_))
    });
    group.bench_function("intersect_merge/skewed", |bch| {
        bch.iter(|| intersect_count(&tiny, &a))
    });
    group.bench_function("intersect_gallop/skewed", |bch| {
        bch.iter(|| intersect_count_gallop(&tiny, &a))
    });

    // --- frontier pipeline on a ≥1M-edge R-MAT ---------------------------
    // Three output-collection strategies for the same expansion, and the
    // fused-dedup advance against the two-pass expand + uniquify.
    let big = Workload::Rmat.directed(17);
    let big_n = big.get_num_vertices();
    let big_ctx = Context::new(4);
    let all: SparseFrontier = big.vertices().collect();
    let admit = |_s: VertexId, d: VertexId, _e: EdgeId, _w: ()| d.is_multiple_of(2);
    let edges_label = format!("rmat17_{}edges", big.get_num_edges());

    // Paper Listing 3: one global mutex around every push.
    group.bench_function(format!("collect_global_mutex/{edges_label}"), |b| {
        b.iter(|| neighbors_expand_mutex(execution::par, &big_ctx, &big, &all, admit))
    });
    // Pre-refactor collector: per-worker Mutex<Vec> buffers.
    group.bench_function(format!("collect_mutex_collector/{edges_label}"), |b| {
        b.iter(|| {
            let collector = Collector::new(big_ctx.num_threads());
            for_each_edge_balanced(&big_ctx, &big, all.as_slice(), |tid, _v, e| {
                let d = big.edge_dest(e);
                if d % 2 == 0 {
                    collector.push(tid, d);
                }
            });
            collector.into_frontier()
        })
    });
    // Current path: lock-free cache-line-padded worker buffers + scratch.
    group.bench_function(format!("collect_lockfree/{edges_label}"), |b| {
        b.iter(|| {
            let out = neighbors_expand(execution::par, &big_ctx, &big, &all, admit);
            big_ctx.recycle_frontier(out);
        })
    });

    group.bench_function(format!("dedup_expand_then_uniquify/{edges_label}"), |b| {
        b.iter(|| {
            let out = neighbors_expand(execution::par, &big_ctx, &big, &all, admit);
            let unique = uniquify_with_bitmap(execution::par, &big_ctx, &out, big_n);
            big_ctx.recycle_frontier(out);
            big_ctx.recycle_frontier(unique);
        })
    });
    group.bench_function(format!("dedup_fused_bitmap/{edges_label}"), |b| {
        b.iter(|| {
            let out = neighbors_expand_unique(execution::par, &big_ctx, &big, &all, admit);
            big_ctx.recycle_frontier(out);
        })
    });

    // --- bitmap decode: per-bit probe vs iterator vs word scan ------------
    // The dense-frontier scan kernel behind the masked pull. The word scan
    // costs one load per 64 bits and decodes with trailing_zeros in a tight
    // loop; the parallel form hands workers disjoint word ranges.
    {
        use essentials_parallel::atomics::AtomicBitset;
        let nbits = 1usize << 20;
        let wctx = Context::new(4);
        for density_pct in [1usize, 50, 90] {
            let bits = AtomicBitset::new(nbits);
            for i in 0..nbits {
                if (i.wrapping_mul(2654435761)) % 100 < density_pct {
                    bits.set(i);
                }
            }
            group.bench_function(format!("bitmap_bit_probe/{density_pct}pct"), |b| {
                b.iter(|| (0..nbits).filter(|&i| bits.get(i)).count())
            });
            group.bench_function(format!("bitmap_iter_ones/{density_pct}pct"), |b| {
                b.iter(|| bits.iter_ones().count())
            });
            group.bench_function(format!("bitmap_word_scan/{density_pct}pct"), |b| {
                b.iter(|| {
                    let mut acc = 0usize;
                    bits.for_each_set(|_| acc += 1);
                    acc
                })
            });
            group.bench_function(format!("bitmap_word_scan_par/{density_pct}pct"), |b| {
                b.iter(|| {
                    wctx.pool().parallel_reduce(
                        0..bits.num_words(),
                        Schedule::Dynamic(64),
                        0usize,
                        |wi| {
                            let mut acc = 0usize;
                            bits.for_each_set_in_words(wi, wi + 1, &mut |_| acc += 1);
                            acc
                        },
                        |a, b| a + b,
                    )
                })
            });
        }
    }

    // --- degree prefix sum: serial vs parallel ---------------------------
    let degrees: Vec<usize> = (0..big_n).map(|v| big.out_degree(v as VertexId)).collect();
    let mut scan_out = Vec::new();
    group.bench_function(format!("scan_serial/{big_n}"), |b| {
        b.iter(|| serial_scan(&degrees, &mut scan_out))
    });
    group.bench_function(format!("scan_parallel/{big_n}"), |b| {
        b.iter(|| parallel_scan(big_ctx.pool(), &degrees, &mut scan_out))
    });

    // --- representation build costs (Listing 1's "cost of memory space") -
    let coo = Workload::Rmat.edges(10);
    group.bench_function("build_csr", |b| b.iter(|| Csr::from_coo(&coo)));
    let csr = Csr::<()>::from_coo(&coo);
    group.bench_function("build_csc_from_csr", |b| b.iter(|| csr.transposed()));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
