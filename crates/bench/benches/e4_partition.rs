//! E4 — partitioning heuristics: cost and quality of random, contiguous,
//! and multilevel partitioning (Table I "Partitioning" row).

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_bench::Workload;
use essentials_partition::{
    contiguous_partition, multilevel_partition, random_partition, MultilevelConfig,
    PartitionedGraph,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_partition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.symmetric(10);
        let n = g.get_num_vertices();
        group.bench_function(format!("random_k4/{}", w.name()), |b| {
            b.iter(|| random_partition(n, 4, 1))
        });
        group.bench_function(format!("contiguous_k4/{}", w.name()), |b| {
            b.iter(|| contiguous_partition(n, 4))
        });
        group.bench_function(format!("multilevel_k4/{}", w.name()), |b| {
            b.iter(|| multilevel_partition(&g, MultilevelConfig::new(4)))
        });
        let p = multilevel_partition(&g, MultilevelConfig::new(4));
        group.bench_function(format!("build_partitioned/{}", w.name()), |b| {
            b.iter(|| PartitionedGraph::build(&g, &p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
