//! E8 — message-passing vertex programs over thread-ranks vs shared
//! memory (the Pregel row of Table I).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use essentials_algos::{bfs, sssp};
use essentials_bench::Workload;
use essentials_core::prelude::*;
use essentials_mp::algorithms::{mp_bfs, mp_sssp};
use essentials_partition::{multilevel_partition, MultilevelConfig, PartitionedGraph};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_message_passing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(10);
        for ranks in [1usize, 2, 4] {
            let p = multilevel_partition(&g, MultilevelConfig::new(ranks));
            let pg = PartitionedGraph::build(&g, &p);
            group.bench_with_input(
                BenchmarkId::new(format!("mp_bfs/{}", w.name()), ranks),
                &ranks,
                |b, _| b.iter(|| mp_bfs(&pg, 0)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("mp_sssp/{}", w.name()), ranks),
                &ranks,
                |b, _| b.iter(|| mp_sssp(&pg, 0)),
            );
        }
        group.bench_function(format!("shm_bfs/{}", w.name()), |b| {
            b.iter(|| bfs::bfs(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("shm_sssp/{}", w.name()), |b| {
            b.iter(|| sssp::sssp(execution::par, &ctx, &g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
