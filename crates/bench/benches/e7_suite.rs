//! E7 — the full algorithm suite on both topology regimes: one
//! abstraction, many algorithms (paper §V).

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_algos::{cc, color, kcore, pagerank, spmv, tc};
use essentials_bench::Workload;
use essentials_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_suite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let sym = w.symmetric(10);
        let wg = w.weighted(10);
        group.bench_function(format!("pagerank/{}", w.name()), |b| {
            let cfg = pagerank::PrConfig {
                max_iterations: 20,
                tolerance: 0.0,
                ..Default::default()
            };
            b.iter(|| pagerank::pagerank_pull(execution::par, &ctx, &sym, cfg))
        });
        group.bench_function(format!("cc_label_prop/{}", w.name()), |b| {
            b.iter(|| cc::cc_label_propagation(execution::par, &ctx, &sym))
        });
        group.bench_function(format!("cc_hooking/{}", w.name()), |b| {
            b.iter(|| cc::cc_hooking(execution::par, &ctx, &sym))
        });
        group.bench_function(format!("tc_merge/{}", w.name()), |b| {
            b.iter(|| tc::triangle_count(execution::par, &ctx, &sym, false))
        });
        group.bench_function(format!("tc_gallop/{}", w.name()), |b| {
            b.iter(|| tc::triangle_count(execution::par, &ctx, &sym, true))
        });
        group.bench_function(format!("kcore/{}", w.name()), |b| {
            b.iter(|| kcore::kcore_peel(execution::par, &ctx, &sym))
        });
        group.bench_function(format!("color/{}", w.name()), |b| {
            b.iter(|| color::color_greedy(execution::par, &ctx, &sym))
        });
        let x: Vec<f32> = (0..wg.get_num_vertices())
            .map(|i| (i % 13) as f32)
            .collect();
        group.bench_function(format!("spmv/{}", w.name()), |b| {
            b.iter(|| spmv::spmv(execution::par, &ctx, &wg, &x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
