//! E2 — communication models: sparse vs dense(bitmap) vs queue frontier
//! representations behind the same BFS loop (Table I "Communication" row).

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_algos::bfs;
use essentials_bench::Workload;
use essentials_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_communication");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in Workload::ALL {
        let g = w.directed(10);
        group.bench_function(format!("sparse/{}", w.name()), |b| {
            b.iter(|| bfs::bfs(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("dense_bitmap/{}", w.name()), |b| {
            b.iter(|| bfs::bfs_dense(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("queue/{}", w.name()), |b| {
            b.iter(|| bfs::bfs_queue(&ctx, &g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
