//! E1 — timing models: bulk-synchronous vs asynchronous execution of the
//! same relaxation (DESIGN.md §4, Table I "Timing" row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use essentials_algos::{bfs, sssp};
use essentials_bench::Workload;
use essentials_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_timing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(10);
        for threads in [1usize, 2] {
            let ctx = Context::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("sssp_bsp/{}", w.name()), threads),
                &threads,
                |b, _| b.iter(|| sssp::sssp(execution::par, &ctx, &g, 0)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sssp_async/{}", w.name()), threads),
                &threads,
                |b, _| b.iter(|| sssp::sssp_async(&ctx, &g, 0)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("bfs_bsp/{}", w.name()), threads),
                &threads,
                |b, _| b.iter(|| bfs::bfs(execution::par, &ctx, &g, 0)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("bfs_async/{}", w.name()), threads),
                &threads,
                |b, _| b.iter(|| bfs::bfs_async(&ctx, &g, 0)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
