//! E3 — execution model: push vs pull vs direction-optimizing traversal
//! (Table I "Execution Model" row); PageRank in both directions.

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_algos::{bfs, pagerank};
use essentials_bench::Workload;
use essentials_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_direction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.symmetric(10);
        group.bench_function(format!("bfs_push/{}", w.name()), |b| {
            b.iter(|| bfs::bfs(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("bfs_pull/{}", w.name()), |b| {
            b.iter(|| bfs::bfs_pull(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("bfs_do/{}", w.name()), |b| {
            b.iter(|| {
                bfs::bfs_direction_optimizing(execution::par, &ctx, &g, 0, bfs::DoParams::default())
            })
        });
        let cfg = pagerank::PrConfig {
            max_iterations: 20,
            tolerance: 0.0,
            ..Default::default()
        };
        group.bench_function(format!("pagerank_pull/{}", w.name()), |b| {
            b.iter(|| pagerank::pagerank_pull(execution::par, &ctx, &g, cfg))
        });
        group.bench_function(format!("pagerank_push/{}", w.name()), |b| {
            b.iter(|| pagerank::pagerank_push(execution::par, &ctx, &g, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
