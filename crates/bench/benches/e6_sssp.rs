//! E6 — Listing-4 SSSP and friends vs hand-written sequential baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use essentials_algos::sssp;
use essentials_bench::Workload;
use essentials_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sssp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let ctx = Context::new(2);
    for w in [Workload::Rmat, Workload::Grid] {
        let g = w.weighted(10);
        group.bench_function(format!("dijkstra/{}", w.name()), |b| {
            b.iter(|| sssp::dijkstra(&g, 0))
        });
        group.bench_function(format!("bellman_ford/{}", w.name()), |b| {
            b.iter(|| sssp::bellman_ford(&g, 0))
        });
        group.bench_function(format!("bsp_listing4/{}", w.name()), |b| {
            b.iter(|| sssp::sssp(execution::par, &ctx, &g, 0))
        });
        group.bench_function(format!("delta_stepping_2/{}", w.name()), |b| {
            b.iter(|| sssp::delta_stepping(execution::par, &ctx, &g, 0, 2.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
