//! Structured fork-join task spawning on top of parallel regions.
//!
//! A [`Scope`] collects dynamically spawned tasks (which may themselves
//! spawn); [`ThreadPool::scope`] then drains them with every worker until
//! quiescence. Tasks may borrow from the caller's stack — the scope cannot
//! outlive the call, enforced by the `'scope` lifetime exactly as in
//! `std::thread::scope`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::pool::ThreadPool;

/// A task queue bounded to the `'scope` lifetime.
pub struct Scope<'scope> {
    queue: Mutex<VecDeque<Task<'scope>>>,
    /// Tasks spawned but not yet finished executing.
    pending: AtomicUsize,
}

type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

impl<'scope> Scope<'scope> {
    fn new() -> Self {
        Scope {
            queue: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
        }
    }

    /// Schedules `f` to run on some pool worker before the scope ends. `f`
    /// receives the scope and may spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.queue.lock().push_back(Box::new(f));
    }

    /// Number of tasks not yet completed (advisory).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    fn drain(&self) {
        loop {
            let task = self.queue.lock().pop_front();
            match task {
                Some(t) => {
                    t(self);
                    self.pending.fetch_sub(1, Ordering::Release);
                }
                None => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl ThreadPool {
    /// Runs `f`, then executes everything it spawned (transitively) across
    /// the pool, returning once all tasks finished.
    ///
    /// ```
    /// use essentials_parallel::ThreadPool;
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let pool = ThreadPool::new(4);
    /// let hits = AtomicUsize::new(0);
    /// pool.scope(|s| {
    ///     for _ in 0..8 {
    ///         s.spawn(|s| {
    ///             hits.fetch_add(1, Ordering::Relaxed);
    ///             s.spawn(|_| {
    ///                 hits.fetch_add(1, Ordering::Relaxed);
    ///             });
    ///         });
    ///     }
    /// });
    /// assert_eq!(hits.into_inner(), 16);
    /// ```
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope::new();
        let result = f(&scope);
        if scope.pending.load(Ordering::Acquire) > 0 {
            self.run(|_| scope.drain());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = ThreadPool::new(2);
        let r = pool.scope(|_| 7);
        assert_eq!(r, 7);
    }

    #[test]
    fn recursive_spawning_runs_everything() {
        let pool = ThreadPool::new(4);
        let count = AtomicU64::new(0);
        // Binary fan-out of depth 10 => 2^10 - 1 tasks beneath the root pair.
        fn go<'s>(s: &Scope<'s>, depth: u32, count: &'s AtomicU64) {
            count.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                s.spawn(move |s| go(s, depth - 1, count));
                s.spawn(move |s| go(s, depth - 1, count));
            }
        }
        pool.scope(|s| {
            let count = &count;
            s.spawn(move |s| go(s, 9, count));
        });
        assert_eq!(count.into_inner(), (1 << 10) - 1);
    }

    #[test]
    fn tasks_can_borrow_caller_stack() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.into_inner(), 10);
    }
}
