//! Optional core affinity for pool workers.
//!
//! Placement-aware scheduling (DESIGN.md §12) assumes a worker keeps
//! re-reading the same slice of the rank/label vectors, so its private
//! caches stay warm across iterations. That only holds if the OS does not
//! migrate the thread; pinning each worker to one core makes the stable
//! worker id a stable *cache domain* too.
//!
//! Pinning is strictly best-effort and opt-in (`ThreadPool::new_pinned`
//! or `ESSENTIALS_PIN=1`): on unsupported platforms, or when the kernel
//! refuses (cpuset restrictions), workers simply run unpinned and
//! [`pin_current_thread`] reports `false`. No dependency is vendored for
//! this — on x86-64 Linux the `sched_setaffinity` syscall is issued
//! directly.

/// Size of the CPU mask passed to the kernel, in `u64` words (1024 CPUs —
/// the glibc `cpu_set_t` default, ample for any host this runs on).
const MASK_WORDS: usize = 16;

/// Pins the calling thread to `core` (best effort). Returns `true` when
/// the kernel accepted the new affinity mask.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
pub fn pin_current_thread(core: usize) -> bool {
    if core >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity(2) is syscall 203 on x86-64 Linux; it
    // reads `rsi` bytes from the pointer in `rdx` and writes no user
    // memory. pid 0 targets the calling thread. `rcx`/`r11` are clobbered
    // by the `syscall` instruction per the ABI and are declared as such;
    // the mask array outlives the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,
            in("rsi") MASK_WORDS * 8,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Fallback for platforms without a raw-syscall implementation: reports
/// that the thread was not pinned.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_does_not_crash() {
        // On Linux this should succeed for core 0 (every cpuset contains at
        // least one core, and core 0 is the common case); elsewhere it must
        // return false. Either way the thread keeps running.
        let _ = pin_current_thread(0);
        assert!(!pin_current_thread(MASK_WORDS * 64 + 1));
        let sum: usize = (0..100).sum();
        assert_eq!(sum, 4950);
    }
}
