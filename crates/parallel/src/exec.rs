//! Typed execution errors, cooperative run budgets, and deterministic
//! fault injection.
//!
//! The paper's loop structure ("iterate until convergence", §IV) assumes
//! operators always complete and convergence always arrives. A production
//! service cannot: a worker panic must not take the process down, a caller
//! must be able to cancel or bound a long traversal, and a non-converging
//! iteration must surface as an error instead of silent garbage. This
//! module is the vocabulary for all three, shared by the pool (chunk-level
//! panic capture and budget checks), the enactor (iteration-level budget
//! checks and divergence watchdogs), and the algorithms' fallible `try_*`
//! entry points.
//!
//! Everything here is advisory-flag machinery: budget checks are relaxed
//! loads at chunk/iteration boundaries (amortized so the zero-allocation
//! and throughput contracts hold), and [`FaultPlan`] lets tests force a
//! panic or cancellation at an exact `(iteration, chunk)` coordinate so
//! recovery paths are exercised deterministically.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline probes call `Instant::now()` only every this many chunks, so a
/// hooked hot loop stays branch-plus-relaxed-load per chunk.
const DEADLINE_CHECK_STRIDE: usize = 16;

/// Why an execution stopped before completing.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// A closure panicked inside a parallel region. The pool captured the
    /// panic, drained every other chunk, and restored its own invariants;
    /// `payload` is the stringified panic message and `chunk` the failing
    /// chunk id (worker id for raw [`crate::ThreadPool::try_run`] regions).
    WorkerPanic {
        /// Stringified panic payload (`&str`/`String` payloads verbatim).
        payload: String,
        /// Chunk id that panicked (schedule-specific numbering; worker id
        /// for raw regions).
        chunk: usize,
    },
    /// A [`RunBudget`] limit fired: the run was cancelled, its deadline
    /// expired, or it reached the iteration cap.
    Budget {
        /// Which budget limit fired.
        reason: BudgetReason,
        /// Partial-progress statistics gathered up to the stop.
        progress: Progress,
    },
    /// A convergence watchdog fired: the computation produced non-finite
    /// values or its residual is growing instead of shrinking.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Human-readable description of what the watchdog saw.
        detail: String,
    },
    /// The request itself was malformed — an out-of-range vertex, an
    /// oversized batch, or a similar caller error. `try_*` entry points
    /// raise this *before* any work starts or any pooled buffer is taken,
    /// so a serving layer can reject the request as a typed error while
    /// its context stays warm and fully reusable.
    InvalidInput {
        /// Human-readable description of what was rejected.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorkerPanic { payload, chunk } => {
                write!(
                    f,
                    "worker panic in parallel region (chunk {chunk}): {payload}"
                )
            }
            ExecError::Budget { reason, progress } => {
                write!(
                    f,
                    "run budget exhausted ({reason}) after {} iterations",
                    progress.iterations
                )
            }
            ExecError::Diverged { iteration, detail } => {
                write!(f, "computation diverged at iteration {iteration}: {detail}")
            }
            ExecError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Short stable label for observability sinks and harness rows.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::WorkerPanic { .. } => "worker-panic",
            ExecError::Budget { reason, .. } => reason.name(),
            ExecError::Diverged { .. } => "diverged",
            ExecError::InvalidInput { .. } => "invalid-input",
        }
    }

    /// Replaces the progress stats of a [`ExecError::Budget`] error (other
    /// variants pass through). The enactor uses this to attach
    /// loop-level progress to errors raised deeper in the stack.
    pub fn with_progress(self, progress: Progress) -> Self {
        match self {
            ExecError::Budget { reason, .. } => ExecError::Budget { reason, progress },
            other => other,
        }
    }
}

/// Which limit of a [`RunBudget`] stopped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The iteration count reached `max_iterations`.
    IterationCap,
}

impl BudgetReason {
    /// Short stable label for observability sinks and harness rows.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetReason::Cancelled => "cancelled",
            BudgetReason::DeadlineExpired => "deadline-expired",
            BudgetReason::IterationCap => "iteration-cap",
        }
    }
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Partial-progress statistics attached to [`ExecError::Budget`]: how far
/// the loop got before the budget fired, mirroring the obs layer's
/// per-iteration work trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    /// Iterations fully completed before the stop.
    pub iterations: usize,
    /// Work per completed iteration (frontier sizes for frontier loops,
    /// reported work for fixpoint loops).
    pub work_trace: Vec<usize>,
}

/// Cloneable cancellation flag. `cancel()` is sticky; workers observe it
/// with a relaxed load at chunk boundaries, the enactor at iteration
/// boundaries.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (relaxed load — advisory,
    /// the region barriers order the data).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Cooperative limits for one run: an optional [`CancelToken`], an optional
/// wall-clock deadline, and an optional iteration cap. Carried in
/// `Context`; checked at iteration boundaries by the enactor and (token +
/// deadline) at chunk boundaries inside parallel operators.
///
/// The default budget is unlimited and costs nothing to check.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    max_iterations: Option<usize>,
}

impl RunBudget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of enactor iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }

    /// Whether no limit is set (the fast path skips all checks).
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.max_iterations.is_none()
    }

    /// The iteration cap, if any.
    pub fn max_iterations(&self) -> Option<usize> {
        self.max_iterations
    }

    /// The wall-clock deadline, if any. A serving layer applies the same
    /// deadline to queue wait that the operators apply to execution, so a
    /// request cannot spend its whole budget waiting for admission.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancellation token, if any (admission queues poll it
    /// so a cancelled request stops waiting instead of occupying a slot).
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Iteration-boundary check, called by the enactor before starting
    /// iteration `iteration` (0-based). Deterministic limits (cancellation
    /// observed, iteration cap) are checked before the wall clock, so
    /// `max_iterations` runs are bit-identical across thread counts.
    pub fn check_iteration(&self, iteration: usize) -> Result<(), BudgetReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetReason::Cancelled);
            }
        }
        if let Some(cap) = self.max_iterations {
            if iteration >= cap {
                return Err(BudgetReason::IterationCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetReason::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// The chunk-boundary view of this budget (plus an optional fault
    /// plan), to hand to `ThreadPool::try_parallel_for_with`.
    pub fn chunk_hooks<'a>(&'a self, fault: Option<&'a FaultPlan>) -> ChunkHooks<'a> {
        ChunkHooks {
            cancel: self.cancel.as_ref(),
            deadline: self.deadline,
            fault,
        }
    }
}

/// What a fault plan injects at a matched coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    Panic,
    Cancel,
}

/// Deterministic fault injection: forces a panic or a cancellation at
/// exact `(iteration, chunk)` coordinates. The enactor publishes the
/// current iteration with [`FaultPlan::set_iteration`]; the pool consults
/// the plan before every chunk.
///
/// Chunk numbering is schedule-specific (documented on
/// `ThreadPool::try_parallel_for_with`); the BSP edge balancer runs its
/// chunk loop under `Dynamic(1)`, so there a chunk id is the balancer's
/// own chunk index — stable across thread counts.
#[derive(Debug, Default)]
pub struct FaultPlan {
    points: Vec<(u64, u64, FaultAction)>,
    iteration: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces a panic inside the chunk at `(iteration, chunk)`.
    pub fn panic_at(mut self, iteration: u64, chunk: u64) -> Self {
        self.points.push((iteration, chunk, FaultAction::Panic));
        self
    }

    /// Forces a cancellation observed at `(iteration, chunk)`.
    pub fn cancel_at(mut self, iteration: u64, chunk: u64) -> Self {
        self.points.push((iteration, chunk, FaultAction::Cancel));
        self
    }

    /// A plan with `panics` panic points and `cancels` cancel points drawn
    /// from a seeded splitmix64 stream over `[0, iter_range) ×
    /// [0, chunk_range)`. Same seed, same plan — fault sweeps stay
    /// reproducible.
    pub fn seeded(
        seed: u64,
        panics: usize,
        cancels: usize,
        iter_range: u64,
        chunk_range: u64,
    ) -> Self {
        let mut next = splitmix64(seed);
        let iter_range = iter_range.max(1);
        let chunk_range = chunk_range.max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..panics {
            let (i, c) = (next() % iter_range, next() % chunk_range);
            plan = plan.panic_at(i, c);
        }
        for _ in 0..cancels {
            let (i, c) = (next() % iter_range, next() % chunk_range);
            plan = plan.cancel_at(i, c);
        }
        plan
    }

    /// Publishes the current enactor iteration (relaxed store; the region
    /// barriers order everything the chunks touch).
    pub fn set_iteration(&self, iteration: usize) {
        self.iteration.store(iteration as u64, Ordering::Relaxed);
    }

    /// The iteration most recently published by the enactor.
    pub fn iteration(&self) -> u64 {
        self.iteration.load(Ordering::Relaxed)
    }

    fn on_chunk(&self, chunk: u64) -> Option<FaultAction> {
        let iteration = self.iteration.load(Ordering::Relaxed);
        self.points
            .iter()
            .find(|(i, c, _)| *i == iteration && *c == chunk)
            .map(|(_, _, a)| *a)
    }
}

/// The seeding PRNG shared by every deterministic fault generator
/// (splitmix64: the reference seeding PRNG, period 2^64). Same seed, same
/// stream — fault sweeps stay reproducible.
fn splitmix64(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One request-level fault, keyed by the serving engine's request id. The
/// chunk-level [`FaultPlan`] asks "what breaks at `(iteration, chunk)` of
/// *this run*"; a [`RequestFaultPlan`] asks "what breaks for *request r* of
/// a serving workload" — the vocabulary of the chaos soak harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFault {
    /// Inject a worker panic through the pool's real `catch_unwind` path at
    /// the given `(iteration, chunk)` coordinate of the request's run (the
    /// engine attaches a single-point [`FaultPlan`] to the request context).
    Panic {
        /// Iteration coordinate of the injected panic.
        iteration: u64,
        /// Chunk coordinate of the injected panic.
        chunk: u64,
    },
    /// Stall the request for the given duration at service start — models a
    /// slow dependency and inflates the measured service time the shedding
    /// estimator learns from.
    Delay {
        /// Stall length in microseconds.
        micros: u64,
    },
    /// Exhaust the request's iteration budget on arrival (`max_iterations`
    /// forced to zero), so the run stops with a typed `iteration-cap` error
    /// at its first boundary check.
    BudgetExhaust,
    /// Poison a serving-layer mutex (the engine's recycle free-list) by
    /// panicking while the lock is held, exercising the poison-forgiveness
    /// path.
    PoisonLock,
}

impl RequestFault {
    /// The `(iteration, chunk)` coordinate of the fault within its
    /// request's run. Request-scoped faults (delay, budget-exhaust,
    /// poison-lock) fire before any chunk runs and report `(0, 0)`.
    pub fn coordinate(self) -> (u64, u64) {
        match self {
            RequestFault::Panic { iteration, chunk } => (iteration, chunk),
            _ => (0, 0),
        }
    }

    /// Stable lowercase label for logs and replay keys.
    pub fn name(self) -> &'static str {
        match self {
            RequestFault::Panic { .. } => "panic",
            RequestFault::Delay { .. } => "delay",
            RequestFault::BudgetExhaust => "budget-exhaust",
            RequestFault::PoisonLock => "poison-lock",
        }
    }
}

/// Deterministic request-keyed fault injection for a serving engine: a map
/// from request id to the [`RequestFault`] that request suffers. Built
/// up-front (usually [`RequestFaultPlan::seeded`]) and handed to the
/// engine, which consults it once per request by id.
///
/// Every fault has a replayable key `(request, iteration, chunk)` — the
/// request id plus [`RequestFault::coordinate`] — printed verbatim by the
/// chaos harness on any assertion failure so the exact failing schedule
/// reruns from the seed.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RequestFaultPlan {
    faults: Vec<(u64, RequestFault)>,
}

impl RequestFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault for request `request`. The first fault registered for
    /// an id wins; later duplicates are inert.
    pub fn fault_at(mut self, request: u64, fault: RequestFault) -> Self {
        self.faults.push((request, fault));
        self
    }

    /// A mixed plan drawn from a seeded splitmix64 stream: `panics` panic
    /// faults (coordinates over `[0, iter_range) × [0, chunk_range)`),
    /// `delays` stalls of `delay_micros`, `budgets` budget-exhausts, and
    /// `poisons` lock poisonings, each keyed to a request id in
    /// `[0, requests)`. Same seed, same plan.
    #[allow(clippy::too_many_arguments)] // a seeded recipe, not an API surface: every knob is a count
    pub fn seeded(
        seed: u64,
        requests: u64,
        panics: usize,
        delays: usize,
        budgets: usize,
        poisons: usize,
        iter_range: u64,
        chunk_range: u64,
        delay_micros: u64,
    ) -> Self {
        let mut next = splitmix64(seed);
        let requests = requests.max(1);
        let iter_range = iter_range.max(1);
        let chunk_range = chunk_range.max(1);
        let mut plan = RequestFaultPlan::new();
        for _ in 0..panics {
            let (r, i, c) = (next() % requests, next() % iter_range, next() % chunk_range);
            plan = plan.fault_at(
                r,
                RequestFault::Panic {
                    iteration: i,
                    chunk: c,
                },
            );
        }
        for _ in 0..delays {
            let r = next() % requests;
            plan = plan.fault_at(
                r,
                RequestFault::Delay {
                    micros: delay_micros,
                },
            );
        }
        for _ in 0..budgets {
            let r = next() % requests;
            plan = plan.fault_at(r, RequestFault::BudgetExhaust);
        }
        for _ in 0..poisons {
            let r = next() % requests;
            plan = plan.fault_at(r, RequestFault::PoisonLock);
        }
        plan
    }

    /// The fault planned for request `id`, if any (first registration wins).
    pub fn for_request(&self, id: u64) -> Option<RequestFault> {
        self.faults.iter().find(|(r, _)| *r == id).map(|(_, f)| *f)
    }

    /// Every planned fault as `(request, fault)` pairs, in registration
    /// order — the harness renders these as replay keys.
    pub fn faults(&self) -> &[(u64, RequestFault)] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What the pool should do before running a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkAction {
    /// Run the chunk normally.
    Run,
    /// Stop taking chunks; the region reports [`ExecError::Budget`].
    Stop(BudgetReason),
    /// Panic inside the chunk (fault injection): the panic goes through the
    /// real `catch_unwind` capture path at the given coordinate.
    Panic {
        /// Iteration coordinate of the injected fault.
        iteration: u64,
        /// Chunk coordinate of the injected fault.
        chunk: u64,
    },
}

/// The chunk-boundary view of a budget + fault plan, threaded into the
/// pool's fallible loops. Checks are one branch per `Option` plus a
/// relaxed load; the deadline probe is amortized to every
/// [`DEADLINE_CHECK_STRIDE`]th chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkHooks<'a> {
    cancel: Option<&'a CancelToken>,
    deadline: Option<Instant>,
    fault: Option<&'a FaultPlan>,
}

impl<'a> ChunkHooks<'a> {
    /// Hooks that never fire (the no-budget fast path).
    pub const fn none() -> Self {
        ChunkHooks {
            cancel: None,
            deadline: None,
            fault: None,
        }
    }

    /// Attaches a fault plan (test-only plumbing, but safe anywhere).
    pub fn with_fault(mut self, fault: &'a FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Whether every hook is absent.
    pub fn is_empty(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.fault.is_none()
    }

    /// Called by the pool before chunk `chunk` of a fallible loop.
    pub fn before_chunk(&self, chunk: usize) -> ChunkAction {
        if let Some(token) = self.cancel {
            if token.is_cancelled() {
                return ChunkAction::Stop(BudgetReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if chunk.is_multiple_of(DEADLINE_CHECK_STRIDE) && Instant::now() >= deadline {
                return ChunkAction::Stop(BudgetReason::DeadlineExpired);
            }
        }
        if let Some(plan) = self.fault {
            match plan.on_chunk(chunk as u64) {
                Some(FaultAction::Panic) => {
                    return ChunkAction::Panic {
                        iteration: plan.iteration(),
                        chunk: chunk as u64,
                    }
                }
                Some(FaultAction::Cancel) => return ChunkAction::Stop(BudgetReason::Cancelled),
                None => {}
            }
        }
        ChunkAction::Run
    }
}

/// Renders a `catch_unwind` payload as a string: `&str` and `String`
/// payloads verbatim, anything else a placeholder.
pub fn panic_payload_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_fires() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        for i in [0, 1, 1_000_000] {
            assert!(b.check_iteration(i).is_ok());
        }
    }

    #[test]
    fn iteration_cap_fires_at_exact_boundary() {
        let b = RunBudget::unlimited().with_max_iterations(3);
        assert!(b.check_iteration(2).is_ok());
        assert_eq!(b.check_iteration(3), Err(BudgetReason::IterationCap));
    }

    #[test]
    fn cancellation_beats_other_reasons() {
        let t = CancelToken::new();
        t.cancel();
        let b = RunBudget::unlimited()
            .with_cancel(t)
            .with_max_iterations(0)
            .with_deadline(Instant::now());
        assert_eq!(b.check_iteration(5), Err(BudgetReason::Cancelled));
    }

    #[test]
    fn expired_deadline_fires() {
        let b = RunBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check_iteration(0), Err(BudgetReason::DeadlineExpired));
    }

    #[test]
    fn chunk_hooks_report_fault_points() {
        let plan = FaultPlan::new().panic_at(2, 7).cancel_at(3, 0);
        let budget = RunBudget::unlimited();
        let hooks = budget.chunk_hooks(Some(&plan));
        assert_eq!(hooks.before_chunk(7), ChunkAction::Run);
        plan.set_iteration(2);
        assert_eq!(
            hooks.before_chunk(7),
            ChunkAction::Panic {
                iteration: 2,
                chunk: 7
            }
        );
        assert_eq!(hooks.before_chunk(6), ChunkAction::Run);
        plan.set_iteration(3);
        assert_eq!(
            hooks.before_chunk(0),
            ChunkAction::Stop(BudgetReason::Cancelled)
        );
    }

    #[test]
    fn deadline_probe_is_amortized() {
        // An expired deadline is only noticed on stride-aligned chunks.
        let b = RunBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        let hooks = b.chunk_hooks(None);
        assert_eq!(
            hooks.before_chunk(0),
            ChunkAction::Stop(BudgetReason::DeadlineExpired)
        );
        assert_eq!(hooks.before_chunk(1), ChunkAction::Run);
        assert_eq!(
            hooks.before_chunk(DEADLINE_CHECK_STRIDE),
            ChunkAction::Stop(BudgetReason::DeadlineExpired)
        );
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 3, 2, 10, 100);
        let b = FaultPlan::seeded(42, 3, 2, 10, 100);
        assert_eq!(a.points, b.points);
        let c = FaultPlan::seeded(43, 3, 2, 10, 100);
        assert_ne!(a.points, c.points);
        assert_eq!(a.points.len(), 5);
    }

    #[test]
    fn request_fault_plans_are_reproducible_and_first_wins() {
        let a = RequestFaultPlan::seeded(42, 100, 5, 4, 3, 2, 8, 64, 500);
        let b = RequestFaultPlan::seeded(42, 100, 5, 4, 3, 2, 8, 64, 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 14);
        let c = RequestFaultPlan::seeded(43, 100, 5, 4, 3, 2, 8, 64, 500);
        assert_ne!(a, c);
        // Every planned fault is findable under its request id, and the
        // first registration for an id wins.
        let dup = RequestFaultPlan::new()
            .fault_at(7, RequestFault::BudgetExhaust)
            .fault_at(7, RequestFault::PoisonLock);
        assert_eq!(dup.for_request(7), Some(RequestFault::BudgetExhaust));
        assert_eq!(dup.for_request(8), None);
        assert!(!dup.is_empty());
    }

    #[test]
    fn request_fault_coordinates_and_names() {
        let p = RequestFault::Panic {
            iteration: 3,
            chunk: 9,
        };
        assert_eq!(p.coordinate(), (3, 9));
        assert_eq!(p.name(), "panic");
        assert_eq!(RequestFault::Delay { micros: 5 }.coordinate(), (0, 0));
        assert_eq!(RequestFault::Delay { micros: 5 }.name(), "delay");
        assert_eq!(RequestFault::BudgetExhaust.name(), "budget-exhaust");
        assert_eq!(RequestFault::PoisonLock.name(), "poison-lock");
    }

    #[test]
    fn error_display_and_kind() {
        let e = ExecError::WorkerPanic {
            payload: "boom".into(),
            chunk: 3,
        };
        assert!(e.to_string().contains("chunk 3"));
        assert_eq!(e.kind(), "worker-panic");
        let e = ExecError::Budget {
            reason: BudgetReason::DeadlineExpired,
            progress: Progress {
                iterations: 4,
                work_trace: vec![1, 2, 3, 4],
            },
        };
        assert!(e.to_string().contains("deadline-expired"));
        assert!(e.to_string().contains("4 iterations"));
        assert_eq!(e.kind(), "deadline-expired");
        let e = ExecError::Diverged {
            iteration: 9,
            detail: "non-finite residual".into(),
        };
        assert!(e.to_string().contains("iteration 9"));
        assert_eq!(e.kind(), "diverged");
        let e = ExecError::InvalidInput {
            detail: "source 9 out of range".into(),
        };
        assert!(e.to_string().contains("invalid input"));
        assert_eq!(e.kind(), "invalid-input");
        let enriched = ExecError::Budget {
            reason: BudgetReason::Cancelled,
            progress: Progress::default(),
        }
        .with_progress(Progress {
            iterations: 7,
            work_trace: vec![7],
        });
        match enriched {
            ExecError::Budget { progress, .. } => assert_eq!(progress.iterations, 7),
            other => panic!("unexpected variant {other:?}"),
        }
    }
}
