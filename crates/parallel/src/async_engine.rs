//! Asynchronous work-queue engine with quiescence-based termination
//! detection.
//!
//! This is the CPU realization of the paper's asynchronous timing model
//! (§III-A) and of the frontier-as-queue communication model (§III-B, citing
//! the Atos GPU scheduler): *"asynchronous programming models have no
//! explicitly defined barriers, and work is performed whenever the required
//! resources are available."*
//!
//! Work items (typically active vertices) live in per-worker sharded deques.
//! A worker pops locally (LIFO for locality), steals round-robin when empty
//! (FIFO from the victim for coarse items), and the whole computation
//! terminates when the `in_flight` count — items queued *or* currently being
//! processed — reaches zero. Handlers push newly activated items through a
//! [`Pusher`], so there is no per-iteration barrier anywhere: an item
//! enqueued by worker A can be processed by worker B while A is still inside
//! the handler that produced it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::exec::{panic_payload_string, ChunkAction, ChunkHooks, ExecError, Progress};
use crate::pool::ThreadPool;

/// Handle through which a handler enqueues newly activated work items.
pub struct Pusher<'a, T> {
    shards: &'a [Mutex<VecDeque<T>>],
    in_flight: &'a AtomicUsize,
    pushes: &'a AtomicUsize,
    /// Worker id, used to prefer the local shard.
    tid: usize,
}

impl<T> Pusher<'_, T> {
    /// Id of the worker this pusher belongs to (for per-thread output
    /// buffers in handlers).
    pub fn worker(&self) -> usize {
        self.tid
    }

    /// Enqueues `item` on the calling worker's shard.
    pub fn push(&self, item: T) {
        // Count the item before it becomes visible so `in_flight == 0`
        // really means quiescent.
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.shards[self.tid].lock().push_back(item);
    }
}

/// Counters describing one asynchronous run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Work items processed (= seeds + pushes).
    pub processed: usize,
    /// Items a worker obtained from another worker's shard.
    pub steals: usize,
    /// Items pushed by handlers (excludes seeds).
    pub pushes: usize,
}

/// Runs `handler` over `seeds` and everything transitively pushed, with no
/// barriers, until global quiescence. Returns work statistics.
///
/// `handler(item, pusher)` may push any number of new items. Items are
/// processed in no particular order and possibly concurrently; handlers must
/// tolerate reordering (idempotent relaxations, monotone updates — exactly
/// the algorithms the asynchronous timing model suits).
///
/// ```
/// use essentials_parallel::{run_async, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let visited = AtomicUsize::new(0);
/// // Expand a tree: every item < 100 pushes two children.
/// let stats = run_async(&pool, vec![1usize], |item, pusher| {
///     visited.fetch_add(1, Ordering::Relaxed);
///     if item < 100 {
///         pusher.push(item * 2);
///         pusher.push(item * 2 + 1);
///     }
/// });
/// assert_eq!(stats.processed, visited.into_inner());
/// ```
pub fn run_async<T, F>(pool: &ThreadPool, seeds: Vec<T>, handler: F) -> AsyncStats
where
    T: Send,
    F: Fn(T, &Pusher<'_, T>) + Sync,
{
    match try_run_async(pool, seeds, ChunkHooks::none(), handler) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`run_async`]: a panic in `handler` is captured at item
/// granularity (every other worker drains or exits cleanly — the old
/// behavior left quiescence unreachable) and `hooks` are consulted once per
/// item a worker processes, so budgeted runs stop cooperatively. The
/// "chunk" coordinate handed to the hooks is the worker-local item
/// ordinal — deterministic only on a single-thread pool.
pub fn try_run_async<T, F>(
    pool: &ThreadPool,
    seeds: Vec<T>,
    hooks: ChunkHooks<'_>,
    handler: F,
) -> Result<AsyncStats, ExecError>
where
    T: Send,
    F: Fn(T, &Pusher<'_, T>) + Sync,
{
    let n = pool.num_threads();
    let mut shards: Vec<Mutex<VecDeque<T>>> = (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    let in_flight = AtomicUsize::new(seeds.len());
    let processed = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let pushes = AtomicUsize::new(0);
    // First failure wins; `poisoned` is the advisory fast-exit flag sibling
    // workers poll (Relaxed: the error itself travels through the mutex and
    // the region join).
    let failure: Mutex<Option<ExecError>> = Mutex::new(None);
    let poisoned = AtomicBool::new(false);
    let record = |e: ExecError| {
        let mut slot = failure.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        poisoned.store(true, Ordering::Relaxed);
    };

    for (i, seed) in seeds.into_iter().enumerate() {
        shards[i % n].get_mut().push_back(seed);
    }
    if in_flight.load(Ordering::Relaxed) == 0 {
        return Ok(AsyncStats::default());
    }

    pool.try_run(|tid| {
        let pusher = Pusher {
            shards: &shards,
            in_flight: &in_flight,
            pushes: &pushes,
            tid,
        };
        let mut ordinal = 0usize;
        loop {
            if poisoned.load(Ordering::Relaxed) {
                break;
            }
            match hooks.before_chunk(ordinal) {
                ChunkAction::Run => {}
                ChunkAction::Stop(reason) => {
                    record(ExecError::Budget {
                        reason,
                        progress: Progress::default(),
                    });
                    break;
                }
                ChunkAction::Panic { iteration, chunk } => {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        panic!("injected fault at (iteration {iteration}, chunk {chunk})");
                    }));
                    if let Err(payload) = result {
                        record(ExecError::WorkerPanic {
                            payload: panic_payload_string(&*payload),
                            chunk: ordinal,
                        });
                    }
                    break;
                }
            }
            ordinal += 1;
            // 1. Local pop (LIFO: depth-first locality).
            let mut item = shards[tid].lock().pop_back();
            // 2. Steal round-robin (FIFO from the victim).
            if item.is_none() {
                for k in 1..n {
                    let victim = (tid + k) % n;
                    if let Some(stolen) = shards[victim].lock().pop_front() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        item = Some(stolen);
                        break;
                    }
                }
            }
            match item {
                Some(item) => {
                    let result = catch_unwind(AssertUnwindSafe(|| handler(item, &pusher)));
                    processed.fetch_add(1, Ordering::Relaxed);
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    if let Err(payload) = result {
                        record(ExecError::WorkerPanic {
                            payload: panic_payload_string(&*payload),
                            chunk: ordinal - 1,
                        });
                        break;
                    }
                }
                None => {
                    // Quiescent only when nothing is queued anywhere *and*
                    // no handler is still running (it might push).
                    if in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    })?;

    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    Ok(AsyncStats {
        processed: processed.into_inner(),
        steals: steals.into_inner(),
        pushes: pushes.into_inner(),
    })
}

/// Sequential reference semantics for the engine: same contract as
/// [`run_async`] on the calling thread with a plain FIFO queue. Used by the
/// `Seq` execution policy and as the test oracle.
pub fn run_async_seq<T, F>(seeds: Vec<T>, handler: F) -> AsyncStats
where
    F: Fn(T, &Pusher<'_, T>),
{
    let shards = [Mutex::new(VecDeque::from(seeds))];
    let in_flight = AtomicUsize::new(shards[0].lock().len());
    let pushes = AtomicUsize::new(0);
    let mut processed = 0;
    let pusher = Pusher {
        shards: &shards,
        in_flight: &in_flight,
        pushes: &pushes,
        tid: 0,
    };
    while let Some(item) = {
        let next = shards[0].lock().pop_front();
        next
    } {
        handler(item, &pusher);
        processed += 1;
        in_flight.fetch_sub(1, Ordering::Relaxed);
    }
    AsyncStats {
        processed,
        steals: 0,
        pushes: pushes.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::AtomicBitset;

    #[test]
    fn empty_seed_list_terminates_immediately() {
        let pool = ThreadPool::new(2);
        let stats = run_async(&pool, Vec::<u32>::new(), |_, _| {});
        assert_eq!(stats, AsyncStats::default());
    }

    #[test]
    fn processes_all_transitively_pushed_items() {
        let pool = ThreadPool::new(4);
        // Claim-once expansion over a synthetic 2^k item space.
        let claimed = AtomicBitset::new(1 << 12);
        let stats = run_async(&pool, vec![1usize], |item, pusher| {
            for child in [2 * item, 2 * item + 1] {
                if child < (1 << 12) && claimed.set(child) {
                    pusher.push(child);
                }
            }
        });
        // Every index in [2, 2^12) is claimed exactly once, plus seed 1.
        assert_eq!(stats.processed, (1 << 12) - 2 + 1);
        assert_eq!(stats.processed, stats.pushes + 1);
    }

    #[test]
    fn seq_engine_matches_parallel_engine_work() {
        let pool = ThreadPool::new(3);
        let run = |par: bool| {
            let claimed = AtomicBitset::new(4096);
            let handler = |item: usize, pusher: &Pusher<'_, usize>| {
                for child in [3 * item + 1, 3 * item + 2] {
                    if child < 4096 && claimed.set(child) {
                        pusher.push(child);
                    }
                }
            };
            if par {
                run_async(&pool, vec![0usize], handler).processed
            } else {
                run_async_seq(vec![0usize], handler).processed
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn panicking_handler_terminates_engine_with_typed_error() {
        use crate::exec::CancelToken;
        let pool = ThreadPool::new(4);
        let err = try_run_async(
            &pool,
            (0..256usize).collect(),
            ChunkHooks::none(),
            |item, _| {
                if item == 100 {
                    panic!("handler down at {item}");
                }
            },
        )
        .unwrap_err();
        match &err {
            ExecError::WorkerPanic { payload, .. } => {
                assert!(
                    payload.contains("handler down at 100"),
                    "payload: {payload}"
                );
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The pool survives and the engine runs again cleanly.
        let stats = run_async(&pool, vec![1usize, 2, 3], |_, _| {});
        assert_eq!(stats.processed, 3);

        // Cooperative cancellation stops the drain without a panic.
        let token = CancelToken::new();
        token.cancel();
        let budget = crate::exec::RunBudget::unlimited().with_cancel(token);
        let err =
            try_run_async(&pool, vec![1usize], budget.chunk_hooks(None), |_, _| {}).unwrap_err();
        assert!(matches!(err, ExecError::Budget { .. }));
    }

    #[test]
    fn items_pushed_by_one_worker_reach_others() {
        // With >1 workers and a single seed chain, steals should occur when
        // fan-out exceeds one... at minimum the run must terminate and count.
        let pool = ThreadPool::new(4);
        let stats = run_async(&pool, (0..64usize).collect(), |item, pusher| {
            if item < 32 {
                pusher.push(item + 1000);
            }
        });
        assert_eq!(stats.processed, 64 + 32);
        assert_eq!(stats.pushes, 32);
    }
}
