//! `essentials-parallel` — the CPU execution substrate for essentials-rs.
//!
//! The paper's abstraction ("Essentials of Parallel Graph Analytics",
//! §III-A) requires operators whose *semantics stay fixed while the
//! execution changes*, selected by execution-policy types. GPUs being out of
//! scope for this reproduction (see DESIGN.md), this crate provides the
//! CPU-parallel machinery those policies dispatch to:
//!
//! * [`pool::ThreadPool`] — persistent workers executing OpenMP-style
//!   *parallel regions*; the bulk-synchronous substrate.
//! * [`schedule::Schedule`] — static / dynamic / guided loop scheduling,
//!   the load-balancing knob of §IV-C.
//! * [`scan`] — parallel exclusive prefix sum; degree offsets for the
//!   edge-balanced work division.
//! * [`barrier::SpinBarrier`] — sense-reversing barrier for supersteps.
//! * [`scope`] — structured fork-join task spawning.
//! * [`async_engine`] — a work-queue engine with quiescence-based
//!   termination detection; the asynchronous substrate (the CPU equivalent
//!   of the Atos-style GPU queue the paper cites).
//! * [`atomics`] — atomic float min/add and an atomic bitset, the
//!   shared-memory communication primitives used by frontiers and
//!   vertex programs (Listing 4's `atomic::min`).
//! * [`policy`] — the `ExecutionPolicy` marker types (`seq`, `par`,
//!   `par_nosync`) mirroring the paper's C++ `execution::` namespace.
//! * [`exec`] — typed execution errors, cooperative run budgets
//!   (cancellation, deadlines, iteration caps), and deterministic fault
//!   injection; the vocabulary of the resilient execution layer.

#![warn(missing_docs)]

pub mod affinity;
pub mod async_engine;
pub mod atomics;
pub mod barrier;
pub mod exec;
pub mod placement;
pub mod policy;
pub mod pool;
pub mod scan;
pub mod schedule;
pub mod scope;

pub use affinity::pin_current_thread;
pub use async_engine::{run_async, run_async_seq, try_run_async, AsyncStats, Pusher};
pub use barrier::SpinBarrier;
pub use exec::{
    panic_payload_string, BudgetReason, CancelToken, ChunkAction, ChunkHooks, ExecError, FaultPlan,
    Progress, RequestFault, RequestFaultPlan, RunBudget,
};
pub use placement::Placement;
pub use policy::{execution, ExecutionPolicy, Par, ParNosync, Seq};
pub use pool::ThreadPool;
pub use scan::{parallel_scan, parallel_scan_with, serial_scan};
pub use schedule::Schedule;
pub use scope::Scope;
