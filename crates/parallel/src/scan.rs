//! Parallel exclusive prefix sum (scan).
//!
//! The edge-balanced load balancer (§IV-C) numbers the frontier's edges with
//! a prefix sum over per-vertex degrees; on large frontiers that serial scan
//! is itself a parallelism bottleneck. This module provides the classic
//! two-pass chunked scan: workers scan disjoint chunks locally, a serial
//! scan over the (≤ #workers) chunk totals produces per-chunk offsets, and a
//! second pass shifts each chunk into place. Both passes write disjoint
//! ranges, so the only synchronization is the two region barriers.
//!
//! The `_with` variant takes caller-owned output and chunk-sum buffers so a
//! steady-state caller (the frontier pipeline's reusable scratch) performs
//! no heap allocation.

use std::ops::Range;

use crate::pool::ThreadPool;

/// Below this element count the serial scan wins (two barriers cost more
/// than the memory pass they save).
const SEQUENTIAL_CUTOFF: usize = 8 * 1024;

/// Shares a mutable slice across pool workers writing disjoint ranges.
struct DisjointWrites<'a, T>(*mut T, std::marker::PhantomData<&'a mut [T]>);

// SAFETY: callers hand each worker a non-overlapping index range (asserted
// by construction in the passes below), so concurrent writes never alias.
unsafe impl<T: Send> Sync for DisjointWrites<'_, T> {}

impl<'a, T> DisjointWrites<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        DisjointWrites(slice.as_mut_ptr(), std::marker::PhantomData)
    }

    /// # Safety
    ///
    /// `i` must be in bounds of the original slice and not written
    /// concurrently by another worker.
    #[inline]
    unsafe fn write(&self, i: usize, v: T) {
        // SAFETY: caller upholds the `# Safety` contract above (in-bounds,
        // unaliased write).
        unsafe { self.0.add(i).write(v) };
    }

    /// # Safety
    ///
    /// `i` must be in bounds and not written concurrently.
    #[inline]
    unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        // SAFETY: caller upholds the `# Safety` contract above (in-bounds,
        // no concurrent writer).
        unsafe { self.0.add(i).read() }
    }
}

/// The contiguous chunk of `0..n` owned by worker `tid` out of `workers`.
#[inline]
fn chunk_of(n: usize, workers: usize, tid: usize) -> Range<usize> {
    let chunk = n.div_ceil(workers);
    let lo = (tid * chunk).min(n);
    let hi = ((tid + 1) * chunk).min(n);
    lo..hi
}

/// Exclusive prefix sum of `value(0), …, value(n-1)` into `out`, reusing
/// caller-owned buffers.
///
/// On return `out` has length `n + 1` with `out[i] = Σ value(j) for j < i`
/// and `out[n]` the grand total (also the return value). `chunk_sums` is
/// scratch for the per-worker totals; both buffers are grown on demand and
/// never shrunk, so repeated calls at steady state allocate nothing.
///
/// `value` is evaluated exactly once per index.
pub fn parallel_scan_with<F>(
    pool: &ThreadPool,
    n: usize,
    value: F,
    out: &mut Vec<usize>,
    chunk_sums: &mut Vec<usize>,
) -> usize
where
    F: Fn(usize) -> usize + Sync,
{
    out.resize(n + 1, 0);
    let workers = pool.num_threads();
    if workers == 1 || n < SEQUENTIAL_CUTOFF {
        let mut acc = 0usize;
        for (i, slot) in out.iter_mut().enumerate().take(n) {
            *slot = acc;
            acc += value(i);
        }
        out[n] = acc;
        return acc;
    }

    chunk_sums.resize(workers, 0);
    // Pass 1: each worker writes the local exclusive scan of its chunk into
    // `out` and its chunk total into `chunk_sums`.
    {
        let out_w = DisjointWrites::new(&mut out[..n]);
        let sums_w = DisjointWrites::new(chunk_sums.as_mut_slice());
        pool.run(|tid| {
            let mut acc = 0usize;
            for i in chunk_of(n, workers, tid) {
                // SAFETY: chunks are disjoint per tid; sums slot is tid's own.
                unsafe { out_w.write(i, acc) };
                acc += value(i);
            }
            // SAFETY: slot `tid` of `chunk_sums` is owned by this worker.
            unsafe { sums_w.write(tid, acc) };
        });
    }
    // Serial exclusive scan over the ≤ #workers chunk totals.
    let mut total = 0usize;
    for s in chunk_sums.iter_mut() {
        let c = *s;
        *s = total;
        total += c;
    }
    // Pass 2: shift each chunk by its offset.
    {
        let out_w = DisjointWrites::new(&mut out[..n]);
        let sums = &*chunk_sums;
        pool.run(|tid| {
            let base = sums[tid];
            if base != 0 {
                for i in chunk_of(n, workers, tid) {
                    // SAFETY: same disjoint chunk as pass 1.
                    unsafe { out_w.write(i, out_w.read(i) + base) };
                }
            }
        });
    }
    out[n] = total;
    total
}

/// Exclusive prefix sum of a slice into `out` (see [`parallel_scan_with`]).
/// Allocates its own chunk-sum scratch; use the `_with` variant on hot paths.
pub fn parallel_scan(pool: &ThreadPool, values: &[usize], out: &mut Vec<usize>) -> usize {
    let mut chunk_sums = Vec::new(); // alloc-ok: convenience wrapper; hot callers use the _with variant
    parallel_scan_with(pool, values.len(), |i| values[i], out, &mut chunk_sums)
}

/// Serial exclusive prefix sum — the reference implementation the parallel
/// scan is verified and benchmarked against.
pub fn serial_scan(values: &[usize], out: &mut Vec<usize>) -> usize {
    out.clear();
    out.reserve(values.len() + 1);
    let mut acc = 0usize;
    for &v in values {
        out.push(acc); // alloc-ok: reserved above; serial reference implementation
        acc += v;
    }
    out.push(acc); // alloc-ok: reserved above
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pool: &ThreadPool, values: &[usize]) {
        let mut want = Vec::new();
        let want_total = serial_scan(values, &mut want);
        let mut got = Vec::new();
        let total = parallel_scan(pool, values, &mut got);
        assert_eq!(got, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn matches_serial_on_edge_shapes() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            check(&pool, &[]);
            check(&pool, &[7]);
            check(&pool, &[0, 0, 0]);
            let ramp: Vec<usize> = (0..100_003).map(|i| i % 17).collect();
            check(&pool, &ramp);
        }
    }

    #[test]
    fn million_element_scan() {
        let pool = ThreadPool::new(8);
        let values: Vec<usize> = (0..1_500_000).map(|i| (i * 31) % 5).collect();
        check(&pool, &values);
    }

    #[test]
    fn with_variant_reuses_buffers_and_counts_evaluations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(4);
        let mut out = Vec::new();
        let mut sums = Vec::new();
        let n = 50_000;
        let evals = AtomicUsize::new(0);
        let total = parallel_scan_with(
            &pool,
            n,
            |i| {
                evals.fetch_add(1, Ordering::Relaxed);
                i % 3
            },
            &mut out,
            &mut sums,
        );
        assert_eq!(evals.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n + 1);
        assert_eq!(total, (0..n).map(|i| i % 3).sum::<usize>());
        // Second run with the same shape must not need more capacity.
        let cap_out = out.capacity();
        let cap_sums = sums.capacity();
        parallel_scan_with(&pool, n, |i| i % 3, &mut out, &mut sums);
        assert_eq!(out.capacity(), cap_out);
        assert_eq!(sums.capacity(), cap_sums);
    }
}
