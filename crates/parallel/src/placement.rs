//! Placement maps: which worker "owns" which slice of an iteration space.
//!
//! The memory-locality engine (DESIGN.md §12) needs one shared answer to
//! "where does a vertex's data live?": the partitioner derives worker
//! segments from graph structure, the pool's dynamic scheduler prefers a
//! worker's own segment before stealing, and the blocked-gather operators
//! size their destination bins against the same boundaries. A
//! [`Placement`] is that answer — a monotone list of segment boundaries
//! over `0..len`, one contiguous segment per worker.
//!
//! Placements describe *preference*, never correctness: every scheduler
//! that consumes one still visits the whole iteration space, and chunk
//! numbering stays identical to the placement-free schedule (fault-plan
//! coordinates and determinism arguments are unaffected).

use std::ops::Range;

/// A contiguous assignment of an iteration space to workers.
///
/// `starts` has `workers + 1` entries with `starts[0] == 0`,
/// `starts[workers] == len`, and `starts[w] <= starts[w + 1]`; worker `w`
/// owns `starts[w]..starts[w + 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    starts: Vec<usize>,
}

impl Placement {
    /// An even split of `0..len` into `workers` contiguous segments.
    pub fn even(len: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let chunk = len.div_ceil(workers.max(1)).max(1);
        let starts = (0..=workers).map(|w| (w * chunk).min(len)).collect();
        Placement { starts }
    }

    /// Wraps explicit segment boundaries (`workers + 1` monotone values
    /// starting at 0). The last boundary is the space's length.
    ///
    /// # Panics
    ///
    /// Panics when the boundary list is empty, does not start at 0, or is
    /// not monotone non-decreasing.
    pub fn from_boundaries(starts: Vec<usize>) -> Self {
        assert!(starts.len() >= 2, "placement needs at least one segment");
        assert_eq!(starts[0], 0, "placement must start at 0");
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "placement boundaries must be monotone"
        );
        Placement { starts }
    }

    /// Number of worker segments.
    #[inline]
    pub fn workers(&self) -> usize {
        self.starts.len() - 1
    }

    /// Length of the iteration space this placement divides.
    #[inline]
    pub fn len(&self) -> usize {
        *self.starts.last().unwrap_or(&0)
    }

    /// True when the placement covers an empty space.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worker `w`'s segment of the original space.
    #[inline]
    pub fn segment(&self, w: usize) -> Range<usize> {
        self.starts[w]..self.starts[w + 1]
    }

    /// Worker `w`'s segment rescaled onto a space of `n` items (chunk ids,
    /// bitmap words, …) covering the same data proportionally. Boundaries
    /// are `floor(start * n / len)`, so rescaled segments stay monotone,
    /// disjoint, and jointly cover `0..n` exactly.
    pub fn scaled_segment(&self, w: usize, n: usize) -> Range<usize> {
        let len = self.len();
        if len == 0 {
            return if w == 0 { 0..n } else { 0..0 };
        }
        let scale = |b: usize| ((b as u128 * n as u128) / len as u128) as usize;
        scale(self.starts[w])..scale(self.starts[w + 1])
    }

    /// The worker whose segment contains `i` (the last worker for
    /// out-of-range `i`).
    pub fn owner(&self, i: usize) -> usize {
        // The owner is the first worker whose segment end exceeds `i`;
        // equivalently, the count of segment ends at or below `i`.
        let w = self.starts[1..].partition_point(|&end| end <= i);
        w.min(self.workers() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_space() {
        let p = Placement::even(10, 3);
        assert_eq!(p.workers(), 3);
        assert_eq!(p.len(), 10);
        let total: usize = (0..3).map(|w| p.segment(w).len()).sum();
        assert_eq!(total, 10);
        assert_eq!(p.segment(0).start, 0);
        assert_eq!(p.segment(2).end, 10);
    }

    #[test]
    fn scaled_segments_partition_target_space() {
        let p = Placement::from_boundaries(vec![0, 5, 5, 30]);
        let n = 17;
        let mut covered = 0;
        for w in 0..p.workers() {
            let s = p.scaled_segment(w, n);
            assert_eq!(s.start, covered);
            covered = s.end;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn owner_matches_segments() {
        let p = Placement::from_boundaries(vec![0, 4, 4, 9]);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 0);
        assert_eq!(p.owner(4), 2);
        assert_eq!(p.owner(8), 2);
        assert_eq!(p.owner(100), 2);
    }

    #[test]
    fn empty_space_scales_to_one_segment() {
        let p = Placement::even(0, 4);
        assert_eq!(p.scaled_segment(0, 8), 0..8);
        assert_eq!(p.scaled_segment(1, 8), 0..0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_non_monotone_boundaries() {
        Placement::from_boundaries(vec![0, 5, 3]);
    }
}
