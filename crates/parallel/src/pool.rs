//! A thread pool of persistent workers executing *parallel regions*.
//!
//! A region is a closure invoked once on every worker (OpenMP's
//! `#pragma omp parallel`). Data-parallel loops ([`ThreadPool::parallel_for`])
//! and reductions are built on top by handing each worker a slice of the
//! iteration space according to a [`Schedule`].
//!
//! Workers park on a condition variable between regions, so an idle pool
//! costs nothing. The caller of [`ThreadPool::run`] blocks until every
//! worker has finished the region — this is the guarantee that makes the
//! internal lifetime erasure sound (the region closure may borrow the
//! caller's stack).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::schedule::Schedule;

/// A region closure as seen by the workers: called with the worker id.
type RegionFn = dyn Fn(usize) + Sync;

/// State shared between the pool handle and its workers.
struct Shared {
    slot: Mutex<RegionSlot>,
    /// Workers wait here for a new region (or shutdown).
    work_cv: Condvar,
    /// The caller of `run` waits here for region completion.
    done_cv: Condvar,
}

struct RegionSlot {
    /// Bumped once per region; workers use it to detect new work.
    epoch: u64,
    /// The current region, lifetime-erased. Only valid while `remaining > 0`
    /// for the matching epoch; `run` keeps the real closure alive until then.
    job: Option<&'static RegionFn>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    shutdown: bool,
}

/// A pool of persistent worker threads executing parallel regions.
///
/// ```
/// use essentials_parallel::{Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.parallel_for(0..1000, Schedule::default(), |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 499_500);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    num_threads: usize,
    /// Serializes regions: one region at a time per pool.
    region_guard: Mutex<()>,
}

thread_local! {
    /// True while the current thread is executing inside a region of some
    /// pool. Used to reject (unsupported) nested regions early.
    static IN_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers (minimum 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(RegionSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..num_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("essentials-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            num_threads,
            region_guard: Mutex::new(()),
        }
    }

    /// A process-wide pool sized to the available hardware parallelism.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ThreadPool::new(n)
        })
    }

    /// Number of workers in the pool.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Executes `f(worker_id)` once on every worker, blocking until all
    /// workers finish. This is the primitive every parallel operator in the
    /// framework lowers to.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a region (nested regions would deadlock
    /// the fixed-size pool, so they are rejected). Panics in `f` abort the
    /// process (workers have no unwind recovery) — operator bodies are
    /// expected not to panic.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        assert!(
            !IN_REGION.with(|c| c.get()),
            "nested parallel regions are not supported"
        );
        let _serial = self.region_guard.lock();

        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref` to store it in the shared
        // slot. The reference is only dereferenced by workers between the
        // epoch bump below and the `remaining == 0` wakeup, and this function
        // does not return (keeping `f` alive) until `remaining == 0`.
        let job: &'static RegionFn = unsafe { std::mem::transmute(f_ref) };

        let mut slot = self.shared.slot.lock();
        slot.epoch += 1;
        slot.job = Some(job);
        slot.remaining = self.num_threads;
        self.shared.work_cv.notify_all();
        while slot.remaining > 0 {
            self.shared.done_cv.wait(&mut slot);
        }
        slot.job = None;
    }

    /// Data-parallel loop over `range` with the given [`Schedule`].
    ///
    /// Falls back to a plain sequential loop when the pool has one worker or
    /// the range is too small to be worth distributing.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_with(range, schedule, |_tid, i| f(i));
    }

    /// Like [`ThreadPool::parallel_for`], but the closure also receives the
    /// worker id executing the index — the hook for per-thread output
    /// buffers (frontier collectors) without a shared lock. Sequential
    /// fallbacks report worker id 0.
    pub fn parallel_for_with<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        if self.num_threads == 1 || len < schedule.sequential_cutoff() {
            for i in range {
                f(0, i);
            }
            return;
        }
        let n = self.num_threads;
        match schedule {
            Schedule::Static => {
                let chunk = len.div_ceil(n);
                self.run(|tid| {
                    let lo = range.start + tid * chunk;
                    let hi = (lo + chunk).min(range.end);
                    for i in lo..hi.max(lo) {
                        f(tid, i);
                    }
                });
            }
            Schedule::Dynamic(grain) => {
                let grain = grain.max(1);
                let next = AtomicUsize::new(range.start);
                self.run(|tid| loop {
                    let lo = next.fetch_add(grain, Ordering::Relaxed);
                    if lo >= range.end {
                        break;
                    }
                    let hi = (lo + grain).min(range.end);
                    for i in lo..hi {
                        f(tid, i);
                    }
                });
            }
            Schedule::Guided(min_grain) => {
                let min_grain = min_grain.max(1);
                let next = AtomicUsize::new(range.start);
                self.run(|tid| loop {
                    let mut lo = next.load(Ordering::Relaxed);
                    let hi = loop {
                        if lo >= range.end {
                            return;
                        }
                        let remaining = range.end - lo;
                        let chunk = (remaining / (2 * n)).max(min_grain);
                        let hi = (lo + chunk).min(range.end);
                        match next.compare_exchange_weak(
                            lo,
                            hi,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break hi,
                            Err(seen) => lo = seen,
                        }
                    };
                    for i in lo..hi {
                        f(tid, i);
                    }
                });
            }
        }
    }

    /// Parallel reduction: maps every index through `map`, combining results
    /// with `combine` starting from `identity` (which must be a true
    /// identity for `combine`, and `combine` associative, for deterministic
    /// totals up to reordering).
    pub fn parallel_reduce<T, M, C>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        map: M,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        if self.num_threads == 1 || len < schedule.sequential_cutoff() {
            let mut acc = identity;
            for i in range {
                acc = combine(acc, map(i));
            }
            return acc;
        }
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(self.num_threads));
        {
            let identity = &identity;
            let map = &map;
            let combine = &combine;
            let next = AtomicUsize::new(range.start);
            let grain = schedule.grain_hint(len, self.num_threads);
            self.run(|_| {
                let mut local = identity.clone();
                let mut did_work = false;
                loop {
                    let lo = next.fetch_add(grain, Ordering::Relaxed);
                    if lo >= range.end {
                        break;
                    }
                    did_work = true;
                    let hi = (lo + grain).min(range.end);
                    for i in lo..hi {
                        local = combine(local, map(i));
                    }
                }
                if did_work {
                    partials.lock().push(local);
                }
            });
        }
        partials.into_inner().into_iter().fold(identity, combine)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.expect("region epoch bumped without a job");
                }
                shared.work_cv.wait(&mut slot);
            }
        };
        IN_REGION.with(|c| c.set(true));
        job(tid);
        IN_REGION.with(|c| c.set(false));
        let mut slot = shared.slot.lock();
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_visits_every_worker_exactly_once() {
        let pool = ThreadPool::new(4);
        let visits = [0u8; 4].map(|_| AtomicUsize::new(0));
        pool.run(|tid| {
            visits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for v in &visits {
            assert_eq!(v.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn parallel_for_covers_range_once_for_all_schedules() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic(1),
            Schedule::Dynamic(7),
            Schedule::Guided(1),
            Schedule::Guided(16),
        ] {
            let n = 10_001;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(0..n, schedule, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "schedule {schedule:?} missed or duplicated indices"
            );
        }
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(5..5, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_reduce_sums_correctly() {
        let pool = ThreadPool::new(4);
        let total = pool.parallel_reduce(
            0..100_000,
            Schedule::Dynamic(1024),
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn parallel_reduce_empty_returns_identity() {
        let pool = ThreadPool::new(2);
        let r = pool.parallel_reduce(3..3, Schedule::Static, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn single_thread_pool_runs_inline_results() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..100, Schedule::Static, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn pool_drop_joins_workers() {
        // Must not hang.
        let pool = ThreadPool::new(4);
        pool.run(|_| {});
        drop(pool);
    }

    #[test]
    fn concurrent_runs_from_many_threads_serialize() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let count = std::sync::Arc::clone(&count);
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    pool.run(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), 4 * 25 * 2);
    }
}
