//! A thread pool of persistent workers executing *parallel regions*.
//!
//! A region is a closure invoked once on every worker (OpenMP's
//! `#pragma omp parallel`). Data-parallel loops ([`ThreadPool::parallel_for`])
//! and reductions are built on top by handing each worker a slice of the
//! iteration space according to a [`Schedule`].
//!
//! Workers park on a condition variable between regions, so an idle pool
//! costs nothing. The caller of [`ThreadPool::run`] blocks until every
//! worker has finished the region — this is the guarantee that makes the
//! internal lifetime erasure sound (the region closure may borrow the
//! caller's stack).
//!
//! Panics are *captured, not fatal*: workers run region closures under
//! `catch_unwind`, the fallible loops additionally catch per chunk so a
//! panicking chunk drains the rest of the iteration space, and the first
//! panic surfaces to the caller as [`ExecError::WorkerPanic`] (or a caller
//! panic through the infallible wrappers). The pool itself stays usable
//! afterwards.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::exec::{
    panic_payload_string, BudgetReason, ChunkAction, ChunkHooks, ExecError, Progress,
};
use crate::placement::Placement;
use crate::schedule::Schedule;

/// A region closure as seen by the workers: called with the worker id.
type RegionFn = dyn Fn(usize) + Sync;

/// Most workers a segmented dynamic loop will track with per-worker claim
/// cursors; larger pools fall back to the shared-counter schedule. The
/// cursor array lives on the caller's stack (zero allocations on the hot
/// path), so this also bounds that frame.
const MAX_SEGMENTS: usize = 32;

/// One per-worker claim cursor, padded to a cache line so local claims
/// never false-share with a neighbor's.
#[repr(align(64))]
struct PaddedCursor(AtomicUsize);

/// State shared between the pool handle and its workers.
struct Shared {
    slot: Mutex<RegionSlot>,
    /// Workers wait here for a new region (or shutdown).
    work_cv: Condvar,
    /// The caller of `run` waits here for region completion.
    done_cv: Condvar,
}

struct RegionSlot {
    /// Bumped once per region; workers use it to detect new work.
    epoch: u64,
    /// The current region, lifetime-erased. Only valid while `remaining > 0`
    /// for the matching epoch; `run` keeps the real closure alive until then.
    job: Option<&'static RegionFn>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    /// First panic that escaped a region closure this epoch: stringified
    /// payload + worker id. Taken by `try_run` after the region completes.
    panic: Option<(String, usize)>,
    shutdown: bool,
}

/// A pool of persistent worker threads executing parallel regions.
///
/// ```
/// use essentials_parallel::{Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.parallel_for(0..1000, Schedule::default(), |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 499_500);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    num_threads: usize,
    /// Serializes regions: one region at a time per pool.
    region_guard: Mutex<()>,
    /// Optional locality hint consumed by `Schedule::Dynamic` loops: each
    /// worker drains its own segment of the chunk space before stealing.
    placement: Mutex<Option<Arc<Placement>>>,
}

thread_local! {
    /// True while the current thread is executing inside a region of some
    /// pool. Used to reject (unsupported) nested regions early.
    static IN_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers (minimum 1). Workers are
    /// additionally pinned to cores when `ESSENTIALS_PIN=1` is set.
    pub fn new(num_threads: usize) -> Self {
        let pin = std::env::var("ESSENTIALS_PIN")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        Self::with_options(num_threads, pin)
    }

    /// Creates a pool whose workers are pinned to cores (worker `tid` →
    /// core `tid mod hardware_parallelism`, best effort). Stable worker
    /// ids then correspond to stable cache domains, which is what the
    /// placement-aware schedule assumes (DESIGN.md §12).
    pub fn new_pinned(num_threads: usize) -> Self {
        Self::with_options(num_threads, true)
    }

    fn with_options(num_threads: usize, pin: bool) -> Self {
        let num_threads = num_threads.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(RegionSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..num_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("essentials-worker-{tid}"))
                    .spawn(move || {
                        if pin {
                            // Best effort: a refused mask (cpuset limits,
                            // non-Linux host) leaves the worker unpinned.
                            let _ = crate::affinity::pin_current_thread(tid % cores);
                        }
                        worker_loop(&shared, tid)
                    })
                    .expect("failed to spawn pool worker") // unwrap-ok: startup resource failure, no run to fail
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            num_threads,
            region_guard: Mutex::new(()),
            placement: Mutex::new(None),
        }
    }

    /// Installs (or clears) the locality hint consumed by dynamic loops.
    /// The placement's segments are rescaled onto each loop's chunk space;
    /// a placement whose worker count differs from the pool's is ignored.
    pub fn set_placement(&self, placement: Option<Arc<Placement>>) {
        *self.placement.lock() = placement;
    }

    /// The currently installed locality hint, if any.
    pub fn placement(&self) -> Option<Arc<Placement>> {
        self.placement.lock().clone()
    }

    /// A process-wide pool sized to the available hardware parallelism.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ThreadPool::new(n)
        })
    }

    /// Number of workers in the pool.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Executes `f(worker_id)` once on every worker, blocking until all
    /// workers finish. This is the primitive every parallel operator in the
    /// framework lowers to.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a region (nested regions would deadlock
    /// the fixed-size pool, so they are rejected). A panic in `f` does
    /// *not* abort the process: the worker captures it with
    /// `catch_unwind`, every other worker still runs the region to
    /// completion, and the first panic is re-raised on the calling thread
    /// with its payload. Use [`ThreadPool::try_run`] to receive it as a
    /// typed [`ExecError::WorkerPanic`] instead.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if let Err(e) = self.try_run(f) {
            panic!("{e}");
        }
    }

    /// Fallible form of [`ThreadPool::run`]: a panic in `f` is captured and
    /// returned as [`ExecError::WorkerPanic`] (with `chunk` = worker id)
    /// after all workers have finished the region. The pool remains usable.
    pub fn try_run<F>(&self, f: F) -> Result<(), ExecError>
    where
        F: Fn(usize) + Sync,
    {
        assert!(
            !IN_REGION.with(|c| c.get()),
            "nested parallel regions are not supported"
        );
        let _serial = self.region_guard.lock();

        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref` to store it in the shared
        // slot. The reference is only dereferenced by workers between the
        // epoch bump below and the `remaining == 0` wakeup, and this function
        // does not return (keeping `f` alive) until `remaining == 0` — the
        // per-worker `catch_unwind` guarantees every worker reaches its
        // decrement even when `f` panics.
        let job: &'static RegionFn = unsafe { std::mem::transmute(f_ref) };

        let mut slot = self.shared.slot.lock();
        slot.epoch += 1;
        slot.job = Some(job);
        slot.remaining = self.num_threads;
        self.shared.work_cv.notify_all();
        while slot.remaining > 0 {
            self.shared.done_cv.wait(&mut slot);
        }
        slot.job = None;
        match slot.panic.take() {
            Some((payload, worker)) => Err(ExecError::WorkerPanic {
                payload,
                chunk: worker,
            }),
            None => Ok(()),
        }
    }

    /// Data-parallel loop over `range` with the given [`Schedule`].
    ///
    /// Falls back to a plain sequential loop when the pool has one worker or
    /// the range is too small to be worth distributing. A panic in `f` is
    /// captured at chunk granularity — every other chunk still runs exactly
    /// once — and re-raised on the calling thread; use
    /// [`ThreadPool::try_parallel_for`] for a typed error instead.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_with(range, schedule, |_tid, i| f(i));
    }

    /// Like [`ThreadPool::parallel_for`], but the closure also receives the
    /// worker id executing the index — the hook for per-thread output
    /// buffers (frontier collectors) without a shared lock. Sequential
    /// fallbacks report worker id 0. Same capture-and-report panic
    /// semantics as [`ThreadPool::parallel_for`].
    pub fn parallel_for_with<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if let Err(e) = self.try_parallel_for_with(range, schedule, ChunkHooks::none(), f) {
            panic!("{e}");
        }
    }

    /// Fallible form of [`ThreadPool::parallel_for`]: budget hooks are
    /// consulted at chunk boundaries and a panic in `f` becomes
    /// [`ExecError::WorkerPanic`].
    pub fn try_parallel_for<F>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        hooks: ChunkHooks<'_>,
        f: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(usize) + Sync,
    {
        self.try_parallel_for_with(range, schedule, hooks, |_tid, i| f(i))
    }

    /// Fallible data-parallel loop: the workhorse behind both the
    /// infallible wrappers and the operators' `try_*` paths.
    ///
    /// Before each chunk the `hooks` are consulted (one branch per
    /// configured hook, relaxed loads, deadline probe amortized): on a
    /// budget stop workers take no further chunks and the call returns
    /// [`ExecError::Budget`]. A panic inside a chunk — organic or injected
    /// by a fault plan — is captured by a per-chunk `catch_unwind`; the
    /// *remaining* chunks still run exactly once (the iteration space is
    /// drained) and the first panic is reported as
    /// [`ExecError::WorkerPanic`] naming the failing chunk.
    ///
    /// Chunk ids are schedule-specific: `Dynamic(g)` numbers chunks
    /// `(lo - range.start) / g` (stable across thread counts), `Static`
    /// uses the worker id, `Guided` a claim ordinal. Sequential fallbacks
    /// chunk by the dynamic grain (one chunk for `Static`) so `Dynamic`
    /// fault coordinates stay meaningful at every thread count.
    pub fn try_parallel_for_with<F>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        hooks: ChunkHooks<'_>,
        f: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(usize, usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return Ok(());
        }
        let outcome = RegionOutcome::default();
        let f = &f;
        if self.num_threads == 1 || len < schedule.sequential_cutoff() {
            let grain = match schedule {
                Schedule::Dynamic(g) | Schedule::Guided(g) => g.max(1),
                Schedule::Static => len,
            };
            let mut lo = range.start;
            let mut chunk = 0usize;
            while lo < range.end {
                let hi = (lo + grain).min(range.end);
                if !run_chunk(&outcome, &hooks, f, 0, chunk, lo, hi) {
                    break;
                }
                lo = hi;
                chunk += 1;
            }
            return outcome.into_result();
        }
        let n = self.num_threads;
        match schedule {
            Schedule::Static => {
                let chunk = len.div_ceil(n);
                self.try_run(|tid| {
                    if outcome.should_stop() {
                        return;
                    }
                    let lo = range.start + tid * chunk;
                    let hi = (lo + chunk).min(range.end);
                    if lo < hi {
                        run_chunk(&outcome, &hooks, f, tid, tid, lo, hi);
                    }
                })?;
            }
            Schedule::Dynamic(grain) => {
                let grain = grain.max(1);
                let nchunks = len.div_ceil(grain);
                // Segmented claiming: each worker owns a contiguous slice
                // of the *chunk id space* (its placement segment, or an
                // even split), drains it through a private cursor, then
                // steals from other segments. Chunk ids keep the exact
                // `(lo - start) / grain` numbering of the shared-counter
                // schedule, so fault-plan coordinates and the determinism
                // argument are untouched — only the claim order (which the
                // BSP contract already leaves free) changes.
                if (2..=MAX_SEGMENTS).contains(&n) && nchunks >= 2 * n {
                    let placement = self.placement();
                    let mut bounds = [0usize; MAX_SEGMENTS + 1];
                    match placement.as_deref() {
                        Some(p) if p.workers() == n && !p.is_empty() => {
                            for (w, b) in bounds.iter_mut().enumerate().take(n) {
                                *b = p.scaled_segment(w, nchunks).start;
                            }
                            bounds[n] = nchunks;
                        }
                        _ => {
                            let seg = nchunks.div_ceil(n);
                            for (w, b) in bounds.iter_mut().enumerate().take(n + 1) {
                                *b = (w * seg).min(nchunks);
                            }
                        }
                    }
                    let cursors: [PaddedCursor; MAX_SEGMENTS] =
                        std::array::from_fn(|w| PaddedCursor(AtomicUsize::new(bounds[w])));
                    self.try_run(|tid| {
                        // Local segment first, then steal round-robin.
                        for k in 0..n {
                            let w = (tid + k) % n;
                            loop {
                                if outcome.should_stop() {
                                    return;
                                }
                                let chunk = cursors[w].0.fetch_add(1, Ordering::Relaxed);
                                if chunk >= bounds[w + 1] {
                                    break;
                                }
                                let lo = range.start + chunk * grain;
                                let hi = (lo + grain).min(range.end);
                                if !run_chunk(&outcome, &hooks, f, tid, chunk, lo, hi) {
                                    return;
                                }
                            }
                        }
                    })?;
                } else {
                    let next = AtomicUsize::new(range.start);
                    self.try_run(|tid| loop {
                        if outcome.should_stop() {
                            break;
                        }
                        let lo = next.fetch_add(grain, Ordering::Relaxed);
                        if lo >= range.end {
                            break;
                        }
                        let hi = (lo + grain).min(range.end);
                        let chunk = (lo - range.start) / grain;
                        if !run_chunk(&outcome, &hooks, f, tid, chunk, lo, hi) {
                            break;
                        }
                    })?;
                }
            }
            Schedule::Guided(min_grain) => {
                let min_grain = min_grain.max(1);
                let next = AtomicUsize::new(range.start);
                let claims = AtomicUsize::new(0);
                self.try_run(|tid| loop {
                    if outcome.should_stop() {
                        break;
                    }
                    let mut lo = next.load(Ordering::Relaxed);
                    let hi = loop {
                        if lo >= range.end {
                            return;
                        }
                        let remaining = range.end - lo;
                        let chunk = (remaining / (2 * n)).max(min_grain);
                        let hi = (lo + chunk).min(range.end);
                        match next.compare_exchange_weak(
                            lo,
                            hi,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break hi,
                            Err(seen) => lo = seen,
                        }
                    };
                    let chunk = claims.fetch_add(1, Ordering::Relaxed);
                    if !run_chunk(&outcome, &hooks, f, tid, chunk, lo, hi) {
                        break;
                    }
                })?;
            }
        }
        outcome.into_result()
    }

    /// Parallel reduction: maps every index through `map`, combining results
    /// with `combine` starting from `identity` (which must be a true
    /// identity for `combine`, and `combine` associative, for deterministic
    /// totals up to reordering).
    pub fn parallel_reduce<T, M, C>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        map: M,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        if self.num_threads == 1 || len < schedule.sequential_cutoff() {
            let mut acc = identity;
            for i in range {
                acc = combine(acc, map(i));
            }
            return acc;
        }
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(self.num_threads));
        {
            let identity = &identity;
            let map = &map;
            let combine = &combine;
            let next = AtomicUsize::new(range.start);
            let grain = schedule.grain_hint(len, self.num_threads);
            self.run(|_| {
                let mut local = identity.clone();
                let mut did_work = false;
                loop {
                    let lo = next.fetch_add(grain, Ordering::Relaxed);
                    if lo >= range.end {
                        break;
                    }
                    did_work = true;
                    let hi = (lo + grain).min(range.end);
                    for i in lo..hi {
                        local = combine(local, map(i));
                    }
                }
                if did_work {
                    partials.lock().push(local);
                }
            });
        }
        partials.into_inner().into_iter().fold(identity, combine)
    }
}

/// Shared failure state of one fallible loop: the first captured panic,
/// the first budget stop, and a region-local flag telling sibling workers
/// to stop claiming chunks.
#[derive(Default)]
struct RegionOutcome {
    panic: Mutex<Option<(String, usize)>>,
    stop: Mutex<Option<BudgetReason>>,
    stopped: AtomicBool,
}

impl RegionOutcome {
    fn record_panic(&self, payload: String, chunk: usize) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some((payload, chunk));
        }
    }

    fn record_stop(&self, reason: BudgetReason) {
        let mut slot = self.stop.lock();
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.stopped.store(true, Ordering::Relaxed);
    }

    fn should_stop(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    fn into_result(self) -> Result<(), ExecError> {
        if let Some((payload, chunk)) = self.panic.into_inner() {
            return Err(ExecError::WorkerPanic { payload, chunk });
        }
        if let Some(reason) = self.stop.into_inner() {
            return Err(ExecError::Budget {
                reason,
                progress: Progress::default(),
            });
        }
        Ok(())
    }
}

/// Runs one chunk of a fallible loop under its hooks and a per-chunk
/// `catch_unwind`. Returns `false` when the worker should stop claiming
/// chunks (budget stop); a *panicking* chunk returns `true` so siblings and
/// the worker itself keep draining the iteration space.
fn run_chunk<F>(
    outcome: &RegionOutcome,
    hooks: &ChunkHooks<'_>,
    f: &F,
    tid: usize,
    chunk: usize,
    lo: usize,
    hi: usize,
) -> bool
where
    F: Fn(usize, usize) + Sync,
{
    match hooks.before_chunk(chunk) {
        ChunkAction::Run => {}
        ChunkAction::Stop(reason) => {
            outcome.record_stop(reason);
            return false;
        }
        ChunkAction::Panic {
            iteration,
            chunk: at,
        } => {
            // Injected faults go through the real panic machinery so the
            // capture path under test is the production path.
            let result = catch_unwind(AssertUnwindSafe(|| {
                panic!("injected fault at (iteration {iteration}, chunk {at})");
            }));
            if let Err(payload) = result {
                outcome.record_panic(panic_payload_string(&*payload), chunk);
            }
            return true;
        }
    }
    // The closure only touches state that is valid at every intermediate
    // step (atomics, worker-owned buffer slots), so observing it after a
    // panic is sound; the panic is reported, never swallowed.
    let result = catch_unwind(AssertUnwindSafe(|| {
        for i in lo..hi {
            f(tid, i);
        }
    }));
    if let Err(payload) = result {
        outcome.record_panic(panic_payload_string(&*payload), chunk);
    }
    true
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.expect("epoch bumped without a job"); // unwrap-ok: protocol invariant
                }
                shared.work_cv.wait(&mut slot);
            }
        };
        IN_REGION.with(|c| c.set(true));
        // Capture panics so `remaining` always reaches zero: the old
        // behavior (worker unwinds, region never completes) deadlocked the
        // caller. Region closures only touch state valid at every
        // intermediate step (atomics, mutexes, worker-owned slots), and the
        // panic is reported to the caller, never swallowed.
        let result = catch_unwind(AssertUnwindSafe(|| job(tid)));
        IN_REGION.with(|c| c.set(false));
        let mut slot = shared.slot.lock();
        if let Err(payload) = result {
            let payload = panic_payload_string(&*payload);
            if slot.panic.is_none() {
                slot.panic = Some((payload, tid));
            }
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_visits_every_worker_exactly_once() {
        let pool = ThreadPool::new(4);
        let visits = [0u8; 4].map(|_| AtomicUsize::new(0));
        pool.run(|tid| {
            visits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for v in &visits {
            assert_eq!(v.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn parallel_for_covers_range_once_for_all_schedules() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic(1),
            Schedule::Dynamic(7),
            Schedule::Guided(1),
            Schedule::Guided(16),
        ] {
            let n = 10_001;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(0..n, schedule, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "schedule {schedule:?} missed or duplicated indices"
            );
        }
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        // With capture-and-report semantics a panic would surface as an
        // error, so assert the closure is simply never called.
        let pool = ThreadPool::new(2);
        let calls = AtomicUsize::new(0);
        let result =
            pool.try_parallel_for_with(5..5, Schedule::Static, ChunkHooks::none(), |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        assert!(result.is_ok());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panicking_chunk_drains_all_other_chunks_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let grain = 64;
        let bad = 4321; // inside chunk 4321/64 = 67 (indices 4288..4352)
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let err = pool
            .try_parallel_for_with(
                0..n,
                Schedule::Dynamic(grain),
                ChunkHooks::none(),
                |_, i| {
                    if i == bad {
                        panic!("boom at {i}");
                    }
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap_err();
        match &err {
            ExecError::WorkerPanic { payload, chunk } => {
                assert!(payload.contains("boom at 4321"), "payload: {payload}");
                assert_eq!(*chunk, bad / grain);
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let chunk_lo = (bad / grain) * grain;
        let chunk_hi = chunk_lo + grain;
        for (i, h) in hits.iter().enumerate() {
            let count = h.load(Ordering::Relaxed);
            if i < chunk_lo || i >= chunk_hi {
                assert_eq!(count, 1, "index {i} outside the panicking chunk");
            } else if i < bad {
                assert_eq!(count, 1, "index {i} before the panic point");
            } else {
                assert_eq!(count, 0, "index {i} at/after the panic point");
            }
        }
        // The pool stays usable after a captured panic.
        let sum = AtomicUsize::new(0);
        pool.parallel_for(0..1000, Schedule::Dynamic(32), |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 499_500);
    }

    #[test]
    fn try_run_reports_worker_panic_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let err = pool
            .try_run(|tid| {
                if tid == 2 {
                    panic!("worker {tid} down");
                }
            })
            .unwrap_err();
        match &err {
            ExecError::WorkerPanic { payload, chunk } => {
                assert!(payload.contains("worker 2 down"), "payload: {payload}");
                assert_eq!(*chunk, 2);
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // All workers completed the region and the pool is reusable.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 4);
    }

    #[test]
    fn cancelled_hooks_stop_before_any_chunk() {
        let pool = ThreadPool::new(4);
        let token = crate::exec::CancelToken::new();
        token.cancel();
        let budget = crate::exec::RunBudget::unlimited().with_cancel(token);
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_parallel_for_with(
                0..100_000,
                Schedule::Dynamic(64),
                budget.chunk_hooks(None),
                |_, _| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Budget {
                reason: BudgetReason::Cancelled,
                ..
            }
        ));
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn injected_fault_panics_at_exact_chunk() {
        let pool = ThreadPool::new(4);
        let plan = crate::exec::FaultPlan::new().panic_at(0, 5);
        let budget = crate::exec::RunBudget::unlimited();
        let hooks = budget.chunk_hooks(Some(&plan));
        let n = 64 * 100;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let err = pool
            .try_parallel_for_with(0..n, Schedule::Dynamic(64), hooks, |_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        match &err {
            ExecError::WorkerPanic { payload, chunk } => {
                assert!(payload.contains("injected fault"), "payload: {payload}");
                assert_eq!(*chunk, 5);
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // Every chunk except the injected one ran exactly once.
        for (i, h) in hits.iter().enumerate() {
            let expected = usize::from(i / 64 != 5);
            assert_eq!(h.load(Ordering::Relaxed), expected, "index {i}");
        }
    }

    #[test]
    fn expired_deadline_surfaces_as_budget_error() {
        let pool = ThreadPool::new(2);
        let budget = crate::exec::RunBudget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let err = pool
            .try_parallel_for_with(
                0..100_000,
                Schedule::Dynamic(64),
                budget.chunk_hooks(None),
                |_, _| {},
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Budget {
                reason: BudgetReason::DeadlineExpired,
                ..
            }
        ));
    }

    #[test]
    fn sequential_fallback_has_same_capture_semantics() {
        // Small range -> runs on the calling thread; the panic must still
        // be captured per chunk and the rest of the range drained.
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let err = pool
            .try_parallel_for_with(0..100, Schedule::Dynamic(10), ChunkHooks::none(), |_, i| {
                if i == 55 {
                    panic!("mid-range");
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        match &err {
            ExecError::WorkerPanic { chunk, .. } => assert_eq!(*chunk, 5),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        for (i, h) in hits.iter().enumerate() {
            let expected = usize::from(!(55..60).contains(&i));
            assert_eq!(h.load(Ordering::Relaxed), expected, "index {i}");
        }
    }

    #[test]
    fn parallel_reduce_sums_correctly() {
        let pool = ThreadPool::new(4);
        let total = pool.parallel_reduce(
            0..100_000,
            Schedule::Dynamic(1024),
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn parallel_reduce_empty_returns_identity() {
        let pool = ThreadPool::new(2);
        let r = pool.parallel_reduce(3..3, Schedule::Static, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn single_thread_pool_runs_inline_results() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..100, Schedule::Static, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn pool_drop_joins_workers() {
        // Must not hang.
        let pool = ThreadPool::new(4);
        pool.run(|_| {});
        drop(pool);
    }

    #[test]
    fn segmented_dynamic_covers_range_with_and_without_placement() {
        let pool = ThreadPool::new(4);
        let n = 50_000;
        for placement in [
            None,
            Some(Arc::new(Placement::even(n, 4))),
            Some(Arc::new(Placement::from_boundaries(vec![
                0, 40_000, 45_000, 48_000, 50_000,
            ]))),
            // Mismatched worker count: ignored, even split used.
            Some(Arc::new(Placement::even(n, 3))),
        ] {
            pool.set_placement(placement);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(0..n, Schedule::Dynamic(64), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        pool.set_placement(None);
    }

    #[test]
    fn segmented_dynamic_keeps_chunk_ids_stable() {
        // Fault coordinates name chunks by `(lo - start) / grain`; the
        // segmented schedule must report the same ids as the shared
        // counter did.
        let pool = ThreadPool::new(4);
        pool.set_placement(Some(Arc::new(Placement::even(6400, 4))));
        let plan = crate::exec::FaultPlan::new().panic_at(0, 5);
        let budget = crate::exec::RunBudget::unlimited();
        let hooks = budget.chunk_hooks(Some(&plan));
        let err = pool
            .try_parallel_for_with(0..6400, Schedule::Dynamic(64), hooks, |_, _| {})
            .unwrap_err();
        match &err {
            ExecError::WorkerPanic { chunk, .. } => assert_eq!(*chunk, 5),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        pool.set_placement(None);
    }

    #[test]
    fn pinned_pool_still_runs_regions() {
        let pool = ThreadPool::new_pinned(2);
        let count = AtomicUsize::new(0);
        pool.parallel_for(0..10_000, Schedule::Dynamic(64), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 10_000);
    }

    #[test]
    fn concurrent_runs_from_many_threads_serialize() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let count = std::sync::Arc::clone(&count);
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    pool.run(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), 4 * 25 * 2);
    }
}
