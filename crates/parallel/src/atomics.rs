//! Atomic primitives the standard library lacks: float min/max/add and an
//! atomic bitset.
//!
//! Listing 4 of the paper relaxes SSSP distances with `atomic::min` on a
//! `float` array; dense frontiers are "a boolean array … stored in shared
//! memory" that many threads set concurrently. Both live here.
//!
//! Float CAS loops compare through `f32::from_bits`/`f64::from_bits` with
//! ordinary float comparison, so **NaN inputs are rejected by debug
//! assertion** (a NaN never compares less, which would silently drop
//! updates); graph weights are validated at build time.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// An `f32` updatable atomically. Layout-compatible with `f32` via `u32`
/// bit-casting.
#[derive(Debug)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Creates a new atomic float.
    #[inline]
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f32 {
        f32::from_bits(self.0.load(order))
    }

    /// Stores `v`.
    #[inline]
    pub fn store(&self, v: f32, order: Ordering) {
        self.0.store(v.to_bits(), order)
    }

    /// Atomically sets `self = min(self, v)` and returns the **previous**
    /// value — exactly the paper's `atomic::min` contract ("atomically
    /// updates the distances vector at dst with the minimum …, then returns
    /// the old value").
    pub fn fetch_min(&self, v: f32, order: Ordering) -> f32 {
        debug_assert!(!v.is_nan(), "atomic float min is undefined for NaN");
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f32::from_bits(cur);
            if cur_f <= v {
                return cur_f;
            }
            match self
                .0
                .compare_exchange_weak(cur, v.to_bits(), order, Ordering::Relaxed)
            {
                Ok(_) => return cur_f,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically sets `self = max(self, v)` and returns the previous value.
    pub fn fetch_max(&self, v: f32, order: Ordering) -> f32 {
        debug_assert!(!v.is_nan(), "atomic float max is undefined for NaN");
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f32::from_bits(cur);
            if cur_f >= v {
                return cur_f;
            }
            match self
                .0
                .compare_exchange_weak(cur, v.to_bits(), order, Ordering::Relaxed)
            {
                Ok(_) => return cur_f,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically adds `v` and returns the previous value.
    pub fn fetch_add(&self, v: f32, order: Ordering) -> f32 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f32::from_bits(cur);
            let new = (cur_f + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(_) => return cur_f,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Consumes the atomic and returns the value.
    #[inline]
    pub fn into_inner(self) -> f32 {
        f32::from_bits(self.0.into_inner())
    }
}

/// An `f64` updatable atomically (used by PageRank/HITS accumulation).
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic double.
    #[inline]
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.0.load(order))
    }

    /// Stores `v`.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.0.store(v.to_bits(), order)
    }

    /// Atomically adds `v` and returns the previous value.
    pub fn fetch_add(&self, v: f64, order: Ordering) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f64::from_bits(cur);
            let new = (cur_f + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(_) => return cur_f,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically sets `self = min(self, v)` and returns the previous value.
    pub fn fetch_min(&self, v: f64, order: Ordering) -> f64 {
        debug_assert!(!v.is_nan(), "atomic float min is undefined for NaN");
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f64::from_bits(cur);
            if cur_f <= v {
                return cur_f;
            }
            match self
                .0
                .compare_exchange_weak(cur, v.to_bits(), order, Ordering::Relaxed)
            {
                Ok(_) => return cur_f,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Consumes the atomic and returns the value.
    #[inline]
    pub fn into_inner(self) -> f64 {
        f64::from_bits(self.0.into_inner())
    }
}

/// A fixed-capacity bitset with atomic set/test, the storage behind dense
/// (bitmap) frontiers and visited sets.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitset { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero bits of capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets bit `i`; returns `true` if this call changed it
    /// (i.e. the bit was previously clear). The claim-a-vertex primitive.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    /// Atomically clears bit `i`; returns `true` if this call changed it.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Clears all bits (not atomic with respect to concurrent setters; call
    /// between phases).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterates the indices of set bits in ascending order (snapshot
    /// semantics per word).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Number of 64-bit words backing the bitset (the unit of the word
    /// kernels below and of chunked parallel iteration).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Calls `f(i)` for every set bit `i`, word-at-a-time: all-zero words
    /// cost one load, and set bits are decoded with `trailing_zeros` in a
    /// tight loop with no iterator machinery between the word and the
    /// closure. The fast sequential scan of dense frontiers.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        self.for_each_set_in_words(0, self.words.len(), &mut f);
    }

    /// [`Self::for_each_set`] restricted to words `[word_lo, word_hi)` —
    /// the building block for *parallel* dense-frontier iteration: workers
    /// take disjoint word ranges and decode their own chunks.
    #[inline]
    pub fn for_each_set_in_words(&self, word_lo: usize, word_hi: usize, f: &mut impl FnMut(usize)) {
        let hi = word_hi.min(self.words.len());
        let lo = word_lo.min(hi);
        // Slice iteration, not indexing: no per-word bounds check in the
        // scan loop.
        for (wi, word) in self.words[lo..hi].iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            let base = (lo + wi) * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(base + b);
            }
        }
    }

    /// Sets every bit of `self` that is set in `other` (word-level `|=`);
    /// returns how many bits this newly set. Not atomic as a whole — call
    /// between phases, like [`Self::clear_all`]. Both bitsets must have the
    /// same length.
    pub fn union_with(&self, other: &AtomicBitset) -> usize {
        debug_assert_eq!(self.len, other.len);
        let mut added = 0usize;
        for (w, o) in self.words.iter().zip(&other.words) {
            let ob = o.load(Ordering::Relaxed);
            if ob != 0 {
                let old = w.fetch_or(ob, Ordering::Relaxed);
                added += (ob & !old).count_ones() as usize;
            }
        }
        added
    }

    /// Clears every bit of `self` that is set in `other` (word-level
    /// `&= !`); returns how many bits this cleared. The candidate-set
    /// maintenance kernel of masked pull: `unvisited.and_not(newly_visited)`
    /// retires settled destinations 64 at a time. Same phase discipline and
    /// length requirement as [`Self::union_with`].
    pub fn and_not(&self, other: &AtomicBitset) -> usize {
        debug_assert_eq!(self.len, other.len);
        let mut removed = 0usize;
        for (w, o) in self.words.iter().zip(&other.words) {
            let ob = o.load(Ordering::Relaxed);
            if ob != 0 {
                let old = w.fetch_and(!ob, Ordering::Relaxed);
                removed += (ob & old).count_ones() as usize;
            }
        }
        removed
    }

    /// Sets all `len` bits (tail bits of the last word stay clear, so
    /// `count_ones` and the scans never see ghost indices ≥ `len`).
    pub fn set_all(&self) {
        if self.len == 0 {
            return;
        }
        let (full, tail) = (self.len / 64, self.len % 64);
        for w in &self.words[..full] {
            w.store(u64::MAX, Ordering::Relaxed);
        }
        if tail != 0 {
            self.words[full].store((1u64 << tail) - 1, Ordering::Relaxed);
        }
    }

    /// Raw word access for bulk operations (counting, unions).
    pub fn words(&self) -> &[AtomicU64] {
        &self.words
    }
}

/// A relaxed `usize` counter for statistics (edges relaxed, messages sent…).
#[derive(Debug, Default)]
pub struct Counter(AtomicUsize);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(AtomicUsize::new(0))
    }

    /// Adds `n` (relaxed; counters are advisory).
    #[inline]
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// Reinterprets an exclusively borrowed `u64` slice as a shared slice of
/// atomics, so a pooled plain buffer can serve as shared state inside one
/// parallel region and go straight back to the pool afterwards — the
/// multi-source traversals' visited/frontier mask words live this way.
///
/// The `&mut` requirement is the soundness core: for the lifetime of the
/// returned reference the caller provably holds the *only* access path, so
/// retyping the memory as atomic cannot conflict with any non-atomic use.
#[inline]
pub fn as_atomic_u64(words: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: `AtomicU64` has the same size and alignment as `u64`
    // (guaranteed by std), and the exclusive borrow means no other
    // reference — atomic or plain — aliases these words while the atomic
    // view is live.
    unsafe { &*(words as *mut [u64] as *const [AtomicU64]) }
}

/// The `u32` counterpart of [`as_atomic_u64`] — pooled level/label tables
/// retyped for one region of concurrent claim-writes.
#[inline]
pub fn as_atomic_u32(words: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: same layout guarantee (`AtomicU32` ⟷ `u32`) and the same
    // exclusive-borrow aliasing argument as `as_atomic_u64`.
    unsafe { &*(words as *mut [u32] as *const [AtomicU32]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use crate::schedule::Schedule;

    #[test]
    fn f32_fetch_min_returns_old_and_keeps_min() {
        let a = AtomicF32::new(10.0);
        assert_eq!(a.fetch_min(3.0, Ordering::AcqRel), 10.0);
        assert_eq!(a.fetch_min(5.0, Ordering::AcqRel), 3.0);
        assert_eq!(a.load(Ordering::Relaxed), 3.0);
    }

    #[test]
    fn f32_fetch_min_handles_infinity_initial() {
        let a = AtomicF32::new(f32::INFINITY);
        assert_eq!(a.fetch_min(1.5, Ordering::AcqRel), f32::INFINITY);
        assert_eq!(a.load(Ordering::Relaxed), 1.5);
    }

    #[test]
    fn f32_fetch_max_and_add() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_max(4.0, Ordering::AcqRel), 1.0);
        assert_eq!(a.fetch_add(0.5, Ordering::AcqRel), 4.0);
        assert_eq!(a.load(Ordering::Relaxed), 4.5);
    }

    #[test]
    fn f64_concurrent_adds_sum_exactly_with_integral_values() {
        let pool = ThreadPool::new(4);
        let acc = AtomicF64::new(0.0);
        pool.parallel_for(0..10_000, Schedule::Dynamic(64), |_| {
            acc.fetch_add(1.0, Ordering::AcqRel);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10_000.0);
    }

    #[test]
    fn concurrent_min_converges_to_global_min() {
        let pool = ThreadPool::new(4);
        let a = AtomicF32::new(f32::MAX);
        pool.parallel_for(1..5_000, Schedule::Dynamic(16), |i| {
            a.fetch_min(i as f32, Ordering::AcqRel);
        });
        assert_eq!(a.load(Ordering::Relaxed), 1.0);
    }

    #[test]
    fn bitset_set_reports_first_setter_exactly_once() {
        let pool = ThreadPool::new(4);
        let bits = AtomicBitset::new(1000);
        let wins = Counter::new();
        // Each bit is set 8 times; exactly one set() per bit may return true.
        pool.parallel_for(0..8000, Schedule::Dynamic(16), |i| {
            if bits.set(i % 1000) {
                wins.add(1);
            }
        });
        assert_eq!(wins.get(), 1000);
        assert_eq!(bits.count_ones(), 1000);
    }

    #[test]
    fn bitset_iter_ones_matches_set_bits() {
        let bits = AtomicBitset::new(200);
        for i in [0, 1, 63, 64, 65, 128, 199] {
            bits.set(i);
        }
        let ones: Vec<usize> = bits.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn bitset_clear_and_clear_all() {
        let bits = AtomicBitset::new(70);
        bits.set(5);
        bits.set(69);
        assert!(bits.clear(5));
        assert!(!bits.clear(5));
        assert!(bits.get(69));
        bits.clear_all();
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn bitset_zero_len() {
        let bits = AtomicBitset::new(0);
        assert!(bits.is_empty());
        assert_eq!(bits.count_ones(), 0);
        assert_eq!(bits.iter_ones().count(), 0);
    }

    #[test]
    fn for_each_set_matches_iter_ones() {
        let bits = AtomicBitset::new(197); // tail word: 197 % 64 != 0
        for i in [0, 63, 64, 100, 128, 196] {
            bits.set(i);
        }
        let mut via_closure = Vec::new();
        bits.for_each_set(|i| via_closure.push(i));
        assert_eq!(via_closure, bits.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn for_each_set_in_words_covers_range_only() {
        let bits = AtomicBitset::new(300);
        for i in [10, 70, 130, 250] {
            bits.set(i);
        }
        let mut got = Vec::new();
        bits.for_each_set_in_words(1, 3, &mut |i| got.push(i));
        assert_eq!(got, vec![70, 130]);
        // Out-of-range hi clamps.
        got.clear();
        bits.for_each_set_in_words(3, 99, &mut |i| got.push(i));
        assert_eq!(got, vec![250]);
    }

    #[test]
    fn union_and_and_not_report_deltas() {
        let a = AtomicBitset::new(130);
        let b = AtomicBitset::new(130);
        for i in [1, 64, 129] {
            a.set(i);
        }
        for i in [64, 65, 129] {
            b.set(i);
        }
        assert_eq!(a.union_with(&b), 1); // only 65 is new
        assert_eq!(a.count_ones(), 4);
        assert_eq!(a.and_not(&b), 3); // 64, 65, 129 cleared
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.and_not(&b), 0); // idempotent once disjoint
    }

    #[test]
    fn set_all_respects_tail_word() {
        let bits = AtomicBitset::new(67);
        bits.set_all();
        assert_eq!(bits.count_ones(), 67);
        assert_eq!(bits.iter_ones().max(), Some(66));
        let empty = AtomicBitset::new(0);
        empty.set_all();
        assert_eq!(empty.count_ones(), 0);
    }
}
