//! Loop-scheduling strategies for data-parallel operators.
//!
//! The paper (§IV-C) locates "the bulk of optimizations … such as utilizing
//! data parallelism and load balancing" in the operators. The schedule is
//! the substrate-level half of that knob: how an iteration space is divided
//! among workers. Operators choose a schedule per workload shape (uniform
//! meshes → `Static`, skewed power-law frontiers → `Dynamic`/`Guided`);
//! experiment E5 measures the difference.

/// How a `parallel_for` iteration space is divided among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous block per worker. Zero scheduling overhead, no load
    /// balancing. Best when every index costs the same.
    Static,
    /// Workers repeatedly grab fixed-size chunks (the *grain*) from a shared
    /// counter. Balances skew at the cost of one atomic per chunk.
    Dynamic(usize),
    /// Like `Dynamic` but the chunk size starts at `remaining / 2n` and
    /// shrinks toward the given minimum grain, reducing atomics early and
    /// balancing the tail.
    Guided(usize),
}

impl Default for Schedule {
    /// Dynamic with a grain of 256 indices: a good default for per-vertex
    /// work of unknown skew.
    fn default() -> Self {
        Schedule::Dynamic(256)
    }
}

impl Schedule {
    /// Ranges shorter than this run sequentially on the calling thread; the
    /// fixed cost of waking the pool dwarfs the work.
    pub fn sequential_cutoff(&self) -> usize {
        match self {
            Schedule::Static => 2048,
            Schedule::Dynamic(g) | Schedule::Guided(g) => (*g).max(2048),
        }
    }

    /// A reasonable dynamic grain for reductions over `len` items on
    /// `threads` workers: aim for ~8 chunks per worker, clamped to [64, 8192].
    pub fn grain_hint(&self, len: usize, threads: usize) -> usize {
        match self {
            Schedule::Dynamic(g) | Schedule::Guided(g) if *g > 0 => *g,
            _ => (len / (threads * 8).max(1)).clamp(64, 8192),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dynamic() {
        assert_eq!(Schedule::default(), Schedule::Dynamic(256));
    }

    #[test]
    fn cutoff_respects_grain() {
        assert_eq!(Schedule::Dynamic(10_000).sequential_cutoff(), 10_000);
        assert_eq!(Schedule::Dynamic(8).sequential_cutoff(), 2048);
        assert_eq!(Schedule::Static.sequential_cutoff(), 2048);
    }

    #[test]
    fn grain_hint_clamps() {
        let s = Schedule::Static;
        assert_eq!(s.grain_hint(10, 4), 64);
        assert_eq!(s.grain_hint(10_000_000, 1), 8192);
        assert_eq!(Schedule::Dynamic(100).grain_hint(1_000_000, 4), 100);
    }
}
