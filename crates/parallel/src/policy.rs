//! Execution policies — the paper's central mechanism for the *timing*
//! pillar (§III-A).
//!
//! > "these policies are unique types to allow for overloading of traversal
//! > and transformation operators to support parallelism and synchronization
//! > behaviors … allow for the operator's functionality to be identical,
//! > even as its underlying execution changes."
//!
//! In C++ this is overload resolution on `std::execution`-style tag values;
//! the Rust equivalent is a marker trait with zero-sized implementors,
//! dispatched statically by generic operators. The [`execution`] module
//! mirrors the paper's spelling (`execution::par`, `execution::par_nosync`)
//! so Listing 3/4 translate line-for-line — see
//! `essentials_core::operators::advance::neighbors_expand`.

/// Marker trait implemented by the execution-policy tag types.
///
/// Operators are generic over `P: ExecutionPolicy` and consult the two
/// associated constants to pick an implementation; their observable results
/// must be identical across policies (tested as *policy equivalence*
/// throughout the workspace).
pub trait ExecutionPolicy: Copy + Clone + Send + Sync + Default + 'static {
    /// Whether the operator may use the thread pool at all.
    const IS_PARALLEL: bool;
    /// Whether the operator must synchronize (join all its parallelism)
    /// before returning. Bulk-synchronous timing sets this; asynchronous
    /// timing clears it and relies on the engine's termination detection.
    const IS_SYNCHRONIZED: bool;
    /// Human-readable name for reports and benches.
    const NAME: &'static str;
}

/// Sequential execution on the calling thread. The reference semantics every
/// parallel policy must match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Seq;

/// Bulk-synchronous parallel execution: work is distributed over the pool
/// and the operator returns only after an implicit barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Par;

/// Asynchronous parallel execution: no barrier per operator; completion is
/// detected by queue quiescence (see [`crate::async_engine`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParNosync;

impl ExecutionPolicy for Seq {
    const IS_PARALLEL: bool = false;
    const IS_SYNCHRONIZED: bool = true;
    const NAME: &'static str = "seq";
}

impl ExecutionPolicy for Par {
    const IS_PARALLEL: bool = true;
    const IS_SYNCHRONIZED: bool = true;
    const NAME: &'static str = "par";
}

impl ExecutionPolicy for ParNosync {
    const IS_PARALLEL: bool = true;
    const IS_SYNCHRONIZED: bool = false;
    const NAME: &'static str = "par_nosync";
}

/// Policy tag values spelled as in the paper: `execution::seq`,
/// `execution::par`, `execution::par_nosync`.
#[allow(non_upper_case_globals)]
pub mod execution {
    use super::{Par, ParNosync, Seq};

    /// Sequential policy value.
    pub const seq: Seq = Seq;
    /// Bulk-synchronous parallel policy value.
    pub const par: Par = Par;
    /// Asynchronous parallel policy value.
    pub const par_nosync: ParNosync = ParNosync;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn describe<P: ExecutionPolicy>(_p: P) -> (&'static str, bool, bool) {
        (P::NAME, P::IS_PARALLEL, P::IS_SYNCHRONIZED)
    }

    #[test]
    fn policies_dispatch_statically() {
        assert_eq!(describe(execution::seq), ("seq", false, true));
        assert_eq!(describe(execution::par), ("par", true, true));
        assert_eq!(describe(execution::par_nosync), ("par_nosync", true, false));
    }

    #[test]
    fn policies_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Seq>(), 0);
        assert_eq!(std::mem::size_of::<Par>(), 0);
        assert_eq!(std::mem::size_of::<ParNosync>(), 0);
    }
}
