//! A reusable sense-reversing barrier for bulk-synchronous supersteps.
//!
//! Inside a parallel region, workers running a multi-superstep algorithm
//! (Pregel-style engines, BSP enactors) need a barrier they can hit
//! repeatedly. The sense-reversing construction makes consecutive waits safe
//! without re-initialization: each thread flips a local *sense* per phase and
//! spins (with `yield_now`, since the host may be oversubscribed) until the
//! shared sense matches.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed number of participants.
///
/// ```
/// use essentials_parallel::{SpinBarrier, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let barrier = SpinBarrier::new(4);
/// let phase_sums = [AtomicUsize::new(0), AtomicUsize::new(0)];
/// pool.run(|tid| {
///     phase_sums[0].fetch_add(tid, Ordering::Relaxed);
///     barrier.wait();
///     // Every worker sees the completed phase-0 sum.
///     assert_eq!(phase_sums[0].load(Ordering::Relaxed), 0 + 1 + 2 + 3);
///     phase_sums[1].fetch_add(1, Ordering::Relaxed);
/// });
/// ```
pub struct SpinBarrier {
    parties: usize,
    waiting: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` participants (minimum 1).
    pub fn new(parties: usize) -> Self {
        SpinBarrier {
            parties: parties.max(1),
            waiting: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` threads have called `wait` for the current
    /// phase. Returns `true` on exactly one thread per phase (the *serial
    /// leader*, the last to arrive), which BSP engines use to run
    /// between-superstep bookkeeping.
    pub fn wait(&self) -> bool {
        let phase_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.waiting.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.waiting.store(0, Ordering::Relaxed);
            // Release the phase: all prior writes happen-before waiters wake.
            self.sense.store(phase_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != phase_sense {
                std::thread::yield_now();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_totally_ordered() {
        const PHASES: usize = 50;
        let pool = ThreadPool::new(4);
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            for phase in 0..PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                // After the barrier, all 4 increments of this phase are in.
                let c = counter.load(Ordering::Relaxed);
                assert!(c >= (phase + 1) * 4, "phase {phase}: saw {c}");
                barrier.wait();
            }
        });
        assert_eq!(counter.into_inner(), PHASES * 4);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let pool = ThreadPool::new(3);
        let barrier = SpinBarrier::new(3);
        let leaders = AtomicUsize::new(0);
        pool.run(|_| {
            for _ in 0..20 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.into_inner(), 20);
    }
}
