//! Property-based tests for the threading substrate: exactly-once
//! iteration, reduction correctness, async-engine conservation, across
//! arbitrary range lengths, grain sizes, and thread counts.

use essentials_parallel::{run_async, run_async_seq, Schedule, SpinBarrier, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..2000).prop_map(Schedule::Dynamic),
        (1usize..500).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_for_visits_each_index_exactly_once(
        len in 0usize..20_000,
        threads in 1usize..6,
        schedule in arb_schedule(),
    ) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..len, schedule, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_with_reports_valid_worker_ids(
        len in 1usize..10_000,
        threads in 1usize..6,
        schedule in arb_schedule(),
    ) {
        let pool = ThreadPool::new(threads);
        let bad = AtomicUsize::new(0);
        pool.parallel_for_with(0..len, schedule, |tid, _i| {
            if tid >= threads {
                bad.fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert_eq!(bad.into_inner(), 0);
    }

    #[test]
    fn parallel_reduce_equals_sequential_fold(
        values in prop::collection::vec(0u64..1000, 0..5000),
        threads in 1usize..5,
        schedule in arb_schedule(),
    ) {
        let pool = ThreadPool::new(threads);
        let expected: u64 = values.iter().sum();
        let got = pool.parallel_reduce(
            0..values.len(),
            schedule,
            0u64,
            |i| values[i],
            |a, b| a + b,
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn async_engine_conserves_items(
        seeds in prop::collection::vec(0usize..64, 0..64),
        threads in 1usize..5,
        fanout in 0usize..3,
    ) {
        // Every item < 64 pushes `fanout` children in [64, 128); children
        // push nothing. processed must equal seeds + pushes exactly.
        let pool = ThreadPool::new(threads);
        let stats = run_async(&pool, seeds.clone(), |item, pusher| {
            if item < 64 {
                for k in 0..fanout {
                    pusher.push(64 + (item + k) % 64);
                }
            }
        });
        prop_assert_eq!(stats.processed, seeds.len() + stats.pushes);
        prop_assert_eq!(stats.pushes, seeds.len() * fanout);
        // And the sequential engine agrees on the totals.
        let seq = run_async_seq(seeds.clone(), |item, pusher| {
            if item < 64 {
                for k in 0..fanout {
                    pusher.push(64 + (item + k) % 64);
                }
            }
        });
        prop_assert_eq!(seq.processed, stats.processed);
    }

    #[test]
    fn barrier_keeps_phase_counters_in_lockstep(
        threads in 2usize..5,
        phases in 1usize..20,
    ) {
        let pool = ThreadPool::new(threads);
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        pool.run(|_| {
            for p in 0..phases {
                counter.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                let c = counter.load(Ordering::Relaxed);
                // After the barrier everyone must see all increments of
                // phases 0..=p.
                if c < (p + 1) * threads {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                barrier.wait();
            }
        });
        prop_assert_eq!(violations.into_inner(), 0);
        prop_assert_eq!(counter.into_inner(), phases * threads);
    }

    #[test]
    fn scope_runs_every_spawned_task(
        tasks in 0usize..200,
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..tasks {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        prop_assert_eq!(count.into_inner(), tasks);
    }

    #[test]
    fn atomic_f32_min_converges_to_global_min(
        values in prop::collection::vec(0u32..1_000_000, 1..2000),
        threads in 1usize..5,
    ) {
        use essentials_parallel::atomics::AtomicF32;
        let pool = ThreadPool::new(threads);
        let a = AtomicF32::new(f32::INFINITY);
        pool.parallel_for(0..values.len(), Schedule::Dynamic(64), |i| {
            a.fetch_min(values[i] as f32, Ordering::AcqRel);
        });
        let expected = values.iter().copied().min().unwrap() as f32;
        prop_assert_eq!(a.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn bitset_counts_distinct_sets(
        indices in prop::collection::vec(0usize..512, 0..2000),
        threads in 1usize..5,
    ) {
        use essentials_parallel::atomics::AtomicBitset;
        let pool = ThreadPool::new(threads);
        let bits = AtomicBitset::new(512);
        let wins = AtomicUsize::new(0);
        pool.parallel_for(0..indices.len(), Schedule::Dynamic(32), |i| {
            if bits.set(indices[i]) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        let mut distinct = indices.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(wins.into_inner(), distinct.len());
        prop_assert_eq!(bits.count_ones(), distinct.len());
        prop_assert_eq!(bits.iter_ones().collect::<Vec<_>>(), distinct);
    }

    #[test]
    fn for_each_set_matches_iter_ones_on_random_bitmaps(
        // Deliberately not a multiple of 64 most of the time: the tail word
        // must decode exactly like full words.
        len in 1usize..700,
        seed_bits in prop::collection::vec(0usize..700, 0..700),
    ) {
        use essentials_parallel::atomics::AtomicBitset;
        let bits = AtomicBitset::new(len);
        for &b in &seed_bits {
            if b < len {
                bits.set(b);
            }
        }
        let expected: Vec<usize> = bits.iter_ones().collect();
        let mut tight = Vec::new();
        bits.for_each_set(|i| tight.push(i));
        prop_assert_eq!(&tight, &expected);
        // The chunked word-range form covers the same set when the ranges
        // tile the words (parallel iteration decomposes this way).
        let words = bits.num_words();
        let mut chunked = Vec::new();
        let mut wi = 0;
        while wi < words {
            let hi = (wi + 3).min(words);
            bits.for_each_set_in_words(wi, hi, &mut |i| chunked.push(i));
            wi = hi;
        }
        prop_assert_eq!(&chunked, &expected);
        prop_assert_eq!(expected.len(), bits.count_ones());
    }

    #[test]
    fn for_each_set_extremes_empty_and_full(len in 1usize..700) {
        use essentials_parallel::atomics::AtomicBitset;
        let bits = AtomicBitset::new(len);
        let mut seen = 0usize;
        bits.for_each_set(|_| seen += 1);
        prop_assert_eq!(seen, 0);
        bits.set_all();
        let mut got = Vec::new();
        bits.for_each_set(|i| got.push(i));
        prop_assert_eq!(got, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn union_and_and_not_match_set_algebra(
        len in 1usize..400,
        a_bits in prop::collection::vec(0usize..400, 0..400),
        b_bits in prop::collection::vec(0usize..400, 0..400),
    ) {
        use essentials_parallel::atomics::AtomicBitset;
        use std::collections::BTreeSet;
        let a = AtomicBitset::new(len);
        let b = AtomicBitset::new(len);
        let sa: BTreeSet<usize> = a_bits.iter().copied().filter(|&x| x < len).collect();
        let sb: BTreeSet<usize> = b_bits.iter().copied().filter(|&x| x < len).collect();
        for &x in &sa { a.set(x); }
        for &x in &sb { b.set(x); }
        let added = a.union_with(&b);
        prop_assert_eq!(added, sb.difference(&sa).count());
        let union: Vec<usize> = sa.union(&sb).copied().collect();
        prop_assert_eq!(a.iter_ones().collect::<Vec<_>>(), union);
        let removed = a.and_not(&b);
        prop_assert_eq!(removed, sb.len());
        let diff: Vec<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(a.iter_ones().collect::<Vec<_>>(), diff);
    }
}
