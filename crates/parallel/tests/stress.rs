//! Soak/stress tests for the threading substrate: rapid region churn,
//! oversubscription, deep async cascades, and cross-thread pool sharing.
//! These are the failure modes a work-sharing runtime actually exhibits
//! (lost wakeups, double-dispatch, premature quiescence).

use essentials_parallel::{run_async, Schedule, SpinBarrier, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Scales a workload by `ESSENTIALS_STRESS_SCALE` (default 1). The
/// sanitizer CI job raises it so instrumented runs still soak the pool;
/// local runs stay fast.
fn scaled(n: usize) -> usize {
    match std::env::var("ESSENTIALS_STRESS_SCALE") {
        Ok(s) => n * s.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => n,
    }
}

#[test]
fn thousands_of_tiny_regions_do_not_lose_wakeups() {
    let pool = ThreadPool::new(4);
    let count = AtomicUsize::new(0);
    let regions = scaled(5_000);
    for _ in 0..regions {
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.into_inner(), regions * 4);
}

#[test]
fn oversubscribed_pool_still_completes() {
    // Far more workers than cores: forces heavy time-slicing through every
    // code path (barrier spins, queue steals).
    let pool = ThreadPool::new(16);
    let barrier = SpinBarrier::new(16);
    let count = AtomicUsize::new(0);
    pool.run(|_| {
        for _ in 0..25 {
            count.fetch_add(1, Ordering::Relaxed);
            barrier.wait();
        }
    });
    assert_eq!(count.into_inner(), 16 * 25);
}

#[test]
fn async_cascade_of_depth_ten_thousand() {
    // A strictly sequential dependency chain through the async engine: each
    // item pushes exactly one successor. Tests that quiescence detection
    // never fires early even when the queue is nearly always empty.
    let pool = ThreadPool::new(4);
    let max_seen = AtomicUsize::new(0);
    let depth = scaled(10_000);
    let stats = run_async(&pool, vec![0usize], |item, pusher| {
        max_seen.fetch_max(item, Ordering::Relaxed);
        if item < depth {
            pusher.push(item + 1);
        }
    });
    assert_eq!(stats.processed, depth + 1);
    assert_eq!(max_seen.into_inner(), depth);
}

#[test]
fn wide_async_burst() {
    // One seed fans out to 50k items in one handler call.
    let pool = ThreadPool::new(4);
    let width = scaled(50_000);
    let stats = run_async(&pool, vec![usize::MAX], |item, pusher| {
        if item == usize::MAX {
            for i in 0..width {
                pusher.push(i);
            }
        }
    });
    assert_eq!(stats.processed, width + 1);
}

#[test]
fn pool_shared_across_threads_with_interleaved_regions_and_reductions() {
    let pool = Arc::new(ThreadPool::new(3));
    let mut handles = Vec::new();
    for t in 0..6 {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut totals = Vec::new();
            for round in 0..20 {
                let n = 1000 + t * 37 + round;
                let sum = pool.parallel_reduce(
                    0..n,
                    Schedule::Dynamic(64),
                    0u64,
                    |i| i as u64,
                    |a, b| a + b,
                );
                assert_eq!(sum, (n as u64 * (n as u64 - 1)) / 2);
                totals.push(sum);
            }
            totals.len()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 20);
    }
}

#[test]
fn parallel_for_with_huge_grain_and_tiny_range() {
    let pool = ThreadPool::new(4);
    let count = AtomicUsize::new(0);
    pool.parallel_for(0..3, Schedule::Dynamic(1_000_000), |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.into_inner(), 3);
}

#[test]
fn guided_schedule_on_pathological_range() {
    // Range boundary exactly at a chunk edge, many threads.
    let pool = ThreadPool::new(8);
    let hits: Vec<AtomicUsize> = (0..4096).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(0..4096, Schedule::Guided(1), |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}
