//! The Pregel-style BSP engine over partitioned graphs.
//!
//! One OS thread per rank; each superstep is *drain inboxes → compute
//! vertex programs on active vertices → send*; a sense-reversing barrier
//! separates the phases, and the computation halts when a superstep sends
//! no messages (global quiescence — the message-passing analogue of the
//! empty-frontier convergence condition).

use essentials_graph::{EdgeValue, GraphBase, VertexId};
use essentials_parallel::SpinBarrier;
use essentials_partition::PartitionedGraph;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::mailbox::Mailbox;

/// A sender-side message combiner: an associative, commutative merge of two
/// messages addressed to the same vertex (see [`VertexProgram::combiner`]).
pub type CombinerFn<M> = fn(M, M) -> M;

/// Read-only view of a vertex's out-edges handed to `compute`.
pub struct NeighborView<'a, W> {
    /// Destinations (global ids).
    pub dsts: &'a [VertexId],
    /// Weights aligned with `dsts`.
    pub weights: &'a [W],
}

/// Send-side context handed to `compute`.
pub struct ComputeCtx<'a, M> {
    superstep: usize,
    rank: usize,
    mailbox: &'a Mailbox<M>,
    owner: &'a dyn Fn(VertexId) -> usize,
    sent: &'a AtomicUsize,
    /// Sender-side combining (Pregel combiners): when the program supplies
    /// a combiner, messages stage here per destination and merge before
    /// transmission. Ranks are single OS threads, so a RefCell suffices.
    staging: Option<RefCell<HashMap<VertexId, M>>>,
    combiner: Option<fn(M, M) -> M>,
}

impl<M> ComputeCtx<'_, M> {
    /// Current superstep (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// This vertex's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Sends `msg` to vertex `dst` (delivered next superstep, on `dst`'s
    /// owner rank). With a combiner, messages to the same destination are
    /// merged locally and transmitted once at the end of the compute phase.
    pub fn send(&self, dst: VertexId, msg: M) {
        if let (Some(staging), Some(combine)) = (&self.staging, self.combiner) {
            let mut staged = staging.borrow_mut();
            match staged.remove(&dst) {
                Some(prev) => {
                    staged.insert(dst, combine(prev, msg));
                }
                None => {
                    staged.insert(dst, msg);
                }
            }
            return;
        }
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.mailbox.send(self.rank, (self.owner)(dst), dst, msg);
    }

    /// Flushes combiner-staged messages into the mailbox (end of compute
    /// phase). No-op without a combiner.
    fn flush(&self) {
        if let Some(staging) = &self.staging {
            for (dst, msg) in staging.borrow_mut().drain() {
                self.sent.fetch_add(1, Ordering::Relaxed);
                self.mailbox.send(self.rank, (self.owner)(dst), dst, msg);
            }
        }
    }
}

/// A vertex program in the Pregel mold: per-vertex value, typed messages,
/// compute invoked on vertices that received messages (plus the seed set at
/// superstep 0).
pub trait VertexProgram<W: EdgeValue>: Sync {
    /// Per-vertex state.
    type Value: Clone + Send;
    /// Message payload.
    type Msg: Send;

    /// Initial value of every vertex.
    fn init(&self, v: VertexId) -> Self::Value;

    /// Optional sender-side combiner: an associative, commutative merge of
    /// two messages addressed to the same vertex (min for BFS/SSSP, sum
    /// for PageRank). Returning `Some` cuts message volume — each rank
    /// transmits at most one message per destination per superstep.
    fn combiner(&self) -> Option<CombinerFn<Self::Msg>> {
        None
    }

    /// Invoked when `v` is active. `msgs` holds everything addressed to `v`
    /// last superstep (empty only in superstep 0 for seeds). Implementations
    /// mutate their value and send messages; a vertex halts implicitly by
    /// sending nothing and is re-awoken by incoming messages.
    fn compute(
        &self,
        ctx: &ComputeCtx<'_, Self::Msg>,
        v: VertexId,
        value: &mut Self::Value,
        out: NeighborView<'_, W>,
        msgs: &[Self::Msg],
    );
}

/// Statistics of one Pregel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpStats {
    /// Supersteps executed (including the final quiescent one).
    pub supersteps: usize,
    /// Messages sent in total.
    pub messages_total: usize,
    /// Messages that crossed ranks — the communication volume that
    /// partition quality controls.
    pub messages_remote: usize,
}

/// Runs `program` over `pg` with `seeds` active at superstep 0. Returns the
/// final value of every vertex (global order) and run statistics.
pub fn run_pregel<W, P>(
    pg: &PartitionedGraph<W>,
    program: &P,
    seeds: &[VertexId],
) -> (Vec<P::Value>, MpStats)
where
    W: EdgeValue,
    P: VertexProgram<W>,
{
    let k = pg.num_parts();
    let n = pg.num_vertices();
    let mailbox: Mailbox<P::Msg> = Mailbox::new(k);
    let barrier = SpinBarrier::new(k);
    // Two superstep-parity slots so resets never race reads (see loop).
    let sent = [AtomicUsize::new(0), AtomicUsize::new(0)];
    let supersteps = AtomicUsize::new(0);
    let owner = |v: VertexId| pg.owner_of(v) as usize;

    // Per-rank final values, collected after the scoped threads join.
    let mut rank_values: Vec<Vec<P::Value>> = Vec::with_capacity(k);
    for r in 0..k {
        rank_values.push(pg.part(r).owned.iter().map(|&v| program.init(v)).collect());
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (rank, values) in rank_values.iter_mut().enumerate() {
            let mailbox = &mailbox;
            let barrier = &barrier;
            let sent = &sent;
            let supersteps = &supersteps;
            let owner = &owner;
            let seeds = &seeds;
            handles.push(scope.spawn(move || {
                let part = pg.part(rank);
                // local index of global vertex (only valid for owned ids)
                let local_of = |v: VertexId| -> usize {
                    part.owned
                        .binary_search(&v)
                        .expect("message to non-owned vertex")
                };
                let mut step = 0usize;
                loop {
                    // ---- deliver ---------------------------------------
                    let mut inbox = mailbox.drain_for(rank);
                    inbox.sort_unstable_by_key(|&(v, _)| v);
                    // Barrier (a): all drains complete before anyone sends.
                    barrier.wait();
                    let combiner = program.combiner();
                    let ctx = ComputeCtx {
                        superstep: step,
                        rank,
                        mailbox,
                        owner,
                        sent: &sent[step % 2],
                        staging: combiner.map(|_| RefCell::new(HashMap::new())),
                        combiner,
                    };
                    // ---- compute + send --------------------------------
                    let mut run_vertex = |v: VertexId, msgs: &[P::Msg]| {
                        let li = local_of(v);
                        let out = NeighborView {
                            dsts: &part.cols[part.offsets[li]..part.offsets[li + 1]],
                            weights: &part.vals[part.offsets[li]..part.offsets[li + 1]],
                        };
                        let mut value = values[li].clone();
                        program.compute(&ctx, v, &mut value, out, msgs);
                        values[li] = value;
                    };
                    if step == 0 {
                        for &s in seeds.iter() {
                            if owner(s) == rank {
                                run_vertex(s, &[]);
                            }
                        }
                    }
                    // Group the (sorted) inbox by destination vertex.
                    let mut groups: Vec<(VertexId, Vec<P::Msg>)> = Vec::new();
                    for (v, m) in inbox {
                        match groups.last_mut() {
                            Some((gv, msgs)) if *gv == v => msgs.push(m),
                            _ => groups.push((v, vec![m])),
                        }
                    }
                    for (v, msgs) in &groups {
                        run_vertex(*v, msgs);
                    }
                    ctx.flush();
                    // Barrier (b): all sends of this step complete.
                    if barrier.wait() {
                        supersteps.fetch_add(1, Ordering::Relaxed);
                    }
                    let sent_now = sent[step % 2].load(Ordering::Acquire);
                    // Reset the *other* slot for the step after next; every
                    // rank storing 0 is idempotent, and barrier (a) of the
                    // next loop orders these resets before any increment.
                    sent[(step + 1) % 2].store(0, Ordering::Release);
                    if sent_now == 0 {
                        break;
                    }
                    step += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });

    // Assemble global values.
    let mut out: Vec<Option<P::Value>> = vec![None; n];
    for (r, values) in rank_values.into_iter().enumerate() {
        for (li, val) in values.into_iter().enumerate() {
            out[pg.part(r).owned[li] as usize] = Some(val);
        }
    }
    let values = out
        .into_iter()
        .map(|v| v.expect("vertex not owned by any rank"))
        .collect();
    (
        values,
        MpStats {
            supersteps: supersteps.load(Ordering::Relaxed),
            messages_total: mailbox.total_messages(),
            messages_remote: mailbox.remote_messages(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Graph;
    use essentials_partition::{random_partition, PartitionedGraph};

    /// A ping program: superstep 0 seeds send their id; receivers record
    /// the max id seen and stop.
    struct MaxId;
    impl VertexProgram<()> for MaxId {
        type Value = u32;
        type Msg = u32;
        fn init(&self, _v: VertexId) -> u32 {
            0
        }
        fn compute(
            &self,
            ctx: &ComputeCtx<'_, u32>,
            v: VertexId,
            value: &mut u32,
            out: NeighborView<'_, ()>,
            msgs: &[u32],
        ) {
            if ctx.superstep() == 0 {
                for &d in out.dsts {
                    ctx.send(d, v);
                }
            } else {
                *value = (*value).max(msgs.iter().copied().max().unwrap_or(0));
            }
        }
    }

    #[test]
    fn one_superstep_ping() {
        // Star out of 0: vertices 1..4 should record 0's ping... use ids:
        // edges 3->1, 3->2: receivers record 3.
        let g = Graph::<()>::from_coo(&essentials_graph::Coo::from_edges(
            4,
            [(3, 1, ()), (3, 2, ())],
        ));
        let p = random_partition(4, 2, 1);
        let pg = PartitionedGraph::build(&g, &p);
        let seeds: Vec<VertexId> = (0..4).collect();
        let (values, stats) = run_pregel(&pg, &MaxId, &seeds);
        assert_eq!(values[1], 3);
        assert_eq!(values[2], 3);
        assert_eq!(values[0], 0);
        assert_eq!(stats.messages_total, 2);
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn no_seeds_terminates_immediately() {
        let g = Graph::<()>::from_coo(&essentials_graph::Coo::from_edges(2, [(0, 1, ())]));
        let p = random_partition(2, 2, 3);
        let pg = PartitionedGraph::build(&g, &p);
        let (_, stats) = run_pregel(&pg, &MaxId, &[]);
        assert_eq!(stats.messages_total, 0);
        assert_eq!(stats.supersteps, 1);
    }

    #[test]
    fn single_rank_works() {
        let g = Graph::<()>::from_coo(&essentials_graph::Coo::from_edges(
            3,
            [(0, 1, ()), (1, 2, ())],
        ));
        let p = essentials_partition::Partitioning::new(vec![0, 0, 0], 1);
        let pg = PartitionedGraph::build(&g, &p);
        let (values, stats) = run_pregel(&pg, &MaxId, &[0]);
        assert_eq!(values[1], 0);
        assert_eq!(stats.messages_remote, 0);
    }
}
