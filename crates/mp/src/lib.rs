//! `essentials-mp` — the message-passing communication model (§III-B).
//!
//! The paper's claim: *"Expressing both models under the same framework can
//! potentially allow for performance benefits in hierarchical distributed
//! systems"* — with frontiers-as-queues carrying the active set as
//! messages. This crate realizes the model fully: vertices live on
//! **ranks** (threads standing in for processes — no cluster is available
//! in this reproduction, see DESIGN.md), data moves **only** through typed
//! mailboxes, and computation proceeds in Pregel-style supersteps over a
//! partitioned graph from `essentials-partition`.
//!
//! * [`mailbox`] — per-(receiver, sender) buffered channels with superstep
//!   delivery semantics;
//! * [`pregel`] — the BSP engine: vertex programs, vote-to-halt via
//!   message quiescence, barrier-synchronized supersteps;
//! * [`algorithms`] — BFS, SSSP and PageRank as vertex programs, verified
//!   against their shared-memory counterparts (experiment E8);
//! * [`async_mp`] — the **asynchronous** message-passing mode (Table I's
//!   fourth timing×communication quadrant): no supersteps, messages
//!   processed on arrival, termination by global quiescence.

#![warn(missing_docs)]

pub mod algorithms;
pub mod async_mp;
pub mod mailbox;
pub mod pregel;

pub use async_mp::{async_mp_bfs, async_mp_sssp, run_async_mp, AsyncMpStats, AsyncSender};
pub use mailbox::Mailbox;
pub use pregel::{run_pregel, CombinerFn, ComputeCtx, MpStats, NeighborView, VertexProgram};
