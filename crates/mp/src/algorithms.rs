//! Graph algorithms as vertex programs — the Pregel row of Table I,
//! verified against their shared-memory counterparts in E8.

use essentials_graph::{EdgeValue, VertexId};
use essentials_partition::PartitionedGraph;

use crate::pregel::{run_pregel, ComputeCtx, MpStats, NeighborView, VertexProgram};

/// Level marker for unvisited vertices (mirrors `essentials_algos::bfs`).
pub const UNVISITED: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

struct BfsProgram {
    source: VertexId,
}

impl<W: EdgeValue> VertexProgram<W> for BfsProgram {
    type Value = u32;
    type Msg = u32;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            UNVISITED
        }
    }

    fn compute(
        &self,
        ctx: &ComputeCtx<'_, u32>,
        _v: VertexId,
        value: &mut u32,
        out: NeighborView<'_, W>,
        msgs: &[u32],
    ) {
        if ctx.superstep() == 0 {
            // Seed: announce level 1 to neighbors.
            for &d in out.dsts {
                ctx.send(d, 1);
            }
            return;
        }
        if *value != UNVISITED {
            return; // already settled; stay halted
        }
        if let Some(&lvl) = msgs.iter().min() {
            *value = lvl;
            for &d in out.dsts {
                ctx.send(d, lvl + 1);
            }
        }
    }
}

/// Message-passing BFS: levels identical to `essentials_algos::bfs`.
pub fn mp_bfs<W: EdgeValue>(pg: &PartitionedGraph<W>, source: VertexId) -> (Vec<u32>, MpStats) {
    run_pregel(pg, &BfsProgram { source }, &[source])
}

/// Combiner-enabled BFS program: same levels, min-combined messages.
struct BfsCombined {
    source: VertexId,
}

impl<W: EdgeValue> VertexProgram<W> for BfsCombined {
    type Value = u32;
    type Msg = u32;
    fn init(&self, v: VertexId) -> u32 {
        <BfsProgram as VertexProgram<W>>::init(
            &BfsProgram {
                source: self.source,
            },
            v,
        )
    }
    fn combiner(&self) -> Option<fn(u32, u32) -> u32> {
        Some(u32::min)
    }
    fn compute(
        &self,
        ctx: &ComputeCtx<'_, u32>,
        v: VertexId,
        value: &mut u32,
        out: NeighborView<'_, W>,
        msgs: &[u32],
    ) {
        BfsProgram {
            source: self.source,
        }
        .compute(ctx, v, value, out, msgs)
    }
}

/// [`mp_bfs`] with sender-side min-combining: identical levels, at most
/// one message per (rank, destination) per superstep.
pub fn mp_bfs_combined<W: EdgeValue>(
    pg: &PartitionedGraph<W>,
    source: VertexId,
) -> (Vec<u32>, MpStats) {
    run_pregel(pg, &BfsCombined { source }, &[source])
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

struct SsspProgram {
    source: VertexId,
}

impl VertexProgram<f32> for SsspProgram {
    type Value = f32;
    type Msg = f32;

    fn init(&self, v: VertexId) -> f32 {
        if v == self.source {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn compute(
        &self,
        ctx: &ComputeCtx<'_, f32>,
        _v: VertexId,
        value: &mut f32,
        out: NeighborView<'_, f32>,
        msgs: &[f32],
    ) {
        let candidate = msgs.iter().copied().fold(f32::INFINITY, f32::min);
        let improved = if ctx.superstep() == 0 {
            true // seed relaxes its edges unconditionally
        } else if candidate < *value {
            *value = candidate;
            true
        } else {
            false
        };
        if improved {
            for (&d, &w) in out.dsts.iter().zip(out.weights) {
                ctx.send(d, *value + w);
            }
        }
    }
}

/// Message-passing SSSP: distances identical to `essentials_algos::sssp`.
pub fn mp_sssp(pg: &PartitionedGraph<f32>, source: VertexId) -> (Vec<f32>, MpStats) {
    run_pregel(pg, &SsspProgram { source }, &[source])
}

/// Combiner-enabled SSSP program (min over distance proposals).
struct SsspCombined {
    source: VertexId,
}

impl VertexProgram<f32> for SsspCombined {
    type Value = f32;
    type Msg = f32;
    fn init(&self, v: VertexId) -> f32 {
        SsspProgram {
            source: self.source,
        }
        .init(v)
    }
    fn combiner(&self) -> Option<fn(f32, f32) -> f32> {
        Some(f32::min)
    }
    fn compute(
        &self,
        ctx: &ComputeCtx<'_, f32>,
        v: VertexId,
        value: &mut f32,
        out: NeighborView<'_, f32>,
        msgs: &[f32],
    ) {
        SsspProgram {
            source: self.source,
        }
        .compute(ctx, v, value, out, msgs)
    }
}

/// [`mp_sssp`] with sender-side min-combining.
pub fn mp_sssp_combined(pg: &PartitionedGraph<f32>, source: VertexId) -> (Vec<f32>, MpStats) {
    run_pregel(pg, &SsspCombined { source }, &[source])
}

// ---------------------------------------------------------------------------
// PageRank (fixed number of iterations)
// ---------------------------------------------------------------------------

struct PrProgram {
    n: usize,
    damping: f64,
    iterations: usize,
}

impl<W: EdgeValue> VertexProgram<W> for PrProgram {
    type Value = f64;
    type Msg = f64;

    fn init(&self, _v: VertexId) -> f64 {
        1.0 / self.n as f64
    }

    fn compute(
        &self,
        ctx: &ComputeCtx<'_, f64>,
        _v: VertexId,
        value: &mut f64,
        out: NeighborView<'_, W>,
        msgs: &[f64],
    ) {
        if ctx.superstep() > 0 {
            let sum: f64 = msgs.iter().sum();
            *value = (1.0 - self.damping) / self.n as f64 + self.damping * sum;
        }
        // Keep iterating for a fixed number of supersteps; quiescence after.
        if ctx.superstep() < self.iterations && !out.dsts.is_empty() {
            let share = *value / out.dsts.len() as f64;
            for &d in out.dsts {
                ctx.send(d, share);
            }
        }
    }
}

/// Message-passing PageRank run for a fixed number of supersteps on a
/// dangling-free graph (every vertex needs an out-edge for mass
/// conservation; callers symmetrize or filter, as E8 does).
pub fn mp_pagerank<W: EdgeValue>(
    pg: &PartitionedGraph<W>,
    damping: f64,
    iterations: usize,
) -> (Vec<f64>, MpStats) {
    let n = pg.num_vertices_global();
    let seeds: Vec<VertexId> = (0..n as VertexId).collect();
    run_pregel(
        pg,
        &PrProgram {
            n,
            damping,
            iterations,
        },
        &seeds,
    )
}

/// Helper trait shim: `PartitionedGraph` exposes `num_vertices` through the
/// graph traits; re-export a direct method name for this module.
trait NumVertices {
    fn num_vertices_global(&self) -> usize;
}

impl<W: EdgeValue> NumVertices for PartitionedGraph<W> {
    fn num_vertices_global(&self) -> usize {
        use essentials_graph::GraphBase;
        self.num_vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_core::prelude::*;
    use essentials_gen as gen;
    use essentials_partition::{multilevel_partition, random_partition, MultilevelConfig};

    #[test]
    fn mp_bfs_matches_shared_memory_bfs() {
        let g = Graph::<()>::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 3));
        let oracle = essentials_algos::bfs::bfs_sequential(&g, 0);
        for k in [1, 2, 4] {
            let p = random_partition(g.get_num_vertices(), k, 7);
            let pg = essentials_partition::PartitionedGraph::build(&g, &p);
            let (levels, stats) = mp_bfs(&pg, 0);
            assert_eq!(levels, oracle.level, "k={k}");
            assert!(stats.supersteps >= 2);
        }
    }

    #[test]
    fn mp_sssp_matches_dijkstra() {
        let coo = gen::gnm(300, 2400, 5);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 9));
        let oracle = essentials_algos::sssp::dijkstra(&g, 0);
        let p = multilevel_partition(&g, MultilevelConfig::new(3));
        let pg = essentials_partition::PartitionedGraph::build(&g, &p);
        let (dist, _) = mp_sssp(&pg, 0);
        for (a, b) in dist.iter().zip(&oracle.dist) {
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn mp_pagerank_matches_pull_pagerank() {
        // Symmetrized graph => no dangling vertices.
        let g = GraphBuilder::from_coo(gen::gnm(150, 900, 2))
            .symmetrize()
            .deduplicate()
            .with_csc()
            .build();
        let iterations = 30;
        let p = random_partition(g.get_num_vertices(), 4, 3);
        let pg = essentials_partition::PartitionedGraph::build(&g, &p);
        let (mp_rank, _) = mp_pagerank(&pg, 0.85, iterations);

        let ctx = Context::new(2);
        let cfg = essentials_algos::pagerank::PrConfig {
            damping: 0.85,
            tolerance: 0.0,
            max_iterations: iterations,
        };
        let sm = essentials_algos::pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
        for (a, b) in mp_rank.iter().zip(&sm.rank) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn combiners_preserve_results_and_cut_message_volume() {
        // A hub-heavy graph: many frontier vertices propose to the same
        // destinations, so min-combining must strictly reduce volume.
        let coo = gen::rmat(9, 10, gen::RmatParams::default(), 6);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 2));
        let p = random_partition(g.get_num_vertices(), 2, 4);
        let pg = essentials_partition::PartitionedGraph::build(&g, &p);

        let (d_plain, s_plain) = mp_sssp(&pg, 0);
        let (d_comb, s_comb) = mp_sssp_combined(&pg, 0);
        assert_eq!(d_plain, d_comb);
        assert!(
            s_comb.messages_total < s_plain.messages_total,
            "combined {} !< plain {}",
            s_comb.messages_total,
            s_plain.messages_total
        );

        let (l_plain, b_plain) = mp_bfs(&pg, 0);
        let (l_comb, b_comb) = mp_bfs_combined(&pg, 0);
        assert_eq!(l_plain, l_comb);
        assert!(b_comb.messages_total <= b_plain.messages_total);
    }

    #[test]
    fn better_partitions_send_fewer_remote_messages() {
        let g = GraphBuilder::from_coo(gen::grid2d(24, 24))
            .deduplicate()
            .build();
        let n = g.get_num_vertices();
        let rnd = random_partition(n, 4, 1);
        let ml = multilevel_partition(&g, MultilevelConfig::new(4));
        let pg_rnd = essentials_partition::PartitionedGraph::build(&g, &rnd);
        let pg_ml = essentials_partition::PartitionedGraph::build(&g, &ml);
        let (_, s_rnd) = mp_bfs(&pg_rnd, 0);
        let (_, s_ml) = mp_bfs(&pg_ml, 0);
        assert!(
            s_ml.messages_remote * 2 < s_rnd.messages_remote,
            "multilevel {} vs random {}",
            s_ml.messages_remote,
            s_rnd.messages_remote
        );
    }
}
