//! Asynchronous message passing — the fourth quadrant of Table I
//! (asynchronous timing × message-passing communication).
//!
//! §III-B of the paper: *"depending on the size and workload imbalance of a
//! frontier, an asynchronous execution model with message-passing to
//! communicate the active working set can be more efficient."* Here ranks
//! have **no supersteps and no barriers**: each rank loops *receive →
//! compute → send* continuously, processing messages the moment they
//! arrive (possibly one at a time, possibly batched by arrival). The
//! computation ends at global quiescence, detected with an in-flight
//! message counter (count up on send, down after the handler returns —
//! the same scheme as the shared-memory async engine, applied across
//! ranks).
//!
//! Handlers must therefore be **monotone relaxations**: messages can arrive
//! in any order and the per-vertex handler may run many times; the fixpoint
//! is the answer. BFS/SSSP qualify; iteration-numbered algorithms
//! (PageRank) do not — they belong to the BSP engine.

use essentials_graph::{EdgeValue, GraphBase, VertexId};
use essentials_partition::PartitionedGraph;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Statistics of an asynchronous message-passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncMpStats {
    /// Messages delivered (handler invocations).
    pub messages_processed: usize,
    /// Messages that crossed ranks.
    pub messages_remote: usize,
    /// Receive-loop polls that found an empty inbox (idle pressure).
    pub idle_polls: usize,
}

/// Send-side handle given to async handlers.
pub struct AsyncSender<'a, M> {
    inboxes: &'a [Mutex<VecDeque<(VertexId, M)>>],
    in_flight: &'a AtomicUsize,
    remote: &'a AtomicUsize,
    owner_of: &'a (dyn Fn(VertexId) -> usize + Sync),
    rank: usize,
}

impl<M> AsyncSender<'_, M> {
    /// Sends `msg` to `dst`'s owner; it may be processed before this call
    /// returns (by another rank) — there is no superstep boundary.
    pub fn send(&self, dst: VertexId, msg: M) {
        let to = (self.owner_of)(dst);
        // Count before publishing so in_flight == 0 implies quiescence.
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        if to != self.rank {
            self.remote.fetch_add(1, Ordering::Relaxed);
        }
        self.inboxes[to].lock().push_back((dst, msg));
    }
}

/// Runs an asynchronous message-driven computation over the partitioned
/// graph: `handler(rank, vertex, message, sender)` is invoked for every
/// delivered message, with no ordering or dedup guarantees. `seeds` are
/// delivered as initial messages. Returns at global quiescence.
pub fn run_async_mp<W, M, F>(
    pg: &PartitionedGraph<W>,
    seeds: Vec<(VertexId, M)>,
    handler: F,
) -> AsyncMpStats
where
    W: EdgeValue,
    M: Send,
    F: Fn(usize, VertexId, M, &AsyncSender<'_, M>) + Sync,
{
    let k = pg.num_parts();
    let inboxes: Vec<Mutex<VecDeque<(VertexId, M)>>> =
        (0..k).map(|_| Mutex::new(VecDeque::new())).collect();
    let in_flight = AtomicUsize::new(seeds.len());
    let processed = AtomicUsize::new(0);
    let remote = AtomicUsize::new(0);
    let idle = AtomicUsize::new(0);
    let owner_of = |v: VertexId| pg.owner_of(v) as usize;

    for (v, m) in seeds {
        inboxes[owner_of(v)].lock().push_back((v, m));
    }
    if in_flight.load(Ordering::Relaxed) == 0 {
        return AsyncMpStats {
            messages_processed: 0,
            messages_remote: 0,
            idle_polls: 0,
        };
    }

    std::thread::scope(|scope| {
        for rank in 0..k {
            let inboxes = &inboxes;
            let in_flight = &in_flight;
            let processed = &processed;
            let remote = &remote;
            let idle = &idle;
            let handler = &handler;
            let owner_of = &owner_of;
            scope.spawn(move || {
                let sender = AsyncSender {
                    inboxes,
                    in_flight,
                    remote,
                    owner_of,
                    rank,
                };
                loop {
                    let next = inboxes[rank].lock().pop_front();
                    match next {
                        Some((v, m)) => {
                            handler(rank, v, m, &sender);
                            processed.fetch_add(1, Ordering::Relaxed);
                            in_flight.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            // Quiescent only when no message is queued
                            // anywhere *and* no handler is running.
                            if in_flight.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            idle.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    AsyncMpStats {
        messages_processed: processed.into_inner(),
        messages_remote: remote.into_inner(),
        idle_polls: idle.into_inner(),
    }
}

/// Asynchronous message-passing SSSP: each message is a distance proposal;
/// an improvement relaxes the local vertex and immediately (no superstep)
/// proposes to its neighbors. Identical fixpoint to every other SSSP.
pub fn async_mp_sssp(pg: &PartitionedGraph<f32>, source: VertexId) -> (Vec<f32>, AsyncMpStats) {
    use essentials_parallel::atomics::AtomicF32;
    let n = pg.num_vertices();
    let dist: Vec<AtomicF32> = (0..n)
        .map(|i| {
            AtomicF32::new(if i == source as usize {
                0.0
            } else {
                f32::INFINITY
            })
        })
        .collect();
    let stats = run_async_mp(
        pg,
        vec![(source, 0.0f32)],
        |_rank, v, proposal: f32, sender| {
            // Monotone relaxation: accept only strict improvements (the
            // seed's 0.0 "improves" nothing but still must propagate).
            let cur = dist[v as usize].load(Ordering::Acquire);
            if proposal > cur {
                return;
            }
            let part = pg.part(pg.owner_of(v) as usize);
            let li = part.owned.binary_search(&v).expect("owned vertex");
            let row = part.offsets[li]..part.offsets[li + 1];
            for (dst, w) in part.cols[row.clone()].iter().zip(&part.vals[row]) {
                let cand = proposal + w;
                if dist[*dst as usize].fetch_min(cand, Ordering::AcqRel) > cand {
                    sender.send(*dst, cand);
                }
            }
        },
    );
    (dist.into_iter().map(AtomicF32::into_inner).collect(), stats)
}

/// Asynchronous message-passing BFS (monotone level relaxation).
pub fn async_mp_bfs<W: EdgeValue>(
    pg: &PartitionedGraph<W>,
    source: VertexId,
) -> (Vec<u32>, AsyncMpStats) {
    use std::sync::atomic::AtomicU32;
    const UNVISITED: u32 = u32::MAX;
    let n = pg.num_vertices();
    let level: Vec<AtomicU32> = (0..n)
        .map(|i| AtomicU32::new(if i == source as usize { 0 } else { UNVISITED }))
        .collect();
    let stats = run_async_mp(pg, vec![(source, 0u32)], |_rank, v, lvl: u32, sender| {
        if lvl > level[v as usize].load(Ordering::Acquire) {
            return;
        }
        let part = pg.part(pg.owner_of(v) as usize);
        let li = part.owned.binary_search(&v).expect("owned vertex");
        for dst in &part.cols[part.offsets[li]..part.offsets[li + 1]] {
            let cand = lvl + 1;
            if level[*dst as usize].fetch_min(cand, Ordering::AcqRel) > cand {
                sender.send(*dst, cand);
            }
        }
    });
    (
        level.into_iter().map(AtomicU32::into_inner).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;
    use essentials_graph::{Graph, GraphBuilder};
    use essentials_partition::{multilevel_partition, random_partition, MultilevelConfig};

    #[test]
    fn empty_seeds_return_immediately() {
        let g = Graph::<f32>::from_coo(&essentials_graph::Coo::new(3));
        let p = random_partition(3, 2, 1);
        let pg = PartitionedGraph::build(&g, &p);
        let stats = run_async_mp(&pg, Vec::<(VertexId, u32)>::new(), |_, _, _, _| {});
        assert_eq!(stats.messages_processed, 0);
    }

    #[test]
    fn async_mp_sssp_matches_dijkstra_across_rank_counts() {
        let coo = gen::gnm(250, 1800, 8);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 4));
        let oracle = essentials_algos::sssp::dijkstra(&g, 0);
        for k in [1usize, 2, 4] {
            let p = random_partition(g.get_num_vertices(), k, 5);
            let pg = PartitionedGraph::build(&g, &p);
            let (dist, stats) = async_mp_sssp(&pg, 0);
            for (a, b) in dist.iter().zip(&oracle.dist) {
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4,
                    "k={k}: {a} vs {b}"
                );
            }
            assert!(stats.messages_processed > 0);
        }
    }

    #[test]
    fn async_mp_bfs_matches_sequential() {
        let g = GraphBuilder::from_coo(gen::grid2d(20, 20))
            .deduplicate()
            .build();
        let oracle = essentials_algos::bfs::bfs_sequential(&g, 0);
        let p = multilevel_partition(&g, MultilevelConfig::new(3));
        let pg = PartitionedGraph::build(&g, &p);
        let (levels, _) = async_mp_bfs(&pg, 0);
        assert_eq!(levels, oracle.level);
    }

    #[test]
    fn async_does_at_least_bsp_message_work() {
        // Asynchrony admits stale propagation: messages >= BSP's (which
        // sends exactly one proposal per improving relaxation round).
        let coo = gen::rmat(8, 8, gen::RmatParams::default(), 2);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 1));
        let p = random_partition(g.get_num_vertices(), 2, 1);
        let pg = PartitionedGraph::build(&g, &p);
        let (d_async, s_async) = async_mp_sssp(&pg, 0);
        let (d_bsp, _s_bsp) = crate::algorithms::mp_sssp(&pg, 0);
        assert_eq!(d_async, d_bsp);
        assert!(s_async.messages_processed > 0);
    }
}
