//! Typed mailboxes: the only channel between ranks.
//!
//! `Mailbox<M>` holds one buffer per (receiver, sender) pair, so concurrent
//! sends from different ranks never contend on a lock, and a receiver
//! drains all its buffers at a superstep boundary. This is the
//! message-passing realization of the frontier: *pushing a vertex id (plus
//! payload) into a mailbox is activating it on its owner*.

use essentials_graph::VertexId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `(vertex, payload)` message addressed to the vertex's owner rank.
pub type Envelope<M> = (VertexId, M);

/// Per-(receiver, sender) buffered message store for `k` ranks.
pub struct Mailbox<M> {
    /// `bufs[to][from]`.
    bufs: Vec<Vec<Mutex<Vec<Envelope<M>>>>>,
    /// Cumulative messages sent (stats).
    total: AtomicUsize,
    /// Cumulative messages whose sender rank differed from the receiver.
    remote: AtomicUsize,
}

impl<M> Mailbox<M> {
    /// A mailbox for `k` ranks.
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Mailbox {
            bufs: (0..k)
                .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            total: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.bufs.len()
    }

    /// Sends `msg` to vertex `dst` owned by rank `to`, from rank `from`.
    pub fn send(&self, from: usize, to: usize, dst: VertexId, msg: M) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if from != to {
            self.remote.fetch_add(1, Ordering::Relaxed);
        }
        self.bufs[to][from].lock().push((dst, msg));
    }

    /// Drains everything addressed to rank `to` (all senders). Called at a
    /// superstep boundary when no sender is active.
    pub fn drain_for(&self, to: usize) -> Vec<Envelope<M>> {
        let row = &self.bufs[to];
        let mut out = Vec::new();
        for buf in row {
            out.append(&mut buf.lock());
        }
        out
    }

    /// Messages sent over the mailbox's lifetime.
    pub fn total_messages(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Cross-rank messages over the lifetime — the quantity edge-cut
    /// predicts (experiment E4/E8).
    pub fn remote_messages(&self) -> usize {
        self.remote.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_drain_round_trip() {
        let mb: Mailbox<u32> = Mailbox::new(3);
        mb.send(0, 1, 7, 100);
        mb.send(2, 1, 8, 200);
        mb.send(1, 1, 9, 300); // local
        let mut got = mb.drain_for(1);
        got.sort_unstable();
        assert_eq!(got, vec![(7, 100), (8, 200), (9, 300)]);
        assert!(mb.drain_for(1).is_empty());
        assert_eq!(mb.total_messages(), 3);
        assert_eq!(mb.remote_messages(), 2);
    }

    #[test]
    fn ranks_are_isolated() {
        let mb: Mailbox<()> = Mailbox::new(2);
        mb.send(0, 0, 1, ());
        assert!(mb.drain_for(1).is_empty());
        assert_eq!(mb.drain_for(0).len(), 1);
    }
}
