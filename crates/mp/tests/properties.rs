//! Property-based tests: message-passing execution must agree with
//! shared-memory/sequential oracles on arbitrary graphs, partitionings,
//! and rank counts — BSP, combined, and asynchronous modes alike.

use essentials_graph::{Coo, Graph, GraphBase, VertexId};
use essentials_mp::algorithms::{mp_bfs, mp_bfs_combined, mp_sssp, mp_sssp_combined};
use essentials_mp::async_mp::{async_mp_bfs, async_mp_sssp};
use essentials_partition::{random_partition, PartitionedGraph};
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = Graph<f32>> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 1u32..50);
        prop::collection::vec(edge, 0..200).prop_map(move |edges| {
            Graph::from_coo(&Coo::from_edges(
                n,
                edges.into_iter().map(|(s, d, w)| (s, d, w as f32 / 10.0)),
            ))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_mp_sssp_modes_match_dijkstra(
        g in arb_weighted_graph(),
        ranks in 1usize..5,
        pseed in 0u64..8,
    ) {
        let oracle = essentials_algos::sssp::dijkstra(&g, 0).dist;
        let p = random_partition(g.num_vertices(), ranks, pseed);
        let pg = PartitionedGraph::build(&g, &p);
        let close = |dist: &[f32]| {
            dist.iter().zip(&oracle).all(|(a, b)| {
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4
            })
        };
        let (bsp, _) = mp_sssp(&pg, 0);
        prop_assert!(close(&bsp), "bsp diverged");
        let (comb, sc) = mp_sssp_combined(&pg, 0);
        prop_assert!(close(&comb), "combined diverged");
        let (asy, _) = async_mp_sssp(&pg, 0);
        prop_assert!(close(&asy), "async diverged");
        // Combining never increases message volume.
        let (_, sp) = mp_sssp(&pg, 0);
        prop_assert!(sc.messages_total <= sp.messages_total);
    }

    #[test]
    fn all_mp_bfs_modes_match_sequential(
        g in arb_weighted_graph(),
        ranks in 1usize..5,
        pseed in 0u64..8,
    ) {
        let oracle = essentials_algos::bfs::bfs_sequential(&g, 0).level;
        let p = random_partition(g.num_vertices(), ranks, pseed);
        let pg = PartitionedGraph::build(&g, &p);
        let (bsp, _) = mp_bfs(&pg, 0);
        prop_assert_eq!(&bsp, &oracle);
        let (comb, _) = mp_bfs_combined(&pg, 0);
        prop_assert_eq!(&comb, &oracle);
        let (asy, _) = async_mp_bfs(&pg, 0);
        prop_assert_eq!(&asy, &oracle);
    }

    #[test]
    fn remote_messages_equal_zero_with_one_rank(g in arb_weighted_graph()) {
        let p = random_partition(g.num_vertices(), 1, 0);
        let pg = PartitionedGraph::build(&g, &p);
        let (_, stats) = mp_bfs(&pg, 0);
        prop_assert_eq!(stats.messages_remote, 0);
        let (_, astats) = async_mp_sssp(&pg, 0);
        prop_assert_eq!(astats.messages_remote, 0);
    }
}
