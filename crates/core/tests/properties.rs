//! Property-based tests of the operator layer: policy equivalence on
//! arbitrary graphs and frontiers, exactly-once edge iteration under
//! edge-balanced division, push/pull agreement.

use essentials_core::load_balance::for_each_edge_balanced;
use essentials_core::operators::advance::{
    expand_pull, expand_push_dense, neighbors_expand, neighbors_expand_mutex, PullConfig,
};
use essentials_core::operators::compute::fill_indexed;
use essentials_core::operators::filter::{filter, uniquify, uniquify_with_bitmap};
use essentials_core::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Arbitrary weighted graph + a frontier over its vertices.
fn arb_graph_and_frontier() -> impl Strategy<Value = (Graph<f32>, Vec<VertexId>)> {
    (1usize..48).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as VertexId, 0..n as VertexId, 1u32..100), 0..250);
        let frontier = prop::collection::vec(0..n as VertexId, 0..60);
        (edges, frontier).prop_map(move |(edges, frontier)| {
            let coo = Coo::from_edges(
                n,
                edges.into_iter().map(|(s, d, w)| (s, d, w as f32 / 10.0)),
            );
            (Graph::from_coo(&coo).with_csc(), frontier)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn neighbors_expand_policy_equivalence((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(3);
        let f = SparseFrontier::from_vec(frontier);
        let cond = |_s: VertexId, d: VertexId, _e: EdgeId, w: f32| w > 1.0 && !d.is_multiple_of(3);
        let mut outs = [
            neighbors_expand(execution::seq, &ctx, &g, &f, cond),
            neighbors_expand(execution::par, &ctx, &g, &f, cond),
            neighbors_expand(execution::par_nosync, &ctx, &g, &f, cond),
            neighbors_expand_mutex(execution::par, &ctx, &g, &f, cond),
        ];
        // Multisets must agree exactly (one output entry per admitting edge).
        for out in &mut outs {
            let mut v = std::mem::take(out).into_vec();
            v.sort_unstable();
            *out = SparseFrontier::from_vec(v);
        }
        prop_assert_eq!(&outs[0], &outs[1]);
        prop_assert_eq!(&outs[0], &outs[2]);
        prop_assert_eq!(&outs[0], &outs[3]);
    }

    #[test]
    fn push_and_pull_agree_on_the_output_set((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(2);
        let sparse = SparseFrontier::from_vec(frontier);
        let dense_in = essentials_frontier::convert::sparse_to_dense(
            &sparse, g.get_num_vertices());
        let push = expand_push_dense(execution::par, &ctx, &g, &sparse, |_, _, _, _| true);
        let pull = expand_pull(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            PullConfig::default(),
            |_| true,
            |_, _, _| true,
        );
        prop_assert_eq!(
            push.iter().collect::<Vec<_>>(),
            pull.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn edge_balanced_iterates_frontier_edges_exactly_once((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(3);
        // Deduplicate the frontier (duplicates would legitimately double
        // visit).
        let mut fr = frontier;
        fr.sort_unstable();
        fr.dedup();
        let hits: Vec<AtomicUsize> =
            (0..g.get_num_edges()).map(|_| AtomicUsize::new(0)).collect();
        for_each_edge_balanced(&ctx, &g, &fr, |_, src, e| {
            assert!(g.out_edges(src).contains(&e));
            hits[e].fetch_add(1, Ordering::Relaxed);
        });
        for v in g.vertices() {
            let expected = usize::from(fr.contains(&v));
            for e in g.out_edges(v) {
                prop_assert_eq!(hits[e].load(Ordering::Relaxed), expected);
            }
        }
    }

    #[test]
    fn filter_and_uniquify_flavors_agree((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(3);
        let n = g.get_num_vertices();
        let f = SparseFrontier::from_vec(frontier);
        let pred = |v: VertexId| v.is_multiple_of(2);
        let mut a = filter(execution::seq, &ctx, &f, pred);
        let mut b = filter(execution::par, &ctx, &f, pred);
        a.uniquify();
        b.uniquify();
        prop_assert_eq!(a, b);

        let u1 = uniquify(execution::seq, &ctx, &f);
        let mut u2 = uniquify_with_bitmap(execution::par, &ctx, &f, n);
        u2.uniquify();
        prop_assert_eq!(u1, u2);
    }

    #[test]
    fn fill_indexed_equals_sequential_map(n in 0usize..20_000, threads in 1usize..5) {
        let ctx = Context::new(threads);
        let par: Vec<u64> = fill_indexed(execution::par, &ctx, n, |i| (i as u64).wrapping_mul(2654435761));
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn reduce_policy_equivalence_integers(values in prop::collection::vec(0u64..1_000, 0..3000)) {
        use essentials_core::operators::reduce::reduce;
        let ctx = Context::new(4);
        let seq = reduce(execution::seq, &ctx, values.len(), 0u64, |i| values[i], |a, b| a + b);
        let par = reduce(execution::par, &ctx, values.len(), 0u64, |i| values[i], |a, b| a + b);
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq, values.iter().sum::<u64>());
    }
}
