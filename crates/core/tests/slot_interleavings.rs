//! Exhaustive two-thread interleaving tests for the [`SwapSlot`] protocol.
//!
//! Why serial enumeration is sound here: every `SwapSlot` operation touches
//! the shared state exactly once, with a single atomic `swap` (its
//! linearization point); everything else the operation does is thread-local.
//! A two-thread execution is therefore fully described by the order in which
//! the swaps hit the cell, so running every merge of the two per-thread step
//! sequences *serially* covers every observable concurrent execution of the
//! protocol — the hand-rolled, dependency-free version of a loom model.
//! (What this cannot cover — torn payload visibility under the wrong
//! orderings — is what the `ci-sanitize` ThreadSanitizer job and the real
//! two-thread stress test below are for.)
//!
//! Each step runs against a real `SwapSlot` with drop-tracking canary
//! payloads; after every schedule we check the conservation law: every box
//! created was freed exactly once or is the single box left parked.

use std::cell::RefCell;
use std::rc::Rc;

use essentials_core::SwapSlot;

/// Drop-tracking payload: flips its `alive` flag exactly once.
struct Canary {
    id: usize,
    ledger: Rc<RefCell<Vec<bool>>>,
}

impl Drop for Canary {
    fn drop(&mut self) {
        let mut ledger = self.ledger.borrow_mut();
        assert!(ledger[self.id], "canary {} double-dropped", self.id);
        ledger[self.id] = false;
    }
}

/// Book-keeping for one simulated thread: the box it currently holds.
#[derive(Default)]
struct ThreadState {
    held: Option<Box<Canary>>,
}

/// One protocol step of the check-out/check-in cycle.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `slot.take()`, allocating a fresh canary on a miss (the `ScratchSlot`
    /// policy).
    TakeOrNew,
    /// `slot.put(held)`, dropping whatever the put displaced.
    PutDropDisplaced,
}

struct Sim {
    slot: SwapSlot<Canary>,
    ledger: Rc<RefCell<Vec<bool>>>,
}

impl Sim {
    fn new() -> Self {
        Sim {
            slot: SwapSlot::new(),
            ledger: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn fresh_canary(&self) -> Box<Canary> {
        let mut ledger = self.ledger.borrow_mut();
        let id = ledger.len();
        ledger.push(true);
        Box::new(Canary {
            id,
            ledger: self.ledger.clone(),
        })
    }

    fn run_step(&self, t: &mut ThreadState, step: Step) {
        match step {
            Step::TakeOrNew => {
                assert!(t.held.is_none(), "thread took twice without putting");
                t.held = Some(self.slot.take().unwrap_or_else(|| self.fresh_canary()));
            }
            Step::PutDropDisplaced => {
                let held = t.held.take().expect("thread put without holding");
                drop(self.slot.put(held));
            }
        }
    }

    fn alive_count(&self) -> usize {
        self.ledger.borrow().iter().filter(|&&a| a).count()
    }
}

/// All merges of two sequences preserving each thread's program order,
/// encoded as schedules of thread ids.
fn interleavings(a_len: usize, b_len: usize) -> Vec<Vec<usize>> {
    fn rec(a: usize, b: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if a == 0 && b == 0 {
            out.push(cur.clone());
            return;
        }
        if a > 0 {
            cur.push(0);
            rec(a - 1, b, cur, out);
            cur.pop();
        }
        if b > 0 {
            cur.push(1);
            rec(a, b - 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(a_len, b_len, &mut Vec::new(), &mut out);
    out
}

/// Runs `threads[i]`'s steps under `schedule` and checks conservation.
fn run_schedule(schedule: &[usize], programs: [&[Step]; 2]) {
    let sim = Sim::new();
    let mut states = [ThreadState::default(), ThreadState::default()];
    let mut cursors = [0usize; 2];
    for &tid in schedule {
        let step = programs[tid][cursors[tid]];
        cursors[tid] += 1;
        sim.run_step(&mut states[tid], step);
    }
    // Both programs end on a put: nothing is held, and the slot retains
    // exactly one parked box — every other canary was freed exactly once.
    assert!(states.iter().all(|s| s.held.is_none()));
    assert_eq!(
        sim.alive_count(),
        1,
        "schedule {schedule:?}: leak or premature free"
    );
    let ledger = sim.ledger.clone();
    drop(sim);
    let alive = ledger.borrow().iter().filter(|&&a| a).count();
    assert_eq!(alive, 0, "slot drop must free the parked box");
}

#[test]
fn all_interleavings_of_one_round_trip_each() {
    // Two threads, each: take (or allocate) then put. C(4,2) = 6 schedules.
    let program: &[Step] = &[Step::TakeOrNew, Step::PutDropDisplaced];
    let schedules = interleavings(program.len(), program.len());
    assert_eq!(schedules.len(), 6);
    for s in &schedules {
        run_schedule(s, [program, program]);
    }
}

#[test]
fn all_interleavings_of_two_round_trips_each() {
    // Two threads, each: (take, put) twice — the recycle() pattern, where a
    // thread re-enters the protocol and may get its own or the peer's box.
    // C(8,4) = 70 schedules.
    let program: &[Step] = &[
        Step::TakeOrNew,
        Step::PutDropDisplaced,
        Step::TakeOrNew,
        Step::PutDropDisplaced,
    ];
    let schedules = interleavings(program.len(), program.len());
    assert_eq!(schedules.len(), 70);
    for s in &schedules {
        run_schedule(s, [program, program]);
    }
}

#[test]
fn asymmetric_programs_also_conserve() {
    // Thread 0 cycles twice while thread 1 cycles once: C(6,2) = 15.
    let long: &[Step] = &[
        Step::TakeOrNew,
        Step::PutDropDisplaced,
        Step::TakeOrNew,
        Step::PutDropDisplaced,
    ];
    let short: &[Step] = &[Step::TakeOrNew, Step::PutDropDisplaced];
    let schedules = interleavings(long.len(), short.len());
    assert_eq!(schedules.len(), 15);
    for s in &schedules {
        run_schedule(s, [long, short]);
    }
}

/// The real-concurrency counterpart: two OS threads hammer one slot. The
/// enumeration above proves the protocol over all orderings of the
/// linearization points; this run (especially under ThreadSanitizer in the
/// `ci-sanitize` job) checks the memory-ordering side — payload writes made
/// before `put` must be visible after `take`.
#[test]
#[cfg_attr(miri, ignore)] // real threads: covered by the enumeration under Miri
fn two_threads_stress_conserves_boxes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    static LIVE: AtomicUsize = AtomicUsize::new(0);

    struct Counted {
        stamp: u64,
    }
    impl Counted {
        fn new() -> Self {
            LIVE.fetch_add(1, Ordering::Relaxed);
            Counted { stamp: 0 }
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }

    let iters: usize = match std::env::var("ESSENTIALS_STRESS_SCALE") {
        Ok(s) => 50_000 * s.parse::<usize>().unwrap_or(1),
        Err(_) => 50_000,
    };
    let slot: Arc<SwapSlot<Counted>> = Arc::new(SwapSlot::new());
    let threads: Vec<_> = (0..2)
        .map(|tid| {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                for i in 0..iters {
                    let mut c = slot.take().unwrap_or_else(|| Box::new(Counted::new()));
                    // Write the payload before parking: TSan verifies the
                    // Release/Acquire pair publishes this without a race.
                    c.stamp = ((tid as u64) << 32) | i as u64;
                    drop(slot.put(c));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Every box ends up either displaced-and-dropped or parked; after the
    // joins exactly the one parked box is live.
    let live = LIVE.load(Ordering::Relaxed);
    assert_eq!(live, 1, "live boxes after joins: {live}");
    drop(slot);
    assert_eq!(LIVE.load(Ordering::Relaxed), 0, "slot drop leaked");
}
