//! Work-division strategies for frontier expansion (§IV-C, experiment E5).
//!
//! The naïve division — one task per frontier *vertex* — collapses on
//! power-law graphs: one hub vertex can own half the edges of an iteration
//! while thousands of degree-1 vertices finish instantly. The edge-balanced
//! strategy divides the *edge* work evenly instead: a prefix sum over the
//! frontier's degrees defines a global edge numbering, equal-size chunks of
//! which are handed to workers; each chunk locates its starting vertex by
//! binary search (the CPU analogue of GPU merge-path load balancing).

use essentials_graph::{EdgeId, OutNeighbors, VertexId};
use essentials_parallel::{parallel_scan_with, ChunkHooks, ExecError, Schedule};

use crate::context::Context;

/// Vertex-balanced iteration: one dynamic-scheduled task per frontier
/// vertex. `f(worker, src)` is called once per active vertex.
pub fn for_each_vertex_balanced<F>(ctx: &Context, frontier: &[VertexId], f: F)
where
    F: Fn(usize, VertexId) + Sync,
{
    ctx.pool()
        .parallel_for_with(0..frontier.len(), Schedule::Dynamic(64), |tid, i| {
            f(tid, frontier[i]);
        });
}

/// Edge-balanced iteration: `f(worker, src, edge)` is called once per
/// out-edge of every frontier vertex, with edge work divided evenly across
/// workers regardless of degree skew.
///
/// The degree prefix sum lives in the context's advance scratch, so
/// steady-state calls allocate nothing; callers already holding the scratch
/// (the advance operators) use [`for_each_edge_balanced_with`] directly.
pub fn for_each_edge_balanced<G, F>(ctx: &Context, g: &G, frontier: &[VertexId], f: F)
where
    G: OutNeighbors + Sync,
    F: Fn(usize, VertexId, EdgeId) + Sync,
{
    let mut scratch = ctx.take_scratch();
    let crate::scratch::AdvanceScratch {
        offsets,
        chunk_sums,
        ..
    } = &mut *scratch;
    for_each_edge_balanced_with(ctx, g, frontier, offsets, chunk_sums, f);
    ctx.put_scratch(scratch);
}

/// [`for_each_edge_balanced`] with caller-owned scan buffers.
pub(crate) fn for_each_edge_balanced_with<G, F>(
    ctx: &Context,
    g: &G,
    frontier: &[VertexId],
    offsets: &mut Vec<usize>,
    chunk_sums: &mut Vec<usize>,
    f: F,
) where
    G: OutNeighbors + Sync,
    F: Fn(usize, VertexId, EdgeId) + Sync,
{
    if let Err(e) = try_for_each_edge_balanced_with(
        ctx,
        g,
        frontier,
        offsets,
        chunk_sums,
        ChunkHooks::none(),
        f,
    ) {
        panic!("{e}");
    }
}

/// Fallible edge-balanced iteration: `hooks` are consulted at every
/// work-chunk boundary (the chunk id is the edge-chunk ordinal, stable for
/// a given frontier regardless of thread count), and a panic in `f` is
/// captured as [`ExecError::WorkerPanic`] after the remaining chunks drain.
pub(crate) fn try_for_each_edge_balanced_with<G, F>(
    ctx: &Context,
    g: &G,
    frontier: &[VertexId],
    offsets: &mut Vec<usize>,
    chunk_sums: &mut Vec<usize>,
    hooks: ChunkHooks<'_>,
    f: F,
) -> Result<(), ExecError>
where
    G: OutNeighbors + Sync,
    F: Fn(usize, VertexId, EdgeId) + Sync,
{
    // Prefix-sum the degrees in parallel: offsets[i] = first global work
    // item of frontier[i].
    let total = parallel_scan_with(
        ctx.pool(),
        frontier.len(),
        |i| g.out_degree(frontier[i]),
        offsets,
        chunk_sums,
    );
    if total == 0 {
        return Ok(());
    }
    let offsets: &[usize] = offsets;
    let threads = ctx.num_threads();
    let grain = (total / (threads * 8).max(1)).clamp(256, 1 << 16);
    let chunks = total.div_ceil(grain);

    ctx.pool()
        .try_parallel_for_with(0..chunks, Schedule::Dynamic(1), hooks, |tid, c| {
            let work_lo = c * grain;
            let work_hi = ((c + 1) * grain).min(total);
            // First frontier index whose edge range intersects [work_lo, ..).
            let mut fi = offsets.partition_point(|&o| o <= work_lo) - 1;
            let mut w = work_lo;
            while w < work_hi {
                let src = frontier[fi];
                let row = g.out_edges(src);
                // Position inside src's edge list.
                let inner = w - offsets[fi];
                let take = (offsets[fi + 1] - w).min(work_hi - w);
                for k in 0..take {
                    f(tid, src, row.start + inner + k);
                }
                w += take;
                fi += 1;
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::{Coo, Graph, GraphBase};
    use essentials_parallel::atomics::Counter;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn skewed() -> Graph<()> {
        // Vertex 0 has degree 64; vertices 1..=8 have degree 1.
        let mut coo = Coo::new(100);
        for d in 0..64 {
            coo.push(0, 30 + d as VertexId, ());
        }
        for v in 1..=8 {
            coo.push(v, 0, ());
        }
        Graph::from_coo(&coo)
    }

    #[test]
    fn edge_balanced_touches_every_edge_exactly_once() {
        let g = skewed();
        let ctx = Context::new(4);
        let frontier: Vec<VertexId> = (0..9).collect();
        let hits: Vec<AtomicUsize> = (0..g.num_edges()).map(|_| AtomicUsize::new(0)).collect();
        for_each_edge_balanced(&ctx, &g, &frontier, |_, src, e| {
            assert!(g.out_edges(src).contains(&e), "edge id outside source row");
            hits[e].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn edge_balanced_subset_frontier() {
        let g = skewed();
        let ctx = Context::new(2);
        // Only the degree-1 vertices.
        let frontier: Vec<VertexId> = (1..=8).collect();
        let count = Counter::new();
        for_each_edge_balanced(&ctx, &g, &frontier, |_, _, _| count.add(1));
        assert_eq!(count.get(), 8);
    }

    #[test]
    fn edge_balanced_empty_and_zero_degree() {
        let g = skewed();
        let ctx = Context::new(2);
        for_each_edge_balanced(&ctx, &g, &[], |_, _, _| panic!("no work expected"));
        // Frontier of sinks only.
        for_each_edge_balanced(&ctx, &g, &[50, 51], |_, _, _| panic!("sinks have no edges"));
    }

    #[test]
    fn vertex_balanced_visits_each_entry() {
        let g = skewed();
        let _ = &g;
        let ctx = Context::new(3);
        let frontier: Vec<VertexId> = (0..1000).map(|i| (i % 50) as VertexId).collect();
        let count = Counter::new();
        for_each_vertex_balanced(&ctx, &frontier, |_, _| count.add(1));
        assert_eq!(count.get(), 1000);
    }
}
