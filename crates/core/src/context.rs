//! Execution context: the thread pool an algorithm runs on, the reusable
//! scratch memory the frontier pipeline checks in and out, and the optional
//! observability sink events flow into.

use std::sync::Arc;

use essentials_frontier::{DenseFrontier, SparseFrontier};
use essentials_obs::ObsSink;
use essentials_parallel::{ChunkHooks, FaultPlan, RunBudget, ThreadPool};

use crate::scratch::{AdvanceScratch, ScratchSlot};

/// Resolves a requested worker count against the `ESSENTIALS_THREADS`
/// environment variable: a positive integer there overrides the request.
/// This is how CI pins the whole suite to 1 and 8 workers without touching
/// any call site; [`Context::sequential`] is exempt so sequential baselines
/// stay sequential.
pub fn resolve_threads(requested: usize) -> usize {
    match std::env::var("ESSENTIALS_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => requested,
        },
        Err(_) => requested,
    }
}

/// Carries the thread pool (policies are types, not state), the advance
/// scratch slot, and the optional observability sink through operators and
/// algorithms. Cheap to clone; clones share the pool, the scratch, and the
/// sink.
#[derive(Clone)]
pub struct Context {
    pool: Arc<ThreadPool>,
    scratch: Arc<ScratchSlot>,
    obs: Option<Arc<dyn ObsSink>>,
    budget: RunBudget,
    fault: Option<Arc<FaultPlan>>,
}

impl Context {
    /// A context with its own pool of `threads` workers (subject to the
    /// [`resolve_threads`] environment override).
    pub fn new(threads: usize) -> Self {
        Context::with_pool(Arc::new(ThreadPool::new(resolve_threads(threads))))
    }

    /// A single-threaded context (reference semantics / baselines). Not
    /// subject to the environment override.
    pub fn sequential() -> Self {
        Context::with_pool(Arc::new(ThreadPool::new(1)))
    }

    /// Wraps an existing shared pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Context::with_parts(pool, Arc::new(ScratchSlot::new()))
    }

    /// Builds a context from an existing pool **and** an existing scratch
    /// slot. This is the serving-layer constructor: a long-lived engine
    /// keeps one pool plus a checkout pool of scratch slots, and gives each
    /// admitted request a context sharing the pool but owning a leased
    /// slot — so concurrent requests never contend on (or cross-pollute)
    /// each other's scratch, while each request still reuses its slot's
    /// warmed buffers allocation-free.
    pub fn with_parts(pool: Arc<ThreadPool>, scratch: Arc<ScratchSlot>) -> Self {
        Context {
            pool,
            scratch,
            obs: None,
            budget: RunBudget::unlimited(),
            fault: None,
        }
    }

    /// Attaches a [`RunBudget`] (cancellation token, deadline, iteration
    /// cap). The fallible `try_*` operator and algorithm entry points check
    /// it at iteration and chunk boundaries; the default budget is
    /// unlimited and costs one branch per check site.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The run budget (unlimited unless [`Context::with_budget`] was
    /// called).
    #[inline]
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Attaches a deterministic [`FaultPlan`]: the fallible execution paths
    /// will inject panics/cancellations at the plan's `(iteration, chunk)`
    /// coordinates. Test-only plumbing, but safe in production (an empty
    /// plan injects nothing).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    #[inline]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// The chunk-boundary hooks (budget + fault plan) operators hand to the
    /// pool's fallible loops.
    #[inline]
    pub fn chunk_hooks(&self) -> ChunkHooks<'_> {
        self.budget.chunk_hooks(self.fault.as_deref())
    }

    /// Attaches an observability sink; subsequent operator and enactor
    /// calls through this context (and its clones) emit events into it.
    /// With no sink attached — the default — instrumentation costs one
    /// `None` check per operator call.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.obs = Some(sink);
        self
    }

    /// Detaches the observability sink.
    pub fn without_obs(mut self) -> Self {
        self.obs = None;
        self
    }

    /// The attached observability sink, if any.
    #[inline]
    pub fn obs(&self) -> Option<&Arc<dyn ObsSink>> {
        self.obs.as_ref()
    }

    /// Whether some attached sink wants per-edge operator detail
    /// (admission counts, per-worker push tallies). Producers gate the
    /// per-edge bookkeeping on this so a [`essentials_obs::NullSink`] keeps
    /// hot paths at their uninstrumented cost.
    #[inline]
    pub fn obs_wants_detail(&self) -> bool {
        match &self.obs {
            Some(s) => s.wants_op_detail(),
            None => false,
        }
    }

    /// The pool.
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker count.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Checks the advance scratch out of the context. Steady state this is
    /// one atomic swap; a fresh scratch is allocated only on first use or
    /// when another algorithm holds the scratch concurrently.
    pub fn take_scratch(&self) -> Box<AdvanceScratch> {
        self.scratch.take(self.num_threads())
    }

    /// Returns the scratch for the next operator call.
    pub fn put_scratch(&self, scratch: Box<AdvanceScratch>) {
        self.scratch.put(scratch);
    }

    /// Donates a spent frontier's storage to the frontier pool, so the next
    /// expansion's output reuses its capacity instead of allocating.
    /// Algorithms call this on the input frontier once an iteration has
    /// produced its successor.
    pub fn recycle_frontier(&self, f: SparseFrontier) {
        self.scratch.recycle(f, self.num_threads());
    }

    /// The dense mirror of [`Self::recycle_frontier`]: parks a spent bitmap
    /// frontier so the next pull/dense-push output over the same vertex
    /// universe reuses it instead of allocating O(n/64) words.
    pub fn recycle_dense_frontier(&self, f: DenseFrontier) {
        self.scratch.recycle_dense(f, self.num_threads());
    }

    /// An empty dense frontier over `n` vertices, drawn from the pool when a
    /// bitmap of exactly that capacity was recycled (steady state: cleared
    /// in word stores, zero allocations).
    pub fn take_dense_frontier(&self, n: usize) -> DenseFrontier {
        self.scratch.take_dense(n, self.num_threads())
    }

    /// A cleared `f64` buffer from the numeric pool — the rank
    /// double-buffers of the fixpoint algorithms and the blocked gather's
    /// value arrays draw from here, so steady-state iterations reuse
    /// capacity instead of allocating (DESIGN.md §5, §12).
    pub fn take_f64_buffer(&self) -> Vec<f64> {
        let mut s = self.take_scratch();
        let v = s.take_f64();
        self.put_scratch(s);
        v
    }

    /// Returns an `f64` buffer to the numeric pool.
    pub fn recycle_f64_buffer(&self, v: Vec<f64>) {
        let mut s = self.take_scratch();
        s.put_f64(v);
        self.put_scratch(s);
    }

    /// A cleared `u32` buffer from the numeric pool — multi-source level
    /// tables draw from here so a warm serving engine reruns queries
    /// without touching the allocator.
    pub fn take_u32_buffer(&self) -> Vec<u32> {
        let mut s = self.take_scratch();
        let v = s.take_u32();
        self.put_scratch(s);
        v
    }

    /// Returns a `u32` buffer to the numeric pool.
    pub fn recycle_u32_buffer(&self, v: Vec<u32>) {
        let mut s = self.take_scratch();
        s.put_u32(v);
        self.put_scratch(s);
    }

    /// A cleared `u64` buffer from the numeric pool — the multi-source
    /// traversals' per-vertex visited/frontier mask words draw from here.
    pub fn take_u64_buffer(&self) -> Vec<u64> {
        let mut s = self.take_scratch();
        let v = s.take_u64();
        self.put_scratch(s);
        v
    }

    /// Returns a `u64` buffer to the numeric pool.
    pub fn recycle_u64_buffer(&self, v: Vec<u64>) {
        let mut s = self.take_scratch();
        s.put_u64(v);
        self.put_scratch(s);
    }
}

impl Default for Context {
    /// Sized to available hardware parallelism (subject to the
    /// [`resolve_threads`] environment override).
    fn default() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Context::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_obs::{CountersSink, NullSink};

    #[test]
    fn contexts_share_pools_on_clone() {
        let ctx = Context::new(2);
        let ctx2 = ctx.clone();
        assert_eq!(ctx2.num_threads(), resolve_threads(2));
        assert!(std::ptr::eq(ctx.pool(), ctx2.pool()));
    }

    #[test]
    fn sequential_context_has_one_worker() {
        // Exempt from the environment override by contract.
        assert_eq!(Context::sequential().num_threads(), 1);
    }

    #[test]
    fn scratch_round_trips_through_the_context() {
        let ctx = Context::new(2);
        let mut s = ctx.take_scratch();
        s.offsets.reserve(500);
        let addr = s.offsets.as_ptr();
        ctx.put_scratch(s);
        assert_eq!(ctx.take_scratch().offsets.as_ptr(), addr);
    }

    #[test]
    fn recycled_frontier_capacity_feeds_the_next_take() {
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(Vec::with_capacity(256));
        ctx.recycle_frontier(f);
        let mut s = ctx.take_scratch();
        assert!(s.take_vec().capacity() >= 256);
    }

    #[test]
    fn recycled_dense_frontier_round_trips() {
        let ctx = Context::new(2);
        let d = DenseFrontier::new(128);
        d.insert(9);
        let addr = d.bits().words().as_ptr();
        ctx.recycle_dense_frontier(d);
        let got = ctx.take_dense_frontier(128);
        assert_eq!(got.bits().words().as_ptr(), addr);
        assert!(got.is_empty());
        // Different universe allocates fresh rather than mis-sizing.
        assert_eq!(ctx.take_dense_frontier(64).capacity(), 64);
    }

    #[test]
    fn obs_defaults_off_and_clones_share_the_sink() {
        let ctx = Context::new(2);
        assert!(ctx.obs().is_none());
        assert!(!ctx.obs_wants_detail());

        let sink: Arc<dyn ObsSink> = Arc::new(CountersSink::new(2));
        let ctx = ctx.with_obs(sink.clone());
        let clone = ctx.clone();
        assert!(Arc::ptr_eq(&sink, clone.obs().unwrap()));
        assert!(ctx.obs_wants_detail());
        assert!(ctx.without_obs().obs().is_none());
    }

    #[test]
    fn null_sink_declines_detail_through_the_context() {
        let ctx = Context::new(2).with_obs(Arc::new(NullSink));
        assert!(ctx.obs().is_some());
        assert!(!ctx.obs_wants_detail());
    }
}
