//! Execution context: the thread pool an algorithm runs on, plus the
//! reusable scratch memory the frontier pipeline checks in and out.

use std::sync::Arc;

use essentials_frontier::SparseFrontier;
use essentials_parallel::ThreadPool;

use crate::scratch::{AdvanceScratch, ScratchSlot};

/// Carries the thread pool (policies are types, not state) and the advance
/// scratch slot through operators and algorithms. Cheap to clone; clones
/// share both the pool and the scratch.
#[derive(Clone)]
pub struct Context {
    pool: Arc<ThreadPool>,
    scratch: Arc<ScratchSlot>,
}

impl Context {
    /// A context with its own pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        Context::with_pool(Arc::new(ThreadPool::new(threads)))
    }

    /// A single-threaded context (reference semantics / baselines).
    pub fn sequential() -> Self {
        Context::new(1)
    }

    /// Wraps an existing shared pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Context {
            pool,
            scratch: Arc::new(ScratchSlot::new()),
        }
    }

    /// The pool.
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker count.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Checks the advance scratch out of the context. Steady state this is
    /// one atomic swap; a fresh scratch is allocated only on first use or
    /// when another algorithm holds the scratch concurrently.
    pub fn take_scratch(&self) -> Box<AdvanceScratch> {
        self.scratch.take(self.num_threads())
    }

    /// Returns the scratch for the next operator call.
    pub fn put_scratch(&self, scratch: Box<AdvanceScratch>) {
        self.scratch.put(scratch);
    }

    /// Donates a spent frontier's storage to the frontier pool, so the next
    /// expansion's output reuses its capacity instead of allocating.
    /// Algorithms call this on the input frontier once an iteration has
    /// produced its successor.
    pub fn recycle_frontier(&self, f: SparseFrontier) {
        self.scratch.recycle(f, self.num_threads());
    }
}

impl Default for Context {
    /// Sized to available hardware parallelism.
    fn default() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Context::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_share_pools_on_clone() {
        let ctx = Context::new(2);
        let ctx2 = ctx.clone();
        assert_eq!(ctx2.num_threads(), 2);
        assert!(std::ptr::eq(ctx.pool(), ctx2.pool()));
    }

    #[test]
    fn sequential_context_has_one_worker() {
        assert_eq!(Context::sequential().num_threads(), 1);
    }

    #[test]
    fn scratch_round_trips_through_the_context() {
        let ctx = Context::new(2);
        let mut s = ctx.take_scratch();
        s.offsets.reserve(500);
        let addr = s.offsets.as_ptr();
        ctx.put_scratch(s);
        assert_eq!(ctx.take_scratch().offsets.as_ptr(), addr);
    }

    #[test]
    fn recycled_frontier_capacity_feeds_the_next_take() {
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(Vec::with_capacity(256));
        ctx.recycle_frontier(f);
        let mut s = ctx.take_scratch();
        assert!(s.take_vec().capacity() >= 256);
    }
}
