//! Execution context: the thread pool an algorithm runs on.

use std::sync::Arc;

use essentials_parallel::ThreadPool;

/// Carries the thread pool (and nothing else — policies are types, not
/// state) through operators and algorithms. Cheap to clone.
#[derive(Clone)]
pub struct Context {
    pool: Arc<ThreadPool>,
}

impl Context {
    /// A context with its own pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        Context {
            pool: Arc::new(ThreadPool::new(threads)),
        }
    }

    /// A single-threaded context (reference semantics / baselines).
    pub fn sequential() -> Self {
        Context::new(1)
    }

    /// Wraps an existing shared pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Context { pool }
    }

    /// The pool.
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker count.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

impl Default for Context {
    /// Sized to available hardware parallelism.
    fn default() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Context::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_share_pools_on_clone() {
        let ctx = Context::new(2);
        let ctx2 = ctx.clone();
        assert_eq!(ctx2.num_threads(), 2);
        assert!(std::ptr::eq(ctx.pool(), ctx2.pool()));
    }

    #[test]
    fn sequential_context_has_one_worker() {
        assert_eq!(Context::sequential().num_threads(), 1);
    }
}
