//! `SwapSlot<T>` — a lock-free single-slot box exchanger.
//!
//! The scratch check-in/check-out protocol ([`crate::scratch::ScratchSlot`])
//! needs exactly one primitive: a cell that atomically exchanges ownership
//! of a heap object. `SwapSlot` is that primitive, generic and on its own so
//! its protocol can be tested exhaustively: **every operation is exactly one
//! atomic swap** (its linearization point) plus thread-local work. With no
//! second shared access per operation, the set of observable two-thread
//! executions equals the set of serial interleavings of the operations —
//! which `tests/slot_interleavings.rs` enumerates in full.
//!
//! Ordering contract: `take` swaps with `Acquire` (it must see every write
//! the parker made to the payload), `put` swaps with `Release` (it publishes
//! those writes). `put` returns the displaced box instead of freeing it, so
//! the free is a separate, caller-visible step and never part of the atomic
//! protocol.

use std::sync::atomic::{AtomicPtr, Ordering};

/// Lock-free single-slot exchanger of `Box<T>` ownership (see module docs).
pub struct SwapSlot<T> {
    slot: AtomicPtr<T>,
}

impl<T> SwapSlot<T> {
    /// An empty slot.
    pub const fn new() -> Self {
        SwapSlot {
            slot: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Takes the parked value, leaving the slot empty. `None` when the slot
    /// was already empty. One atomic swap (`Acquire`).
    pub fn take(&self) -> Option<Box<T>> {
        let p = self.slot.swap(std::ptr::null_mut(), Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: a non-null pointer in the slot is always a leaked Box
            // from `put`, and the swap transferred exclusive ownership to us
            // (any concurrent swap saw either this pointer or our null, never
            // both).
            Some(unsafe { Box::from_raw(p) })
        }
    }

    /// Parks `value`, returning whatever was displaced (`None` when the slot
    /// was empty). One atomic swap (`Release`); the caller decides the fate
    /// of the displaced box — typically dropping the older, cache-cold one.
    #[must_use = "the displaced box is live; dropping it is the caller's decision"]
    pub fn put(&self, value: Box<T>) -> Option<Box<T>> {
        let p = Box::into_raw(value);
        let old = self.slot.swap(p, Ordering::Release);
        if old.is_null() {
            None
        } else {
            // SAFETY: same ownership argument as in `take` — the swap handed
            // us the previously parked box exclusively.
            Some(unsafe { Box::from_raw(old) })
        }
    }
}

impl<T> Default for SwapSlot<T> {
    fn default() -> Self {
        SwapSlot::new()
    }
}

impl<T> Drop for SwapSlot<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent access remains; free the parked box.
        drop(self.take());
    }
}

// SAFETY: the slot transfers whole `Box<T>` values between threads, so the
// payload must be sendable; the slot itself holds only an atomic pointer.
unsafe impl<T: Send> Send for SwapSlot<T> {}
// SAFETY: shared access goes exclusively through the atomic swap, which
// hands each box to exactly one caller.
unsafe impl<T: Send> Sync for SwapSlot<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_identity() {
        let slot: SwapSlot<u32> = SwapSlot::new();
        assert!(slot.take().is_none());
        assert!(slot.put(Box::new(7)).is_none());
        assert_eq!(*slot.take().expect("parked"), 7);
        assert!(slot.take().is_none());
    }

    #[test]
    fn put_displaces_the_parked_box() {
        let slot: SwapSlot<u32> = SwapSlot::new();
        assert!(slot.put(Box::new(1)).is_none());
        let displaced = slot.put(Box::new(2)).expect("displaced");
        assert_eq!(*displaced, 1);
        assert_eq!(*slot.take().expect("parked"), 2);
    }

    #[test]
    fn drop_frees_the_parked_box() {
        use std::rc::Rc;
        let alive = Rc::new(());
        let slot: SwapSlot<Rc<()>> = SwapSlot::new();
        assert!(slot.put(Box::new(alive.clone())).is_none());
        assert_eq!(Rc::strong_count(&alive), 2);
        drop(slot);
        assert_eq!(Rc::strong_count(&alive), 1);
    }
}
