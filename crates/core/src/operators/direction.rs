//! Adaptive direction engine: per-iteration choice of sparse-push,
//! dense-push, or pull (§III-C made an *execution-policy* concern).
//!
//! The paper argues that traversal direction and frontier representation are
//! choices the operator layer should make per iteration, not per algorithm.
//! [`DirectionPolicy`] is the reusable form of the Beamer α/β heuristic that
//! previously lived inside `bfs_direction_optimizing`; [`advance_adaptive`]
//! is the entry point that consults it each iteration, converts the frontier
//! representation to match the chosen kernel, and dispatches to
//! [`neighbors_expand_unique`](super::advance::neighbors_expand_unique)
//! (sparse-push), [`expand_push_dense`](super::advance::expand_push_dense)
//! (dense-push), or the pull expansions. Algorithms supply the same three
//! ingredients fixed-direction variants do — a push condition, a pull
//! candidate predicate, a pull condition — and the engine owns everything
//! else: the decision, the representation switches, the unexplored-edge
//! bookkeeping, recycling spent frontiers through the [`Context`] pools, and
//! emitting [`DirectionEvent`]s so switches stay observable.
//!
//! For settle-style algorithms (BFS: an admitted vertex never becomes a
//! candidate again), the engine additionally maintains an
//! *unvisited-candidates* bitmap and routes pull iterations through
//! [`expand_pull_masked`](super::advance::expand_pull_masked), so late pull
//! scans skip all-zero words and settled destinations instead of probing the
//! candidate predicate for all `n` vertices.

use essentials_frontier::{convert, DenseFrontier, Frontier, SparseFrontier, VertexFrontier};
use essentials_graph::{
    DecodeEdgeWeights, DecodeInEdgeWeights, EdgeId, EdgeValue, EdgeWeights, GraphBase,
    InEdgeWeights, VertexId,
};
use essentials_obs::DirectionEvent;
use essentials_parallel::ExecutionPolicy;

use crate::context::Context;
use crate::operators::advance::{
    expand_pull_counted, expand_pull_masked, expand_push_dense, neighbors_expand_unique, PullConfig,
};
use crate::operators::blocked::{expand_blocked_pull, BlockedConfig};
use crate::operators::compressed::{
    expand_blocked_pull_compressed, expand_pull_counted_compressed, expand_pull_masked_compressed,
    expand_push_dense_compressed, neighbors_expand_unique_compressed,
};

/// Traversal direction (and output representation) of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frontier scatters over out-edges into a sparse output.
    Push,
    /// Frontier scatters over out-edges into a dense (bitmap) output —
    /// same edge work as [`Direction::Push`], but insertion is idempotent
    /// and the large output needs no dedup pass.
    DensePush,
    /// Candidates gather over in-edges (dense input and output).
    Pull,
    /// Pull routed through destination-binned propagation blocking
    /// ([`expand_blocked_pull`]) — same semantics as [`Direction::Pull`],
    /// chosen when the frontier is dense enough that binning's streaming
    /// passes beat the CSC scan's random candidate probes.
    BlockedPull,
}

impl Direction {
    /// Push-family (scatter over out-edges) vs. pull. The α/β hysteresis
    /// flips between *families*; the sparse/dense push split inside the push
    /// family — and the plain/blocked split inside the pull family — are
    /// pure execution choices.
    #[inline]
    pub fn is_pull(self) -> bool {
        matches!(self, Direction::Pull | Direction::BlockedPull)
    }
}

/// The per-iteration quantities a [`DirectionPolicy`] decides from.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInputs {
    /// Vertex-universe size.
    pub n: usize,
    /// Active vertices this iteration.
    pub frontier_len: usize,
    /// Out-edges of the frontier (the α numerator).
    pub frontier_edges: usize,
    /// Edges not yet retired by any earlier frontier (the α denominator).
    pub unexplored_edges: usize,
    /// Whether the frontier grew since the previous iteration.
    pub growing: bool,
    /// Direction of the previous iteration.
    pub current: Direction,
    /// Iterations since the last push↔pull flip (hysteresis dwell input).
    pub since_switch: usize,
    /// Whether the adjacency this advance traverses is byte-coded
    /// compressed ([`essentials_graph::ccsr`]). Pull over compressed lists
    /// has a different cost model — every scanned in-edge is a decode, not
    /// a load — so the policy may carry a separate α/β pair for it
    /// ([`DirectionPolicy::compressed`]).
    pub compressed: bool,
}

/// The Beamer α/β direction heuristic, hoisted out of BFS into a reusable
/// policy any frontier-driven algorithm consults per iteration.
///
/// * **α rule** (while pushing): switch to pull when the frontier is still
///   growing and its out-edge mass exceeds `unexplored_edges / alpha` — the
///   scatter is about to touch a large fraction of what remains, so
///   gathering over candidates is cheaper.
/// * **β rule** (while pulling): fall back to push when the frontier drops
///   below `n / beta` — the candidate scan no longer pays for itself on the
///   shrinking tail.
/// * **γ rule** (representation, inside the push family): emit a dense
///   bitmap output when the frontier holds at least `n / gamma` vertices, so
///   large push iterations get idempotent insertion instead of a dedup pass.
///
/// The asymmetry of α and β is itself hysteresis (the pull-entry and
/// pull-exit thresholds differ); `dwell` adds an explicit floor — a
/// push↔pull flip is suppressed until the current direction has run `dwell`
/// iterations — for workloads where the two rules straddle a boundary and
/// would otherwise oscillate.
#[derive(Debug, Clone, Copy)]
pub struct DirectionPolicy {
    /// Push→pull when `growing && frontier_edges > unexplored_edges / alpha`.
    pub alpha: usize,
    /// Pull→push when `frontier_len < n / beta`.
    pub beta: usize,
    /// Dense-push (bitmap output) when `frontier_len >= n / gamma`.
    pub gamma: usize,
    /// Minimum iterations between push↔pull flips (1 = flip freely).
    pub dwell: usize,
    /// Cost model for upgrading pull iterations to the propagation-blocked
    /// kernel. `None` (the default) never blocks, preserving the historic
    /// three-direction behavior.
    pub blocked: Option<BlockedPullPolicy>,
    /// Separate α/β pair consulted when the advance runs over compressed
    /// adjacency ([`PolicyInputs::compressed`]). `None` (the default) reuses
    /// the raw thresholds, so existing policies behave identically.
    pub compressed: Option<CompressedPullPolicy>,
}

/// The blocked-pull upgrade thresholds — a second α/β pair *inside* the
/// pull family, with its own hysteresis.
///
/// Binning pays two streaming passes over the frontier's out-edges to
/// replace the CSC scan's random destination probes; that trade wins only
/// when the active set covers a sizeable fraction of the universe. Enter
/// blocked pull when `frontier_len >= n / alpha`; once blocked, stay until
/// `frontier_len < n / beta`. `beta > alpha` makes the exit threshold
/// lower than the entry threshold, so a frontier hovering at the boundary
/// does not thrash between layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedPullPolicy {
    /// Pull→blocked-pull when `frontier_len >= n / alpha`.
    pub alpha: usize,
    /// Blocked-pull→pull when `frontier_len < n / beta`.
    pub beta: usize,
}

impl Default for BlockedPullPolicy {
    fn default() -> Self {
        BlockedPullPolicy { alpha: 8, beta: 16 }
    }
}

/// α/β thresholds for compressed adjacency — the same Beamer rules as the
/// raw pair, retuned for the decode cost model.
///
/// A compressed pull pays a class-code decode per scanned in-edge where the raw
/// pull pays a column load, and it cannot early-exit mid-word of the decode
/// stream for free: the break saves the *rest* of the row but the prefix
/// was already decoded. Pull is therefore relatively more expensive, so the
/// compressed defaults make pull **harder to enter** (smaller α: the
/// frontier's edge mass must be a larger fraction of the unexplored pool)
/// and **earlier to exit** (smaller β: the frontier must stay fatter to
/// keep the decode-heavy scan worthwhile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedPullPolicy {
    /// Push→pull when `growing && frontier_edges > unexplored_edges / alpha`
    /// (compressed adjacency). Smaller than the raw α.
    pub alpha: usize,
    /// Pull→push when `frontier_len < n / beta` (compressed adjacency).
    /// Smaller than the raw β.
    pub beta: usize,
}

impl Default for CompressedPullPolicy {
    fn default() -> Self {
        CompressedPullPolicy {
            alpha: 10,
            beta: 16,
        }
    }
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        DirectionPolicy {
            alpha: 14,
            beta: 24,
            gamma: 4,
            dwell: 1,
            blocked: None,
            compressed: None,
        }
    }
}

impl DirectionPolicy {
    /// Picks the direction (and push representation) for one iteration.
    pub fn decide(&self, s: &PolicyInputs) -> Direction {
        // Compressed adjacency swaps in its own α/β pair when one is
        // configured; everything else (γ, dwell, blocked upgrade) is a
        // representation question that does not depend on the encoding.
        let (alpha, beta) = match (s.compressed, self.compressed) {
            (true, Some(cp)) => (cp.alpha, cp.beta),
            _ => (self.alpha, self.beta),
        };
        let pulling = s.current.is_pull();
        let want_pull = if pulling {
            // β rule: keep pulling while the frontier covers enough of the
            // universe for the candidate scan to amortize.
            s.frontier_len >= s.n / beta.max(1)
        } else {
            // α rule: only a still-growing frontier justifies the flip —
            // the shrinking tail on high-diameter graphs stays push.
            s.growing && s.frontier_edges > s.unexplored_edges / alpha.max(1)
        };
        let pull = if s.since_switch >= self.dwell.max(1) {
            want_pull
        } else {
            pulling
        };
        if pull {
            if let Some(bp) = self.blocked {
                let blocked_now = s.current == Direction::BlockedPull;
                let threshold = if blocked_now { bp.beta } else { bp.alpha };
                if s.frontier_len >= s.n / threshold.max(1) {
                    return Direction::BlockedPull;
                }
            }
            Direction::Pull
        } else if s.n > 0 && s.frontier_len.saturating_mul(self.gamma.max(1)) >= s.n {
            Direction::DensePush
        } else {
            Direction::Push
        }
    }
}

/// Configuration of an adaptive advance loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveConfig {
    /// The direction heuristic.
    pub policy: DirectionPolicy,
    /// Pull scans stop at the first admitting in-edge (correct for
    /// reachability-style conditions like BFS; wrong for conditions that
    /// must see every edge, like SSSP relaxation).
    pub early_exit: bool,
    /// Admitted vertices never become pull candidates again (BFS-style).
    /// Enables the unvisited-candidates bitmap: pull iterations go through
    /// the masked word-parallel scan, and each iteration's output is retired
    /// from the mask 64 bits at a time.
    pub settle: bool,
    /// Bin sizing for [`Direction::BlockedPull`] iterations (only consulted
    /// when the policy's blocked-pull upgrade is enabled).
    pub bins: BlockedConfig,
}

/// Cross-iteration state of one adaptive traversal: the policy inputs that
/// persist between iterations (unexplored-edge mass, previous length,
/// current direction), the optional unvisited mask, and the decision trace.
pub struct AdaptiveAdvance {
    cfg: AdaptiveConfig,
    n: usize,
    unexplored_edges: usize,
    prev_len: usize,
    iter: usize,
    current: Direction,
    since_switch: usize,
    /// Unvisited-candidates mask (settle mode only), built lazily from the
    /// candidate predicate at the first pull iteration.
    unvisited: Option<DenseFrontier>,
    directions: Vec<Direction>,
    edges: usize,
}

impl AdaptiveAdvance {
    /// Fresh engine state for a traversal of `g`.
    pub fn new<G: GraphBase>(g: &G, cfg: AdaptiveConfig) -> Self {
        AdaptiveAdvance {
            cfg,
            n: g.num_vertices(),
            unexplored_edges: g.num_edges(),
            prev_len: 0,
            iter: 0,
            current: Direction::Push,
            // Large sentinel: the first decision is never dwell-suppressed.
            since_switch: usize::MAX,
            unvisited: None,
            directions: Vec::new(),
            edges: 0,
        }
    }

    /// Direction chosen each iteration so far.
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// Edges inspected so far: out-edges evaluated by push iterations plus
    /// in-edges scanned by pull iterations — the machine-independent work
    /// measure fixed-direction variants report.
    pub fn edges_inspected(&self) -> usize {
        self.edges
    }

    /// Iterations advanced so far.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Returns the engine's pooled memory (the unvisited mask) to the
    /// context. Call when the traversal's loop exits.
    pub fn finish(&mut self, ctx: &Context) {
        if let Some(mask) = self.unvisited.take() {
            ctx.recycle_dense_frontier(mask);
        }
    }

    /// The unvisited mask, built from `candidate` on first use (settle mode).
    fn ensure_unvisited<C: Fn(VertexId) -> bool>(
        &mut self,
        ctx: &Context,
        candidate: &C,
    ) -> &DenseFrontier {
        if self.unvisited.is_none() {
            // Parked in `self.unvisited` for the traversal's lifetime;
            // `finish()` recycles it when the loop exits.
            let mask = ctx.take_dense_frontier(self.n); // lease-ok: parked in self.unvisited until finish()
            for v in 0..self.n as VertexId {
                if candidate(v) {
                    mask.insert(v);
                }
            }
            self.unvisited = Some(mask);
        }
        self.unvisited.as_ref().unwrap() // unwrap-ok: set to Some directly above
    }
}

/// One adaptive advance: consults the policy, converts the frontier to the
/// chosen kernel's representation, expands, maintains the engine state, and
/// returns the next frontier. The spent input recycles through the context's
/// sparse/dense pools, so steady-state iterations of every direction perform
/// zero heap allocations.
///
/// `push_condition(src, dst, edge, w)` is evaluated once per out-edge of the
/// frontier on push iterations; `pull_condition(src, dst, w)` once per
/// scanned in-edge on pull iterations; `pull_candidate(dst)` gates which
/// destinations a pull scans (and seeds the unvisited mask in settle mode).
/// For the result to be direction-independent the conditions must be the
/// push/pull views of the same monotone update — BFS's claim-by-CAS,
/// SSSP/CC's `fetch_min` — as the fixed-direction variants already require.
#[allow(clippy::too_many_arguments)]
pub fn advance_adaptive<P, G, W, FPush, C, FPull>(
    policy: P,
    ctx: &Context,
    g: &G,
    engine: &mut AdaptiveAdvance,
    frontier: VertexFrontier,
    push_condition: FPush,
    pull_candidate: C,
    pull_condition: FPull,
) -> VertexFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + InEdgeWeights<W> + Sync,
    W: EdgeValue,
    FPush: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
    FPull: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = engine.n;
    let len = frontier.len();
    let growing = len > engine.prev_len;
    engine.prev_len = len;

    // Frontier out-edge mass: the α numerator, and the amount this
    // iteration retires from the unexplored pool. O(len) either way — the
    // dense side uses the word-parallel scan.
    let frontier_edges = match &frontier {
        VertexFrontier::Sparse(s) => s.iter().map(|v| g.out_degree(v)).sum(),
        VertexFrontier::Dense(d) => {
            let mut total = 0usize;
            d.for_each_active(|v| total += g.out_degree(v));
            total
        }
    };

    let mut dir = engine.cfg.policy.decide(&PolicyInputs {
        n,
        frontier_len: len,
        frontier_edges,
        unexplored_edges: engine.unexplored_edges,
        growing,
        current: engine.current,
        since_switch: engine.since_switch,
        compressed: false,
    });
    // The blocked kernel flushes against a candidate *bitmap*; without
    // settle mode there is none (candidacy is a predicate), so the upgrade
    // quietly degrades to the plain CSC pull.
    if dir == Direction::BlockedPull && !engine.cfg.settle {
        dir = Direction::Pull;
    }
    if dir.is_pull() != engine.current.is_pull() {
        engine.since_switch = 1;
    } else {
        engine.since_switch = engine.since_switch.saturating_add(1);
    }
    engine.current = dir;
    engine.directions.push(dir);
    if let Some(sink) = ctx.obs() {
        sink.on_direction(&DirectionEvent {
            iteration: engine.iter,
            frontier_len: len,
            // By convention the event carries the α-side quantity only when
            // the frontier arrived sparse (matching the original DO-BFS).
            frontier_edges: match &frontier {
                VertexFrontier::Sparse(_) => frontier_edges,
                VertexFrontier::Dense(_) => 0,
            },
            unexplored_edges: engine.unexplored_edges,
            growing,
            pull: dir.is_pull(),
        });
    }
    engine.unexplored_edges = engine.unexplored_edges.saturating_sub(frontier_edges);
    engine.iter += 1;

    match dir {
        Direction::Push | Direction::DensePush => {
            // Push kernels take a sparse input; a dense frontier converts
            // word-at-a-time into a recycled vector.
            let sparse = match frontier {
                VertexFrontier::Sparse(s) => s,
                VertexFrontier::Dense(d) => {
                    let mut scratch = ctx.take_scratch();
                    let mut v = scratch.take_vec();
                    ctx.put_scratch(scratch);
                    convert::dense_to_sparse_into(&d, &mut v);
                    ctx.recycle_dense_frontier(d);
                    SparseFrontier::from_vec(v)
                }
            };
            // Both push kernels evaluate the condition once per out-edge.
            engine.edges += frontier_edges;
            let out = if dir == Direction::DensePush {
                let out = expand_push_dense(policy, ctx, g, &sparse, push_condition);
                if let Some(mask) = &engine.unvisited {
                    mask.and_not(&out);
                }
                VertexFrontier::Dense(out)
            } else {
                let out = neighbors_expand_unique(policy, ctx, g, &sparse, push_condition);
                if let Some(mask) = &engine.unvisited {
                    for &v in out.as_slice() {
                        mask.remove(v);
                    }
                }
                VertexFrontier::Sparse(out)
            };
            ctx.recycle_frontier(sparse);
            out
        }
        Direction::Pull | Direction::BlockedPull => {
            let dense = match frontier {
                VertexFrontier::Sparse(s) => {
                    let d = ctx.take_dense_frontier(n);
                    for v in s.iter() {
                        d.insert(v);
                    }
                    ctx.recycle_frontier(s);
                    d
                }
                VertexFrontier::Dense(d) => d,
            };
            let pull_cfg = PullConfig {
                early_exit: engine.cfg.early_exit,
            };
            let (out, scanned) = if dir == Direction::BlockedPull {
                // Settle mode is guaranteed here (see the downgrade above).
                engine.ensure_unvisited(ctx, &pull_candidate);
                let mask = engine.unvisited.as_ref().unwrap(); // unwrap-ok: ensure_unvisited filled it
                expand_blocked_pull(
                    policy,
                    ctx,
                    g,
                    &dense,
                    mask,
                    pull_cfg,
                    engine.cfg.bins,
                    &pull_condition,
                )
            } else if engine.cfg.settle {
                // The mask reflects candidacy at iteration entry; outputs
                // retire from it below, keeping it exact.
                engine.ensure_unvisited(ctx, &pull_candidate);
                let mask = engine.unvisited.as_ref().unwrap(); // unwrap-ok: ensure_unvisited filled it
                expand_pull_masked(policy, ctx, g, &dense, mask, pull_cfg, &pull_condition)
            } else {
                expand_pull_counted(
                    policy,
                    ctx,
                    g,
                    &dense,
                    pull_cfg,
                    &pull_candidate,
                    &pull_condition,
                )
            };
            engine.edges += scanned;
            if let Some(mask) = &engine.unvisited {
                mask.and_not(&out);
            }
            ctx.recycle_dense_frontier(dense);
            VertexFrontier::Dense(out)
        }
    }
}

/// [`advance_adaptive`] over byte-coded compressed adjacency: the same
/// engine state, decision logic, representation conversions, bookkeeping,
/// and [`DirectionEvent`] emission, dispatching to the decode-aware
/// kernels ([`neighbors_expand_unique_compressed`],
/// [`expand_push_dense_compressed`], [`expand_pull_masked_compressed`],
/// [`expand_pull_counted_compressed`], [`expand_blocked_pull_compressed`])
/// and consulting the policy with
/// [`PolicyInputs::compressed`]` = true`, so a configured
/// [`CompressedPullPolicy`] takes effect. An [`AdaptiveAdvance`] engine
/// must not be shared between the raw and compressed entry points within
/// one traversal — the unexplored-edge bookkeeping is identical, but
/// mixing kernels mid-run would make the decision trace meaningless.
#[allow(clippy::too_many_arguments)]
pub fn advance_adaptive_compressed<P, G, W, FPush, C, FPull>(
    policy: P,
    ctx: &Context,
    g: &G,
    engine: &mut AdaptiveAdvance,
    frontier: VertexFrontier,
    push_condition: FPush,
    pull_candidate: C,
    pull_condition: FPull,
) -> VertexFrontier
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + DecodeInEdgeWeights<W> + Sync,
    W: EdgeValue,
    FPush: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
    FPull: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = engine.n;
    let len = frontier.len();
    let growing = len > engine.prev_len;
    engine.prev_len = len;

    // Degree lookups only (offset differences) — no decoding.
    let frontier_edges = match &frontier {
        VertexFrontier::Sparse(s) => s.iter().map(|v| g.out_degree(v)).sum(),
        VertexFrontier::Dense(d) => {
            let mut total = 0usize;
            d.for_each_active(|v| total += g.out_degree(v));
            total
        }
    };

    let mut dir = engine.cfg.policy.decide(&PolicyInputs {
        n,
        frontier_len: len,
        frontier_edges,
        unexplored_edges: engine.unexplored_edges,
        growing,
        current: engine.current,
        since_switch: engine.since_switch,
        compressed: true,
    });
    if dir == Direction::BlockedPull && !engine.cfg.settle {
        dir = Direction::Pull;
    }
    if dir.is_pull() != engine.current.is_pull() {
        engine.since_switch = 1;
    } else {
        engine.since_switch = engine.since_switch.saturating_add(1);
    }
    engine.current = dir;
    engine.directions.push(dir);
    if let Some(sink) = ctx.obs() {
        sink.on_direction(&DirectionEvent {
            iteration: engine.iter,
            frontier_len: len,
            frontier_edges: match &frontier {
                VertexFrontier::Sparse(_) => frontier_edges,
                VertexFrontier::Dense(_) => 0,
            },
            unexplored_edges: engine.unexplored_edges,
            growing,
            pull: dir.is_pull(),
        });
    }
    engine.unexplored_edges = engine.unexplored_edges.saturating_sub(frontier_edges);
    engine.iter += 1;

    match dir {
        Direction::Push | Direction::DensePush => {
            let sparse = match frontier {
                VertexFrontier::Sparse(s) => s,
                VertexFrontier::Dense(d) => {
                    let mut scratch = ctx.take_scratch();
                    let mut v = scratch.take_vec();
                    ctx.put_scratch(scratch);
                    convert::dense_to_sparse_into(&d, &mut v);
                    ctx.recycle_dense_frontier(d);
                    SparseFrontier::from_vec(v)
                }
            };
            engine.edges += frontier_edges;
            let out = if dir == Direction::DensePush {
                let out = expand_push_dense_compressed(policy, ctx, g, &sparse, push_condition);
                if let Some(mask) = &engine.unvisited {
                    mask.and_not(&out);
                }
                VertexFrontier::Dense(out)
            } else {
                let out =
                    neighbors_expand_unique_compressed(policy, ctx, g, &sparse, push_condition);
                if let Some(mask) = &engine.unvisited {
                    for &v in out.as_slice() {
                        mask.remove(v);
                    }
                }
                VertexFrontier::Sparse(out)
            };
            ctx.recycle_frontier(sparse);
            out
        }
        Direction::Pull | Direction::BlockedPull => {
            let dense = match frontier {
                VertexFrontier::Sparse(s) => {
                    let d = ctx.take_dense_frontier(n);
                    for v in s.iter() {
                        d.insert(v);
                    }
                    ctx.recycle_frontier(s);
                    d
                }
                VertexFrontier::Dense(d) => d,
            };
            let pull_cfg = PullConfig {
                early_exit: engine.cfg.early_exit,
            };
            let (out, scanned) = if dir == Direction::BlockedPull {
                // Settle mode is guaranteed here (see the downgrade above).
                engine.ensure_unvisited(ctx, &pull_candidate);
                let mask = engine.unvisited.as_ref().unwrap(); // unwrap-ok: ensure_unvisited filled it
                expand_blocked_pull_compressed(
                    policy,
                    ctx,
                    g,
                    &dense,
                    mask,
                    pull_cfg,
                    engine.cfg.bins,
                    &pull_condition,
                )
            } else if engine.cfg.settle {
                engine.ensure_unvisited(ctx, &pull_candidate);
                let mask = engine.unvisited.as_ref().unwrap(); // unwrap-ok: ensure_unvisited filled it
                expand_pull_masked_compressed(
                    policy,
                    ctx,
                    g,
                    &dense,
                    mask,
                    pull_cfg,
                    &pull_condition,
                )
            } else {
                expand_pull_counted_compressed(
                    policy,
                    ctx,
                    g,
                    &dense,
                    pull_cfg,
                    &pull_candidate,
                    &pull_condition,
                )
            };
            engine.edges += scanned;
            if let Some(mask) = &engine.unvisited {
                mask.and_not(&out);
            }
            ctx.recycle_dense_frontier(dense);
            VertexFrontier::Dense(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(current: Direction) -> PolicyInputs {
        PolicyInputs {
            n: 1000,
            frontier_len: 10,
            frontier_edges: 50,
            unexplored_edges: 10_000,
            growing: true,
            current,
            since_switch: usize::MAX,
            compressed: false,
        }
    }

    #[test]
    fn alpha_rule_enters_pull_only_while_growing() {
        let p = DirectionPolicy::default();
        let mut s = inputs(Direction::Push);
        s.frontier_edges = 2000; // > 10_000 / 14
        assert_eq!(p.decide(&s), Direction::Pull);
        s.growing = false;
        assert_eq!(p.decide(&s), Direction::Push);
        s.growing = true;
        s.frontier_edges = 100; // below the α threshold
        assert_eq!(p.decide(&s), Direction::Push);
    }

    #[test]
    fn beta_rule_exits_pull_on_the_shrinking_tail() {
        let p = DirectionPolicy::default();
        let mut s = inputs(Direction::Pull);
        s.frontier_len = 500; // >= 1000 / 24: keep pulling
        assert_eq!(p.decide(&s), Direction::Pull);
        s.frontier_len = 10; // < 1000 / 24: back to push
        assert_eq!(p.decide(&s), Direction::Push);
    }

    #[test]
    fn gamma_rule_picks_dense_push_for_fat_frontiers() {
        let p = DirectionPolicy::default();
        let mut s = inputs(Direction::Push);
        s.growing = false; // α can't fire
        s.frontier_len = 400; // 400 * 4 >= 1000
        assert_eq!(p.decide(&s), Direction::DensePush);
        s.frontier_len = 100; // 100 * 4 < 1000
        assert_eq!(p.decide(&s), Direction::Push);
    }

    #[test]
    fn dwell_suppresses_immediate_flips() {
        let p = DirectionPolicy {
            dwell: 3,
            ..DirectionPolicy::default()
        };
        // β wants push (len < n/24), but the flip is younger than dwell.
        let mut s = inputs(Direction::Pull);
        s.frontier_len = 10;
        s.since_switch = 1;
        assert_eq!(p.decide(&s), Direction::Pull);
        s.since_switch = 3;
        assert_eq!(p.decide(&s), Direction::Push);
    }

    #[test]
    fn degenerate_parameters_do_not_divide_by_zero() {
        let p = DirectionPolicy {
            alpha: 0,
            beta: 0,
            gamma: 0,
            dwell: 0,
            blocked: Some(BlockedPullPolicy { alpha: 0, beta: 0 }),
            compressed: Some(CompressedPullPolicy { alpha: 0, beta: 0 }),
        };
        let mut s = inputs(Direction::Push);
        s.compressed = true;
        let _ = p.decide(&s);
        let s = inputs(Direction::Push);
        let _ = p.decide(&s); // must not panic
        let s = inputs(Direction::Pull);
        let _ = p.decide(&s);
    }

    #[test]
    fn compressed_pair_substitutes_only_over_compressed_adjacency() {
        let p = DirectionPolicy {
            // Raw α = 14 would flip at frontier_edges > 10_000/14 ≈ 714; the
            // compressed α = 4 demands > 2500.
            compressed: Some(CompressedPullPolicy { alpha: 4, beta: 8 }),
            ..DirectionPolicy::default()
        };
        let mut s = inputs(Direction::Push);
        s.frontier_edges = 1000;
        assert_eq!(p.decide(&s), Direction::Pull, "raw α fires");
        s.compressed = true;
        assert_eq!(p.decide(&s), Direction::Push, "compressed α is stricter");
        s.frontier_edges = 3000;
        assert_eq!(p.decide(&s), Direction::Pull);
        // β side: raw keeps pulling down to n/24; compressed exits at n/8.
        let mut s = inputs(Direction::Pull);
        s.frontier_len = 100;
        assert_eq!(p.decide(&s), Direction::Pull, "raw β keeps pulling");
        s.compressed = true;
        assert_eq!(p.decide(&s), Direction::Push, "compressed β exits earlier");
        // Without a compressed pair, compressed inputs use the raw pair.
        let plain = DirectionPolicy::default();
        assert_eq!(plain.decide(&s), Direction::Pull);
    }

    #[test]
    fn blocked_upgrade_fires_only_above_its_alpha_threshold() {
        let p = DirectionPolicy {
            blocked: Some(BlockedPullPolicy { alpha: 8, beta: 16 }),
            ..DirectionPolicy::default()
        };
        let mut s = inputs(Direction::Pull);
        s.frontier_len = 200; // >= 1000/8: dense enough to bin
        assert_eq!(p.decide(&s), Direction::BlockedPull);
        s.frontier_len = 100; // pull keeps running (>= n/24) but below n/8
        assert_eq!(p.decide(&s), Direction::Pull);
        // Without the upgrade policy the same inputs never block.
        let plain = DirectionPolicy::default();
        s.frontier_len = 200;
        assert_eq!(plain.decide(&s), Direction::Pull);
    }

    #[test]
    fn blocked_exit_has_hysteresis() {
        let p = DirectionPolicy {
            blocked: Some(BlockedPullPolicy { alpha: 8, beta: 16 }),
            ..DirectionPolicy::default()
        };
        // Between n/16 and n/8: stays blocked if already blocked, stays
        // plain if not — the two thresholds straddle the boundary.
        let mut s = inputs(Direction::BlockedPull);
        s.frontier_len = 80;
        assert_eq!(p.decide(&s), Direction::BlockedPull);
        let mut s = inputs(Direction::Pull);
        s.frontier_len = 80;
        assert_eq!(p.decide(&s), Direction::Pull);
        // Below n/16 the β rule of the outer pair still rules first: 80 >=
        // 1000/24 keeps pulling, 30 < 1000/24 leaves the pull family.
        let mut s = inputs(Direction::BlockedPull);
        s.frontier_len = 30;
        assert_eq!(p.decide(&s), Direction::Push);
    }
}
