//! Reduction operators over vertex ranges.

use essentials_parallel::{ExecutionPolicy, Schedule};

use crate::context::Context;

/// Reduces `map(i)` for `i in 0..n` with an associative `combine` starting
/// from `identity`.
pub fn reduce<P, T, M, C>(_policy: P, ctx: &Context, n: usize, identity: T, map: M, combine: C) -> T
where
    P: ExecutionPolicy,
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    ctx.pool()
        .parallel_reduce(0..n, Schedule::default(), identity, map, combine)
}

/// Counts indices in `0..n` satisfying `pred`.
pub fn count_if<P, F>(policy: P, ctx: &Context, n: usize, pred: F) -> usize
where
    P: ExecutionPolicy,
    F: Fn(usize) -> bool + Sync,
{
    reduce(
        policy,
        ctx,
        n,
        0usize,
        |i| usize::from(pred(i)),
        |a, b| a + b,
    )
}

/// Maximum of `map(i)` over `0..n` under `f64` ordering (NaN-free inputs).
pub fn max_f64<P, M>(policy: P, ctx: &Context, n: usize, map: M) -> f64
where
    P: ExecutionPolicy,
    M: Fn(usize) -> f64 + Sync,
{
    reduce(policy, ctx, n, f64::NEG_INFINITY, map, f64::max)
}

/// Sum of `map(i)` over `0..n`. Parallel summation reassociates, so
/// floating-point results may differ from sequential by rounding; callers
/// compare with tolerances.
pub fn sum_f64<P, M>(policy: P, ctx: &Context, n: usize, map: M) -> f64
where
    P: ExecutionPolicy,
    M: Fn(usize) -> f64 + Sync,
{
    reduce(policy, ctx, n, 0.0, map, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::execution;

    #[test]
    fn reduce_policy_equivalence_exact_for_integers() {
        let ctx = Context::new(4);
        let seq = reduce(
            execution::seq,
            &ctx,
            100_000,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        let par = reduce(
            execution::par,
            &ctx,
            100_000,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn count_if_counts() {
        let ctx = Context::new(4);
        assert_eq!(count_if(execution::par, &ctx, 10_000, |i| i % 7 == 0), 1429);
    }

    #[test]
    fn max_and_sum() {
        let ctx = Context::new(2);
        assert_eq!(max_f64(execution::par, &ctx, 1000, |i| i as f64), 999.0);
        let s = sum_f64(execution::par, &ctx, 1000, |_| 0.5);
        assert!((s - 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_reduction_yields_identity() {
        let ctx = Context::new(2);
        assert_eq!(
            reduce(execution::par, &ctx, 0, 7u32, |_| 0, |a, b| a + b),
            7
        );
        assert_eq!(max_f64(execution::seq, &ctx, 0, |_| 1.0), f64::NEG_INFINITY);
    }
}
