//! Reduction operators over vertex ranges.

use std::sync::atomic::{AtomicUsize, Ordering};

use essentials_parallel::{ExecutionPolicy, Schedule};

use crate::context::Context;

/// Reduces `map(i)` for `i in 0..n` with an associative `combine` starting
/// from `identity`.
pub fn reduce<P, T, M, C>(_policy: P, ctx: &Context, n: usize, identity: T, map: M, combine: C) -> T
where
    P: ExecutionPolicy,
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    ctx.pool()
        .parallel_reduce(0..n, Schedule::default(), identity, map, combine)
}

/// Counts indices in `0..n` satisfying `pred`.
pub fn count_if<P, F>(policy: P, ctx: &Context, n: usize, pred: F) -> usize
where
    P: ExecutionPolicy,
    F: Fn(usize) -> bool + Sync,
{
    reduce(
        policy,
        ctx,
        n,
        0usize,
        |i| usize::from(pred(i)),
        |a, b| a + b,
    )
}

/// Maximum of `map(i)` over `0..n` under `f64` ordering (NaN-free inputs).
pub fn max_f64<P, M>(policy: P, ctx: &Context, n: usize, map: M) -> f64
where
    P: ExecutionPolicy,
    M: Fn(usize) -> f64 + Sync,
{
    reduce(policy, ctx, n, f64::NEG_INFINITY, map, f64::max)
}

/// Sum of `map(i)` over `0..n`, deterministically: the parallel path cuts
/// `0..n` into fixed chunks, each claimed chunk writes its partial into a
/// per-chunk slot, and the partials are combined **in chunk order** after
/// the join. The association therefore depends only on `n` — never on
/// thread count, chunk-claim order, or merge arrival — so repeated runs
/// and different pool widths produce bit-identical sums. The differential
/// suite leans on this: compressed pull PageRank must reproduce raw ranks
/// bit-for-bit, and the dangling-mass and residual terms computed here
/// feed every vertex's base each iteration.
///
/// The partial table is a fixed stack array (the chunk grain grows with
/// `n` so the table never overflows), keeping the fixpoint algorithms'
/// per-iteration calls allocation-free (DESIGN.md §12). Inputs below the
/// default schedule's sequential cutoff take the exact sequential loop,
/// preserving seq/par bit-equality for small graphs.
pub fn sum_f64<P, M>(_policy: P, ctx: &Context, n: usize, map: M) -> f64
where
    P: ExecutionPolicy,
    M: Fn(usize) -> f64 + Sync,
{
    const GRAIN: usize = 1024;
    const MAX_CHUNKS: usize = 4096;
    if !P::IS_PARALLEL || ctx.num_threads() == 1 || n < Schedule::default().sequential_cutoff() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += map(i);
        }
        return acc;
    }
    let grain = GRAIN.max(n.div_ceil(MAX_CHUNKS));
    let nchunks = n.div_ceil(grain);
    let mut partials = [0.0f64; MAX_CHUNKS];
    struct SendPtr(*mut f64);
    impl SendPtr {
        fn get(&self) -> *mut f64 {
            self.0
        }
    }
    // SAFETY: the pointer is only used to write disjoint chunk slots from
    // the workers; the array outlives the loop (`run` joins before the
    // combine below reads it).
    unsafe impl Sync for SendPtr {}
    let ptr = SendPtr(partials.as_mut_ptr());
    let ptr = &ptr;
    let next = AtomicUsize::new(0);
    ctx.pool().run(|_tid| loop {
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= nchunks {
            break;
        }
        let lo = chunk * grain;
        let hi = (lo + grain).min(n);
        let mut local = 0.0;
        for i in lo..hi {
            local += map(i);
        }
        // SAFETY: `chunk` came from the shared counter, so exactly one
        // worker writes this slot.
        unsafe {
            *ptr.get().add(chunk) = local;
        }
    });
    partials[..nchunks].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::execution;

    #[test]
    fn reduce_policy_equivalence_exact_for_integers() {
        let ctx = Context::new(4);
        let seq = reduce(
            execution::seq,
            &ctx,
            100_000,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        let par = reduce(
            execution::par,
            &ctx,
            100_000,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn count_if_counts() {
        let ctx = Context::new(4);
        assert_eq!(count_if(execution::par, &ctx, 10_000, |i| i % 7 == 0), 1429);
    }

    #[test]
    fn max_and_sum() {
        let ctx = Context::new(2);
        assert_eq!(max_f64(execution::par, &ctx, 1000, |i| i as f64), 999.0);
        let s = sum_f64(execution::par, &ctx, 1000, |_| 0.5);
        assert!((s - 500.0).abs() < 1e-9);
    }

    #[test]
    fn sum_f64_parallel_path_matches_sequential_within_tolerance() {
        let ctx = Context::new(4);
        // n well past the sequential cutoff so the chunk-claiming path runs.
        let n = 100_000;
        let seq = sum_f64(execution::seq, &ctx, n, |i| 1.0 / (i + 1) as f64);
        let par = sum_f64(execution::par, &ctx, n, |i| 1.0 / (i + 1) as f64);
        assert!((seq - par).abs() < 1e-9, "{seq} vs {par}");
        // Integer-valued maps reassociate exactly.
        let exact = sum_f64(execution::par, &ctx, n, |i| (i % 7) as f64);
        assert_eq!(exact, (0..n).map(|i| (i % 7) as f64).sum::<f64>());
    }

    #[test]
    fn sum_f64_is_bit_deterministic_across_runs_and_pool_widths() {
        // Rounding-sensitive map, n past the cutoff so the chunked parallel
        // path runs. The per-chunk partial table makes the association a
        // function of n alone, so every pool width and every repeat must
        // produce the same bits — the compressed-vs-raw PageRank
        // differential depends on exactly this.
        let n = 100_000;
        let map = |i: usize| 1.0 / (i + 1) as f64;
        let baseline = sum_f64(execution::par, &Context::new(2), n, map);
        for threads in [2, 3, 4, 8] {
            let ctx = Context::new(threads);
            for _ in 0..3 {
                let s = sum_f64(execution::par, &ctx, n, map);
                assert_eq!(s.to_bits(), baseline.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_reduction_yields_identity() {
        let ctx = Context::new(2);
        assert_eq!(
            reduce(execution::par, &ctx, 0, 7u32, |_| 0, |a, b| a + b),
            7
        );
        assert_eq!(max_f64(execution::seq, &ctx, 0, |_| 1.0), f64::NEG_INFINITY);
    }
}
