//! Decode-aware advance operators over byte-coded compressed adjacency
//! (DESIGN.md §14).
//!
//! These are the compressed twins of the raw-CSR operators in
//! [`advance`](crate::operators::advance) and
//! [`blocked`](crate::operators::blocked): same signatures, same output
//! contracts, same observability events — but the adjacency is streamed
//! through [`NeighborDecoder`]s ([`essentials_graph::ccsr`]) instead of
//! sliced out of a raw column array. Neighbor ids decode in ascending
//! order, and edge ids stay the contiguous CSR numbering (`out_edges(v)`
//! yields the same range either way), so a side-effectful condition sees
//! *exactly* the `(src, dst, e, w)` tuples the raw operator shows it —
//! `tests/differential.rs` pins the results bit-identical.
//!
//! Load balancing composes unchanged: the per-vertex degree array
//! (`edge_offsets` differences) drives the same prefix-sum/edge-chunk
//! division as raw CSR; a chunk landing mid-row re-decodes the row prefix
//! via [`NeighborDecoder::skip_ahead`] — bounded by one row per chunk
//! boundary, and rows are short in exactly the graphs where compression
//! matters.

use essentials_frontier::{DenseFrontier, SparseFrontier};
use essentials_graph::{
    DecodeEdgeWeights, DecodeInEdgeWeights, DecodeOutNeighbors, EdgeId, EdgeValue, VertexId,
};
use essentials_obs::{AdvanceEvent, OpKind};
use essentials_parallel::atomics::Counter;
use essentials_parallel::{parallel_scan_with, ExecutionPolicy, Schedule};

use crate::context::Context;
use crate::operators::advance::PullConfig;
use crate::operators::blocked::{for_each_chunk, BlockedConfig, SendPtr, WORD_CHUNK};
use crate::scratch::AdvanceScratch;

/// Sum of out-degrees over a frontier (degree array lookups only — no
/// decoding). Evaluated only when a sink wants operator detail.
fn frontier_out_edges_compressed<G: DecodeOutNeighbors>(g: &G, f: &SparseFrontier) -> u64 {
    f.iter().map(|v| g.out_degree(v) as u64).sum()
}

/// Edge-balanced iteration over compressed adjacency:
/// `f(worker, src, dst, edge)` is called once per out-edge of every
/// frontier vertex, edge work divided evenly across workers by the same
/// prefix-sum/chunk division as the raw path. Unlike raw CSR there is no
/// random `edge_dest` access, so the destination is decoded in-stream and
/// handed to the callback alongside the edge id.
fn for_each_edge_balanced_decode<G, F>(
    ctx: &Context,
    g: &G,
    frontier: &[VertexId],
    offsets: &mut Vec<usize>,
    chunk_sums: &mut Vec<usize>,
    f: F,
) where
    G: DecodeOutNeighbors + Sync,
    F: Fn(usize, VertexId, VertexId, EdgeId) + Sync,
{
    let total = parallel_scan_with(
        ctx.pool(),
        frontier.len(),
        |i| g.out_degree(frontier[i]),
        offsets,
        chunk_sums,
    );
    if total == 0 {
        return;
    }
    let offsets: &[usize] = offsets;
    let threads = ctx.num_threads();
    let grain = (total / (threads * 8).max(1)).clamp(256, 1 << 16);
    let chunks = total.div_ceil(grain);

    ctx.pool()
        .parallel_for_with(0..chunks, Schedule::Dynamic(1), |tid, c| {
            let work_lo = c * grain;
            let work_hi = ((c + 1) * grain).min(total);
            let mut fi = offsets.partition_point(|&o| o <= work_lo) - 1;
            let mut w = work_lo;
            while w < work_hi {
                let src = frontier[fi];
                let row = g.out_edges(src);
                // Position inside src's neighbor list: a mid-row start
                // decodes and discards the prefix (sequential codes have no
                // random access), then streams the chunk's share.
                let inner = w - offsets[fi];
                let take = (offsets[fi + 1] - w).min(work_hi - w);
                let mut dec = g.out_decoder(src);
                dec.skip_ahead(inner);
                for (e, dst) in (row.start + inner..).zip(dec.by_ref().take(take)) {
                    f(tid, src, dst, e);
                }
                w += take;
                fi += 1;
            }
        });
}

/// Push-direction neighbor expansion over compressed adjacency — the
/// decode-aware twin of [`neighbors_expand`](crate::operators::advance::neighbors_expand).
///
/// For every active vertex `v` and out-edge `e = (v, n)` (destination
/// decoded in ascending order, weight looked up by the contiguous edge
/// id), evaluates `condition(v, n, e, w)`; admitting destinations enter
/// the output frontier, duplicates possible as on the raw path.
pub fn neighbors_expand_compressed<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    expand_compressed_impl::<P, _, _, _, false>(ctx, g, f, condition)
}

/// [`neighbors_expand_compressed`] with fused deduplication — the
/// decode-aware twin of
/// [`neighbors_expand_unique`](crate::operators::advance::neighbors_expand_unique):
/// each destination enters the output at most once, recorded in the same
/// reusable atomic bitmap, swept clean afterwards by walking the output.
/// The condition still runs for every edge; only insertion is gated.
pub fn neighbors_expand_unique_compressed<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    expand_compressed_impl::<P, _, _, _, true>(ctx, g, f, condition)
}

/// Shared body of the compressed push expansions. All transient memory —
/// degree prefix sums, per-worker output buffers, the dedup bitmap, and
/// the output vector — comes from the context's [`AdvanceScratch`], so
/// steady-state calls allocate nothing (`tests/zero_alloc.rs` pins the
/// compressed decode path too).
fn expand_compressed_impl<P, G, W, F, const UNIQUE: bool>(
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let mut scratch = ctx.take_scratch();
    if UNIQUE {
        scratch.ensure_seen(g.num_vertices());
    }

    let detail = ctx.obs_wants_detail();
    let admitted = Counter::new();
    let condition = |v: VertexId, n: VertexId, e: EdgeId, w: W| {
        let ok = condition(v, n, e, w);
        if detail && ok {
            admitted.add(1);
        }
        ok
    };
    let emit = |ctx: &Context, frontier_in: usize, output_len: usize, per_worker: &[usize]| {
        if let Some(sink) = ctx.obs() {
            let adm = admitted.get() as u64;
            sink.on_advance(&AdvanceEvent {
                kind: if UNIQUE {
                    OpKind::AdvanceUnique
                } else {
                    OpKind::Advance
                },
                policy: P::NAME,
                frontier_in,
                edges_inspected: if detail {
                    frontier_out_edges_compressed(g, f)
                } else {
                    0
                },
                admitted: adm,
                output_len,
                dedup_hits: if UNIQUE && detail {
                    adm.saturating_sub(output_len as u64)
                } else {
                    0
                },
                per_worker,
            });
        }
    };

    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let mut out = scratch.take_vec();
        let seen = &scratch.seen;
        for v in f.iter() {
            for (e, n) in (g.out_edges(v).start..).zip(g.out_decoder(v)) {
                let w = g.edge_weight(e);
                if condition(v, n, e, w) && (!UNIQUE || seen.set(n as usize)) {
                    out.push(n); // alloc-ok: pooled output vec, capacity retained across iterations
                }
            }
        }
        if UNIQUE {
            for &v in &out {
                scratch.seen.clear(v as usize);
            }
        }
        emit(ctx, f.len(), out.len(), &[]);
        ctx.put_scratch(scratch);
        return SparseFrontier::from_vec(out);
    }

    {
        let AdvanceScratch {
            offsets,
            chunk_sums,
            buffers,
            seen,
            ..
        } = &mut *scratch;
        buffers.ensure_workers(ctx.num_threads());
        let seen = &*seen;
        let view = buffers.view();
        for_each_edge_balanced_decode(ctx, g, f.as_slice(), offsets, chunk_sums, |tid, v, n, e| {
            let w = g.edge_weight(e);
            if condition(v, n, e, w) && (!UNIQUE || seen.set(n as usize)) {
                // SAFETY: `tid` is this worker's own id; the pool runs each
                // worker id on exactly one thread per region.
                unsafe { view.push(tid, n) }; // alloc-ok: worker buffer keeps its capacity; steady state is alloc-free (tests/zero_alloc.rs)
            }
        });
    }

    let per_worker = if detail && ctx.obs().is_some() {
        scratch.buffers.slot_lens()
    } else {
        Vec::new() // alloc-ok: Vec::new never allocates; detail collection is gated above
    };
    let mut out = scratch.take_vec();
    scratch.buffers.drain_into(&mut out);
    if UNIQUE {
        let seen = &scratch.seen;
        let out_ref: &[VertexId] = &out;
        ctx.pool()
            .parallel_for(0..out_ref.len(), Schedule::Static, |i| {
                seen.clear(out_ref[i] as usize);
            });
    }
    emit(ctx, f.len(), out.len(), &per_worker);
    ctx.put_scratch(scratch);
    SparseFrontier::from_vec(out)
}

/// Compressed push expansion into a **dense** output frontier — the
/// decode-aware twin of
/// [`expand_push_dense`](crate::operators::advance::expand_push_dense).
pub fn expand_push_dense_compressed<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> DenseFrontier
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let output = ctx.take_dense_frontier(g.num_vertices());
    let detail = ctx.obs_wants_detail();
    let admitted = Counter::new();
    let body = |v: VertexId, n: VertexId, e: EdgeId| {
        let w = g.edge_weight(e);
        if condition(v, n, e, w) {
            if detail {
                admitted.add(1);
            }
            output.insert(n);
        }
    };
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for v in f.iter() {
            for (e, n) in (g.out_edges(v).start..).zip(g.out_decoder(v)) {
                body(v, n, e);
            }
        }
    } else {
        let mut scratch = ctx.take_scratch();
        {
            let AdvanceScratch {
                offsets,
                chunk_sums,
                ..
            } = &mut *scratch;
            for_each_edge_balanced_decode(
                ctx,
                g,
                f.as_slice(),
                offsets,
                chunk_sums,
                |_t, v, n, e| body(v, n, e),
            );
        }
        ctx.put_scratch(scratch);
    }
    if let Some(sink) = ctx.obs() {
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::AdvanceDense,
            policy: P::NAME,
            frontier_in: f.len(),
            edges_inspected: if detail {
                frontier_out_edges_compressed(g, f)
            } else {
                0
            },
            admitted: admitted.get() as u64,
            output_len: output.len(),
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    output
}

/// Pull-direction expansion over compressed in-adjacency — the
/// decode-aware twin of
/// [`expand_pull_counted`](crate::operators::advance::expand_pull_counted):
/// every candidate destination streams its in-neighbor decoder looking for
/// active sources. Weights are looked up by the contiguous in-edge id, so
/// the condition sees the same `(src, dst, w)` tuples in the same
/// (ascending-source) order as the CSC slice scan.
pub fn expand_pull_counted_compressed<P, G, W, C, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    cfg: PullConfig,
    candidate: C,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: DecodeInEdgeWeights<W> + Sync,
    W: EdgeValue,
    C: Fn(VertexId) -> bool + Sync,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    let output = ctx.take_dense_frontier(n);
    let scanned = Counter::new();
    let scan = |dst: VertexId| {
        if !candidate(dst) {
            return;
        }
        let mut local_scans = 0usize;
        for (e, src) in (g.in_edges(dst).start..).zip(g.in_decoder(dst)) {
            local_scans += 1;
            if input.contains(src) && condition(src, dst, g.in_edge_weight(e)) {
                output.insert(dst);
                if cfg.early_exit {
                    break;
                }
            }
        }
        scanned.add(local_scans);
    };
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for dst in 0..n as VertexId {
            scan(dst);
        }
    } else {
        ctx.pool()
            .parallel_for(0..n, Schedule::Dynamic(256), |i| scan(i as VertexId));
    }
    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::Pull,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: scanned.get() as u64,
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, scanned.get())
}

/// Masked pull over compressed in-adjacency — the decode-aware twin of
/// [`expand_pull_masked`](crate::operators::advance::expand_pull_masked):
/// the candidate set is a bitmap iterated word-parallel; only its set
/// destinations decode their in-neighbor streams.
pub fn expand_pull_masked_compressed<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    candidates: &DenseFrontier,
    cfg: PullConfig,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: DecodeInEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    debug_assert_eq!(candidates.capacity(), n);
    let output = ctx.take_dense_frontier(n);
    let scanned = Counter::new();
    let scan = |dst: VertexId| {
        let mut local_scans = 0usize;
        for (e, src) in (g.in_edges(dst).start..).zip(g.in_decoder(dst)) {
            local_scans += 1;
            if input.contains(src) && condition(src, dst, g.in_edge_weight(e)) {
                output.insert(dst);
                if cfg.early_exit {
                    break;
                }
            }
        }
        scanned.add(local_scans);
    };
    let mask = candidates.bits();
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        mask.for_each_set(|i| scan(i as VertexId));
    } else {
        ctx.pool()
            .parallel_for(0..mask.num_words(), Schedule::Dynamic(4), |wi| {
                mask.for_each_set_in_words(wi, wi + 1, &mut |i| scan(i as VertexId));
            });
    }
    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::Pull,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: scanned.get() as u64,
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, scanned.get())
}

/// Frontier-masked blocked pull over compressed **out**-adjacency — the
/// decode-aware twin of
/// [`expand_blocked_pull`](crate::operators::blocked::expand_blocked_pull).
/// Active sources' out-edges are decoded (twice: count pass, fill pass)
/// into destination-binned entries, then each bin flushes with
/// cache-resident candidate/output probes. Needs no compressed CSC at
/// all — the same property that makes the raw blocked pull CSC-free.
#[allow(clippy::too_many_arguments)]
pub fn expand_blocked_pull_compressed<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    candidates: &DenseFrontier,
    cfg: PullConfig,
    bcfg: BlockedConfig,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    debug_assert_eq!(candidates.capacity(), n);
    assert!(
        g.num_edges() <= u32::MAX as usize,
        "expand_blocked_pull_compressed packs edge ids into u32 entries"
    );
    let output = ctx.take_dense_frontier(n);
    let parallel = P::IS_PARALLEL && ctx.num_threads() > 1;
    let bin_bits = bcfg.clamped_bits();
    let nbins = n.div_ceil(1usize << bin_bits);
    let words = input.bits().num_words();
    let nchunks = words.div_ceil(WORD_CHUNK);
    let cells = nbins * nchunks;

    let mut s = ctx.take_scratch();
    let mut offsets = s.take_usize();
    let mut cursors = s.take_usize();
    let mut entries = s.take_u32();
    ctx.put_scratch(s);

    offsets.resize(cells + 1, 0); // alloc-ok: cold growth, pooled across calls
    cursors.resize(cells, 0); // alloc-ok: cold growth, pooled across calls
    cursors[..].fill(0);
    let bits = input.bits();

    // Count pass over active sources, chunked by bitmap words; each
    // source's destinations decode in-stream.
    {
        let cptr = SendPtr(cursors.as_mut_ptr());
        let cptr = &cptr;
        for_each_chunk(ctx, parallel, nchunks, |c| {
            let w_lo = c * WORD_CHUNK;
            let w_hi = ((c + 1) * WORD_CHUNK).min(words);
            bits.for_each_set_in_words(w_lo, w_hi, &mut |src| {
                for d in g.out_decoder(src as VertexId) {
                    let cell = ((d as usize) >> bin_bits) * nchunks + c;
                    // SAFETY: column `c` of the count matrix is owned by
                    // this chunk invocation (see BlockedGather::build).
                    unsafe { *cptr.get().add(cell) += 1 };
                }
            });
        });
    }

    let mut acc = 0usize;
    for i in 0..cells {
        offsets[i] = acc;
        acc += cursors[i];
    }
    offsets[cells] = acc;
    let m = acc;

    // Fill pass: second decode of the same rows, writing stride-3 entries
    // (dst, src, edge) at the cell cursors. Edge ids advance with the
    // decode position, so they match the raw CSR numbering exactly.
    entries.resize(3 * m, 0); // alloc-ok: cold growth, pooled across calls
    cursors.copy_from_slice(&offsets[..cells]);
    {
        let cptr = SendPtr(cursors.as_mut_ptr());
        let eptr = SendPtr(entries.as_mut_ptr());
        let (cptr, eptr) = (&cptr, &eptr);
        for_each_chunk(ctx, parallel, nchunks, |c| {
            let w_lo = c * WORD_CHUNK;
            let w_hi = ((c + 1) * WORD_CHUNK).min(words);
            bits.for_each_set_in_words(w_lo, w_hi, &mut |src| {
                let row = g.out_edges(src as VertexId).start;
                for (e, d) in (row..).zip(g.out_decoder(src as VertexId)) {
                    let cell = ((d as usize) >> bin_bits) * nchunks + c;
                    // SAFETY: column-disjoint cursors hand out unique
                    // entry slots (see BlockedGather::build).
                    unsafe {
                        let k = *cptr.get().add(cell);
                        *cptr.get().add(cell) = k + 1;
                        let at = eptr.get().add(3 * k);
                        *at = d;
                        *at.add(1) = src as u32;
                        *at.add(2) = e as u32;
                    }
                }
            });
        });
    }

    // Flush: identical to the raw blocked pull — the entries already carry
    // everything; only the weight lookup touches the graph.
    {
        let output = &output;
        let (offsets, entries) = (&offsets, &entries);
        let condition = &condition;
        for_each_chunk(ctx, parallel, nbins, |b| {
            for k in offsets[b * nchunks]..offsets[(b + 1) * nchunks] {
                let dst = entries[3 * k];
                if cfg.early_exit && output.contains(dst) {
                    continue;
                }
                if !candidates.contains(dst) {
                    continue;
                }
                let src = entries[3 * k + 1];
                let e = entries[3 * k + 2] as EdgeId;
                if condition(src, dst, g.edge_weight(e)) {
                    output.insert(dst);
                }
            }
        });
    }

    let mut s = ctx.take_scratch();
    s.put_usize(offsets);
    s.put_usize(cursors);
    s.put_u32(entries);
    ctx.put_scratch(s);

    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::PullBlocked,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: m as u64,
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::advance::{
        expand_pull_masked, expand_push_dense, neighbors_expand, neighbors_expand_unique,
    };
    use crate::operators::blocked::expand_blocked_pull;
    use essentials_graph::{CompressedGraph, Graph, GraphBase, GraphBuilder};
    use essentials_parallel::{execution, ThreadPool};

    fn ring_with_chords(n: usize) -> Graph<f32> {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            let n32 = n as VertexId;
            b = b.edge(v, (v + 1) % n32, (v % 7) as f32 + 0.5);
            b = b.edge(v, (v * 7 + 3) % n32, (v % 3) as f32 + 1.0);
        }
        b.deduplicate().with_csc().build()
    }

    fn compress(g: &Graph<f32>, threads: usize) -> CompressedGraph<f32> {
        let pool = ThreadPool::new(threads);
        CompressedGraph::from_graph(&pool, g)
    }

    #[test]
    fn compressed_push_matches_raw_push() {
        let g = ring_with_chords(500);
        let cg = compress(&g, 4);
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let f = SparseFrontier::from_vec((0..250).collect());
            let cond = |s: VertexId, d: VertexId, _e: EdgeId, w: f32| {
                !(s + d).is_multiple_of(3) && w < 6.0
            };
            let raw = neighbors_expand(execution::par, &ctx, &g, &f, cond);
            let comp = neighbors_expand_compressed(execution::par, &ctx, &cg, &f, cond);
            let mut a: Vec<VertexId> = raw.iter().collect();
            let mut b: Vec<VertexId> = comp.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn compressed_unique_push_matches_raw_unique() {
        let g = ring_with_chords(300);
        let cg = compress(&g, 2);
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let f = SparseFrontier::from_vec((0..300).collect());
            let raw = neighbors_expand_unique(execution::par, &ctx, &g, &f, |_, _, _, _| true);
            let comp =
                neighbors_expand_unique_compressed(execution::par, &ctx, &cg, &f, |_, _, _, _| {
                    true
                });
            let mut a: Vec<VertexId> = raw.iter().collect();
            let mut b: Vec<VertexId> = comp.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn compressed_dense_push_matches_raw() {
        let g = ring_with_chords(400);
        let cg = compress(&g, 4);
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let f = SparseFrontier::from_vec((0..400).step_by(3).collect());
            let cond = |_s: VertexId, d: VertexId, _e: EdgeId, _w: f32| d.is_multiple_of(2);
            let raw = expand_push_dense(execution::par, &ctx, &g, &f, cond);
            let comp = expand_push_dense_compressed(execution::par, &ctx, &cg, &f, cond);
            let mut a: Vec<VertexId> = raw.iter().collect();
            let mut b: Vec<VertexId> = comp.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn compressed_masked_pull_matches_raw_and_counts_scans() {
        let g = ring_with_chords(400);
        let cg = compress(&g, 4);
        let n = g.num_vertices();
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let input = DenseFrontier::new(n);
            for v in (0..n as VertexId).filter(|v| v % 3 == 0) {
                input.insert(v);
            }
            let candidates = DenseFrontier::new(n);
            for v in (0..n as VertexId).filter(|v| v % 2 == 0) {
                candidates.insert(v);
            }
            let cond = |src: VertexId, dst: VertexId, _w: f32| !(src + dst).is_multiple_of(5);
            let (raw, raw_scans) = expand_pull_masked(
                execution::par,
                &ctx,
                &g,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                cond,
            );
            let (comp, comp_scans) = expand_pull_masked_compressed(
                execution::par,
                &ctx,
                &cg,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                cond,
            );
            let mut a: Vec<VertexId> = raw.iter().collect();
            let mut b: Vec<VertexId> = comp.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(raw_scans, comp_scans, "threads={threads}");
        }
    }

    #[test]
    fn compressed_blocked_pull_matches_raw_blocked_pull() {
        let g = ring_with_chords(400);
        let cg = compress(&g, 4);
        let n = g.num_vertices();
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let input = DenseFrontier::new(n);
            for v in (0..n as VertexId).filter(|v| v % 4 != 1) {
                input.insert(v);
            }
            let candidates = DenseFrontier::new(n);
            candidates.set_all();
            let cond = |src: VertexId, dst: VertexId, _w: f32| (src ^ dst) % 7 != 2;
            let (raw, raw_m) = expand_blocked_pull(
                execution::par,
                &ctx,
                &g,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                BlockedConfig { bin_bits: 5 },
                cond,
            );
            let (comp, comp_m) = expand_blocked_pull_compressed(
                execution::par,
                &ctx,
                &cg,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                BlockedConfig { bin_bits: 5 },
                cond,
            );
            let mut a: Vec<VertexId> = raw.iter().collect();
            let mut b: Vec<VertexId> = comp.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(raw_m, comp_m, "threads={threads}");
        }
    }

    #[test]
    fn compressed_push_passes_matching_edge_ids_and_weights() {
        // The condition must see the same (src, dst, e, w) tuples as raw:
        // weights here are edge-position-dependent, so a mismatched edge id
        // would change the admitted set.
        let g = ring_with_chords(200);
        let cg = compress(&g, 2);
        let ctx = Context::new(4);
        let f = SparseFrontier::from_vec((0..200).collect());
        let cond = |_s: VertexId, _d: VertexId, e: EdgeId, w: f32| {
            e.is_multiple_of(2) ^ (w as usize).is_multiple_of(2)
        };
        let raw = neighbors_expand(execution::par, &ctx, &g, &f, cond);
        let comp = neighbors_expand_compressed(execution::par, &ctx, &cg, &f, cond);
        let mut a: Vec<VertexId> = raw.iter().collect();
        let mut b: Vec<VertexId> = comp.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_frontier_and_empty_graph() {
        let g: Graph<f32> = GraphBuilder::new(0).with_csc().build();
        let cg = compress(&g, 1);
        let ctx = Context::new(2);
        let f = SparseFrontier::new();
        let out = neighbors_expand_compressed(execution::par, &ctx, &cg, &f, |_, _, _, _| true);
        assert!(out.is_empty());
    }
}
