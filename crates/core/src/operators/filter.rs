//! Filter operators: frontier contraction.
//!
//! The complement of advance — drop active vertices that fail a predicate
//! (already-visited, out of scope) and collapse duplicates left behind by a
//! push expansion.

use std::panic::{catch_unwind, AssertUnwindSafe};

use essentials_frontier::{Collector, DenseFrontier, SparseFrontier};
use essentials_graph::VertexId;
use essentials_obs::{FilterEvent, OpKind};
use essentials_parallel::{
    exec::panic_payload_string, ChunkAction, ExecError, ExecutionPolicy, Progress, Schedule,
};

use crate::context::Context;

/// Emits a [`FilterEvent`] if the context carries a sink. One call per
/// operator call — the instrumentation never enters the per-vertex loop.
fn emit(ctx: &Context, kind: OpKind, policy: &'static str, input_len: usize, output_len: usize) {
    if let Some(sink) = ctx.obs() {
        sink.on_filter(&FilterEvent {
            kind,
            policy,
            input_len,
            output_len,
        });
    }
}

/// Keeps the active vertices for which `pred` returns `true`. Input order
/// is preserved in the `Seq` path; parallel paths preserve per-worker order
/// only (frontiers are sets — callers needing canonical order uniquify).
pub fn filter<P, F>(policy: P, ctx: &Context, f: &SparseFrontier, pred: F) -> SparseFrontier
where
    P: ExecutionPolicy,
    F: Fn(VertexId) -> bool + Sync,
{
    match try_filter(policy, ctx, f, pred) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`filter`]: the context's budget and fault plan are consulted
/// at chunk boundaries, and a panicking predicate surfaces as
/// [`ExecError::WorkerPanic`] with the partial output discarded. The
/// context stays fully reusable after an error.
pub fn try_filter<P, F>(
    _policy: P,
    ctx: &Context,
    f: &SparseFrontier,
    pred: F,
) -> Result<SparseFrontier, ExecError>
where
    P: ExecutionPolicy,
    F: Fn(VertexId) -> bool + Sync,
{
    let hooks = ctx.chunk_hooks();
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        if hooks.is_empty() {
            // Fast path: a panic in `pred` unwinds through the caller
            // untouched, exactly as before the fallible layer existed.
            let out: SparseFrontier = f.iter().filter(|&v| pred(v)).collect();
            emit(ctx, OpKind::Filter, P::NAME, f.len(), out.len());
            return Ok(out);
        }
        let verts = f.as_slice();
        let mut out = SparseFrontier::new();
        let mut lo = 0usize;
        let mut chunk = 0usize;
        while lo < verts.len() {
            let hi = (lo + 256).min(verts.len());
            match hooks.before_chunk(chunk) {
                ChunkAction::Run => {}
                ChunkAction::Stop(reason) => {
                    return Err(ExecError::Budget {
                        reason,
                        progress: Progress::default(),
                    });
                }
                ChunkAction::Panic {
                    iteration,
                    chunk: at,
                } => {
                    let payload = catch_unwind(AssertUnwindSafe(|| {
                        panic!("injected fault at (iteration {iteration}, chunk {at})")
                    }))
                    .unwrap_err();
                    return Err(ExecError::WorkerPanic {
                        payload: panic_payload_string(&*payload),
                        chunk,
                    });
                }
            }
            let out_ref = &mut out;
            catch_unwind(AssertUnwindSafe(|| {
                for &v in &verts[lo..hi] {
                    if pred(v) {
                        out_ref.add_vertex(v);
                    }
                }
            }))
            .map_err(|payload| ExecError::WorkerPanic {
                payload: panic_payload_string(&*payload),
                chunk,
            })?;
            lo = hi;
            chunk += 1;
        }
        emit(ctx, OpKind::Filter, P::NAME, f.len(), out.len());
        return Ok(out);
    }
    let collector = Collector::new(ctx.num_threads());
    ctx.pool()
        .try_parallel_for_with(0..f.len(), Schedule::Dynamic(256), hooks, |tid, i| {
            let v = f.get_active_vertex(i);
            if pred(v) {
                collector.push(tid, v);
            }
        })?;
    let out = collector.into_frontier();
    emit(ctx, OpKind::Filter, P::NAME, f.len(), out.len());
    Ok(out)
}

/// Sort-based uniquify: returns the frontier as a sorted duplicate-free
/// set. O(k log k) in frontier size, no auxiliary O(n) storage.
pub fn uniquify<P>(_policy: P, ctx: &Context, f: &SparseFrontier) -> SparseFrontier
where
    P: ExecutionPolicy,
{
    let mut out = f.clone();
    out.uniquify();
    emit(ctx, OpKind::Uniquify, P::NAME, f.len(), out.len());
    out
}

/// Bitmap-based uniquify over a universe of `n` vertices: O(k) time and
/// O(n) bits, parallel claim via atomic test-and-set. Wins over the sort
/// when the frontier is a large fraction of the graph.
pub fn uniquify_with_bitmap<P>(
    _policy: P,
    ctx: &Context,
    f: &SparseFrontier,
    n: usize,
) -> SparseFrontier
where
    P: ExecutionPolicy,
{
    let seen = DenseFrontier::new(n);
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let mut out = SparseFrontier::with_capacity(f.len());
        for v in f.iter() {
            if seen.insert(v) {
                out.add_vertex(v);
            }
        }
        emit(ctx, OpKind::Uniquify, P::NAME, f.len(), out.len());
        return out;
    }
    let collector = Collector::new(ctx.num_threads());
    ctx.pool()
        .parallel_for_with(0..f.len(), Schedule::Dynamic(256), |tid, i| {
            let v = f.get_active_vertex(i);
            if seen.insert(v) {
                collector.push(tid, v);
            }
        });
    let out = collector.into_frontier();
    emit(ctx, OpKind::Uniquify, P::NAME, f.len(), out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::execution;

    #[test]
    fn filter_keeps_matching_in_order_seq() {
        let ctx = Context::sequential();
        let f = SparseFrontier::from_vec(vec![5, 2, 8, 1]);
        let out = filter(execution::seq, &ctx, &f, |v| v >= 3);
        assert_eq!(out.as_slice(), &[5, 8]);
    }

    #[test]
    fn filter_policy_equivalence_as_sets() {
        let ctx = Context::new(4);
        let f: SparseFrontier = (0..10_000).collect();
        let mut a = filter(execution::seq, &ctx, &f, |v| v % 3 == 0);
        let mut b = filter(execution::par, &ctx, &f, |v| v % 3 == 0);
        a.uniquify();
        b.uniquify();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3334);
    }

    #[test]
    fn both_uniquify_flavors_agree() {
        let ctx = Context::new(4);
        let f = SparseFrontier::from_vec((0..5000).map(|i| i % 97).collect());
        let a = uniquify(execution::seq, &ctx, &f);
        let mut b = uniquify_with_bitmap(execution::par, &ctx, &f, 100);
        b.uniquify(); // canonical order for comparison
        assert_eq!(a, b);
        assert_eq!(a.len(), 97);
    }

    #[test]
    fn empty_inputs() {
        let ctx = Context::new(2);
        let f = SparseFrontier::new();
        assert!(filter(execution::par, &ctx, &f, |_| true).is_empty());
        assert!(uniquify_with_bitmap(execution::par, &ctx, &f, 10).is_empty());
    }
}
