//! Compute operators: vertex programs applied over vertex sets.
//!
//! The "transformation" half of the paper's operator taxonomy — no
//! traversal, just a lambda over every (active) vertex. [`fill_indexed`]
//! builds a fresh value per vertex in parallel, the pattern algorithms use
//! to initialize property arrays.

use std::panic::{catch_unwind, AssertUnwindSafe};

use essentials_frontier::SparseFrontier;
use essentials_graph::VertexId;
use essentials_obs::{ComputeEvent, OpKind};
use essentials_parallel::{
    exec::panic_payload_string, ChunkAction, ExecError, ExecutionPolicy, Progress, Schedule,
};

use crate::context::Context;

/// Emits a [`ComputeEvent`] if the context carries a sink. One call per
/// operator call — the instrumentation never enters the per-item loop.
fn emit(ctx: &Context, kind: OpKind, policy: &'static str, items: usize) {
    if let Some(sink) = ctx.obs() {
        sink.on_compute(&ComputeEvent {
            kind,
            policy,
            items,
        });
    }
}

/// Applies `f` to every vertex id in `0..n`.
pub fn foreach_vertex<P, F>(policy: P, ctx: &Context, n: usize, f: F)
where
    P: ExecutionPolicy,
    F: Fn(VertexId) + Sync,
{
    if let Err(e) = try_foreach_vertex(policy, ctx, n, f) {
        panic!("{e}");
    }
}

/// Fallible [`foreach_vertex`]: budget/fault hooks at chunk boundaries, a
/// panicking vertex program captured as [`ExecError::WorkerPanic`].
/// Vertex programs mutate caller state in place, so on an error some
/// vertices have been processed and others not — callers that need
/// all-or-nothing semantics re-initialize their property arrays.
pub fn try_foreach_vertex<P, F>(_policy: P, ctx: &Context, n: usize, f: F) -> Result<(), ExecError>
where
    P: ExecutionPolicy,
    F: Fn(VertexId) + Sync,
{
    let hooks = ctx.chunk_hooks();
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        if hooks.is_empty() {
            for v in 0..n as VertexId {
                f(v);
            }
        } else {
            let mut lo = 0usize;
            let mut chunk = 0usize;
            while lo < n {
                let hi = (lo + 512).min(n);
                match hooks.before_chunk(chunk) {
                    ChunkAction::Run => {}
                    ChunkAction::Stop(reason) => {
                        return Err(ExecError::Budget {
                            reason,
                            progress: Progress::default(),
                        });
                    }
                    ChunkAction::Panic {
                        iteration,
                        chunk: at,
                    } => {
                        let payload = catch_unwind(AssertUnwindSafe(|| {
                            panic!("injected fault at (iteration {iteration}, chunk {at})")
                        }))
                        .unwrap_err();
                        return Err(ExecError::WorkerPanic {
                            payload: panic_payload_string(&*payload),
                            chunk,
                        });
                    }
                }
                catch_unwind(AssertUnwindSafe(|| {
                    for v in lo as VertexId..hi as VertexId {
                        f(v);
                    }
                }))
                .map_err(|payload| ExecError::WorkerPanic {
                    payload: panic_payload_string(&*payload),
                    chunk,
                })?;
                lo = hi;
                chunk += 1;
            }
        }
    } else {
        ctx.pool()
            .try_parallel_for(0..n, Schedule::Dynamic(512), hooks, |i| f(i as VertexId))?;
    }
    emit(ctx, OpKind::ForeachVertex, P::NAME, n);
    Ok(())
}

/// Applies `f` to every active vertex of a sparse frontier (duplicates
/// included — vertex programs over frontiers must be idempotent or the
/// frontier uniquified first).
pub fn foreach_active<P, F>(_policy: P, ctx: &Context, frontier: &SparseFrontier, f: F)
where
    P: ExecutionPolicy,
    F: Fn(VertexId) + Sync,
{
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for v in frontier.iter() {
            f(v);
        }
    } else {
        ctx.pool()
            .parallel_for(0..frontier.len(), Schedule::Dynamic(256), |i| {
                f(frontier.get_active_vertex(i))
            });
    }
    emit(ctx, OpKind::ForeachActive, P::NAME, frontier.len());
}

/// Builds a `Vec<T>` of length `n` where slot `i` holds `f(i)`, computed in
/// parallel. Each slot is written exactly once by exactly one worker.
pub fn fill_indexed<P, T, F>(_policy: P, ctx: &Context, n: usize, f: F) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let out = (0..n).map(f).collect();
        emit(ctx, OpKind::FillIndexed, P::NAME, n);
        return out;
    }
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit requires no initialization; length is set to the
    // capacity we just reserved, and every slot is written exactly once
    // below before the transmute.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    struct SendPtr<T>(*mut std::mem::MaybeUninit<T>);
    impl<T> SendPtr<T> {
        fn get(&self) -> *mut std::mem::MaybeUninit<T> {
            self.0
        }
    }
    // SAFETY: the pointer is only used to write disjoint indices from the
    // parallel loop; the Vec outlives the loop (parallel_for joins).
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let ptr = SendPtr(out.as_mut_ptr());
    let ptr = &ptr;
    ctx.pool().parallel_for(0..n, Schedule::Dynamic(512), |i| {
        // SAFETY: i is visited exactly once across all workers
        // (parallel_for contract), so this write is unaliased.
        unsafe {
            (*ptr.get().add(i)).write(f(i));
        }
    });
    emit(ctx, OpKind::FillIndexed, P::NAME, n);
    // SAFETY: all n slots are initialized; MaybeUninit<T> and T have the
    // same layout.
    unsafe { std::mem::transmute::<Vec<std::mem::MaybeUninit<T>>, Vec<T>>(out) }
}

/// In-place sibling of [`fill_indexed`]: overwrites slot `i` of `out` with
/// `f(i)`, computed in parallel. This is the zero-allocation path the
/// fixpoint algorithms use to refill a pooled buffer each iteration
/// instead of collecting a fresh `Vec` (DESIGN.md §12).
pub fn fill_indexed_into<P, T, F>(_policy: P, ctx: &Context, out: &mut [T], f: F)
where
    P: ExecutionPolicy,
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        emit(ctx, OpKind::FillIndexed, P::NAME, n);
        return;
    }
    struct SendPtr<T>(*mut T);
    impl<T> SendPtr<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    // SAFETY: the pointer is only used to write disjoint indices from the
    // parallel loop; the borrow of `out` outlives the loop (parallel_for
    // joins before this function returns).
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let ptr = SendPtr(out.as_mut_ptr());
    let ptr = &ptr;
    ctx.pool().parallel_for(0..n, Schedule::Dynamic(512), |i| {
        // SAFETY: i is visited exactly once across all workers
        // (parallel_for contract), so this write is unaliased; the slot is
        // initialized, so the overwritten value drops normally.
        unsafe {
            *ptr.get().add(i) = f(i);
        }
    });
    emit(ctx, OpKind::FillIndexed, P::NAME, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::atomics::Counter;
    use essentials_parallel::execution;

    #[test]
    fn foreach_vertex_visits_all() {
        let ctx = Context::new(3);
        let count = Counter::new();
        foreach_vertex(execution::par, &ctx, 5000, |_| count.add(1));
        assert_eq!(count.get(), 5000);
    }

    #[test]
    fn foreach_active_includes_duplicates() {
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(vec![1, 1, 2]);
        let count = Counter::new();
        foreach_active(execution::seq, &ctx, &f, |_| count.add(1));
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn fill_indexed_matches_sequential_collect() {
        let ctx = Context::new(4);
        let par = fill_indexed(execution::par, &ctx, 10_000, |i| i * i);
        let seq: Vec<usize> = (0..10_000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn fill_indexed_handles_drop_types() {
        let ctx = Context::new(4);
        let v = fill_indexed(execution::par, &ctx, 5000, |i| format!("{i}"));
        assert_eq!(v[4999], "4999");
        assert_eq!(v.len(), 5000);
    }

    #[test]
    fn fill_indexed_zero_len() {
        let ctx = Context::new(2);
        let v: Vec<u8> = fill_indexed(execution::par, &ctx, 0, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn fill_indexed_into_overwrites_in_place() {
        let ctx = Context::new(4);
        let mut buf = vec![0usize; 10_000];
        fill_indexed_into(execution::par, &ctx, &mut buf, |i| i * 3);
        let seq: Vec<usize> = (0..10_000).map(|i| i * 3).collect();
        assert_eq!(buf, seq);
        // Sequential policy takes the plain loop and agrees.
        let mut buf2 = vec![0usize; 10_000];
        fill_indexed_into(execution::seq, &ctx, &mut buf2, |i| i * 3);
        assert_eq!(buf2, seq);
    }

    #[test]
    fn fill_indexed_into_drops_old_values() {
        let ctx = Context::new(4);
        let mut buf: Vec<String> = (0..4000).map(|i| format!("old{i}")).collect();
        fill_indexed_into(execution::par, &ctx, &mut buf, |i| format!("new{i}"));
        assert_eq!(buf[3999], "new3999");
    }
}
