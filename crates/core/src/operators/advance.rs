//! Advance (traversal) operators: frontier expansion along graph edges.
//!
//! [`neighbors_expand`] is the Rust port of the paper's Listing 3 — the
//! push-direction traversal at the heart of Listing 4's SSSP — generic over
//! execution policies exactly as the C++ version is overloaded on them. Its
//! parallel paths push into the context's reusable lock-free per-worker
//! buffers ([`essentials_frontier::WorkerBuffers`]), so a steady-state
//! iteration allocates nothing and takes no lock. [`neighbors_expand_unique`]
//! fuses duplicate elimination into the push via a reusable atomic bitmap.
//! [`neighbors_expand_mutex`] keeps the listing's literal mutex-guarded
//! output for fidelity (and as the contention baseline the lock-free
//! version is measured against). [`expand_pull`] is the CSC-based pull
//! direction of §III-C, and [`expand_push_dense`] emits a bitmap frontier so
//! direction-optimizing algorithms can switch representations mid-run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use essentials_frontier::{Collector, DenseFrontier, EdgeFrontier, SparseFrontier};
use essentials_graph::{EdgeId, EdgeValue, EdgeWeights, InEdgeWeights, OutNeighbors, VertexId};
use essentials_obs::{AdvanceEvent, OpKind};
use essentials_parallel::atomics::Counter;
use essentials_parallel::{
    exec::panic_payload_string, try_run_async, ChunkAction, ExecError, ExecutionPolicy, Progress,
    Schedule,
};
use parking_lot::Mutex;

use crate::context::Context;
use crate::load_balance::{for_each_edge_balanced, try_for_each_edge_balanced_with};
use crate::scratch::AdvanceScratch;

/// Vertices per hook-checked chunk on the sequential expansion path. Small
/// enough that cancellation latency stays low, large enough that the hook
/// check amortizes to noise.
const SERIAL_CHUNK: usize = 256;

/// Sum of out-degrees over a frontier — the edges a push expansion
/// inspects. Only evaluated when a sink wants operator detail.
fn frontier_out_edges<G: OutNeighbors>(g: &G, f: &SparseFrontier) -> u64 {
    f.iter().map(|v| g.out_degree(v) as u64).sum()
}

/// Push-direction neighbor expansion (paper Listing 3).
///
/// For every active vertex `v` and out-edge `e = (v, n)` with weight `w`,
/// evaluates `condition(v, n, e, w)`; destinations for which it returns
/// `true` enter the output frontier. Duplicates are possible (one per
/// admitting edge), as in the paper — filter/uniquify afterwards if set
/// semantics are needed.
///
/// Policy behavior:
/// * `Seq` — plain loop on the calling thread;
/// * `Par` — bulk-synchronous: edge-balanced parallel expansion, implicit
///   barrier, then the output frontier is assembled;
/// * `ParNosync` — the frontier is drained through the asynchronous
///   work-queue engine (no per-chunk barriers; completion by quiescence).
///
/// ```
/// use essentials_core::prelude::*;
///
/// let g: Graph<f32> = GraphBuilder::new(3)
///     .edges([(0, 1, 1.0), (0, 2, 9.0)])
///     .build();
/// let ctx = Context::new(2);
/// let f = SparseFrontier::single(0);
/// // Expand only along edges lighter than 5.0 — identical under any policy.
/// let out = neighbors_expand(execution::par, &ctx, &g, &f, |_s, _d, _e, w| w < 5.0);
/// assert_eq!(out.as_slice(), &[1]);
/// ```
pub fn neighbors_expand<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    expand_impl::<P, _, _, _, false>(ctx, g, f, condition)
}

/// [`neighbors_expand`] with fused deduplication: each destination enters
/// the output at most once per call, recorded in a reusable atomic bitmap
/// that is test-and-set during the push itself. Equivalent to
/// `neighbors_expand` followed by
/// [`uniquify`](crate::operators::filter::uniquify) up to output order, but
/// without the post-hoc sort-or-bitmap pass — the dedup costs one atomic
/// `fetch_or` per admitted edge, and the bitmap is swept clean afterwards in
/// O(|output|) by walking the output, so the hot loop of BFS/SSSP/CC never
/// re-zeroes O(n) memory.
///
/// The condition is still evaluated for **every** edge — only output
/// insertion is gated. Conditions with side effects (SSSP's distance
/// relaxation, CC's label min) therefore see exactly the edges
/// `neighbors_expand` shows them.
pub fn neighbors_expand_unique<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    expand_impl::<P, _, _, _, true>(ctx, g, f, condition)
}

/// Fallible [`neighbors_expand`]: checks the context's
/// [`RunBudget`](essentials_parallel::RunBudget) and fault plan at chunk
/// boundaries and captures panics in `condition` as
/// [`ExecError::WorkerPanic`]. On any error the context's scratch
/// invariants are fully restored — buffers drained, dedup bits cleared,
/// output storage returned to the pool — so the same context runs the next
/// algorithm unaffected.
pub fn try_neighbors_expand<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> Result<SparseFrontier, ExecError>
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    try_expand_impl::<P, _, _, _, false>(ctx, g, f, condition)
}

/// Fallible [`neighbors_expand_unique`] — see [`try_neighbors_expand`] for
/// the error contract; the dedup bitmap is additionally guaranteed clear
/// after an error (partial admissions are swept by walking the drained
/// partial output).
pub fn try_neighbors_expand_unique<P, G, W, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> Result<SparseFrontier, ExecError>
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let _ = policy;
    try_expand_impl::<P, _, _, _, true>(ctx, g, f, condition)
}

/// Infallible body of [`neighbors_expand`] / [`neighbors_expand_unique`]:
/// the fallible core with the error re-raised as a panic on the caller.
fn expand_impl<P, G, W, F, const UNIQUE: bool>(
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    match try_expand_impl::<P, _, _, _, UNIQUE>(ctx, g, f, condition) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Shared fallible body of the push expansions.
///
/// All transient memory — degree prefix sums, per-worker output buffers,
/// the dedup bitmap, and the output vector itself — is checked out of the
/// context's [`AdvanceScratch`], so steady-state calls perform no heap
/// allocation and acquire no shared lock on the push path.
///
/// On *any* error — a captured panic in `condition`, a budget stop, or an
/// injected fault — the scratch invariants are restored before the error
/// returns: worker buffers are drained and discarded, every dedup bit set
/// by the partial expansion is cleared, the output vector goes back to the
/// pool, and the scratch is returned to the context. The context is fully
/// reusable afterwards (`tests/resilience.rs` proves it bit-for-bit).
fn try_expand_impl<P, G, W, F, const UNIQUE: bool>(
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> Result<SparseFrontier, ExecError>
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let mut scratch = ctx.take_scratch();
    if UNIQUE {
        scratch.ensure_seen(g.num_vertices());
    }

    // Per-edge admission counting is gated on a sink actually wanting it
    // (`NullSink` declines), so the residual cost of the instrumentation on
    // an uninstrumented or null-sink context is one predicted branch.
    let detail = ctx.obs_wants_detail();
    let admitted = Counter::new();
    let condition = |v: VertexId, n: VertexId, e: EdgeId, w: W| {
        let ok = condition(v, n, e, w);
        if detail && ok {
            admitted.add(1);
        }
        ok
    };
    let emit = |ctx: &Context, frontier_in: usize, output_len: usize, per_worker: &[usize]| {
        if let Some(sink) = ctx.obs() {
            let adm = admitted.get() as u64;
            sink.on_advance(&AdvanceEvent {
                kind: if UNIQUE {
                    OpKind::AdvanceUnique
                } else {
                    OpKind::Advance
                },
                policy: P::NAME,
                frontier_in,
                edges_inspected: if detail { frontier_out_edges(g, f) } else { 0 },
                admitted: adm,
                output_len,
                dedup_hits: if UNIQUE && detail {
                    adm.saturating_sub(output_len as u64)
                } else {
                    0
                },
                per_worker,
            });
        }
    };

    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let hooks = ctx.chunk_hooks();
        let mut out = scratch.take_vec();
        let verts = f.as_slice();
        let seen = &scratch.seen;
        let mut failure: Option<ExecError> = None;
        let mut lo = 0usize;
        let mut chunk = 0usize;
        while lo < verts.len() {
            let hi = (lo + SERIAL_CHUNK).min(verts.len());
            match hooks.before_chunk(chunk) {
                ChunkAction::Run => {}
                ChunkAction::Stop(reason) => {
                    failure = Some(ExecError::Budget {
                        reason,
                        progress: Progress::default(),
                    });
                    break;
                }
                ChunkAction::Panic {
                    iteration,
                    chunk: at,
                } => {
                    // The injected fault takes the same capture path a real
                    // panic would, so the restore logic below is exercised.
                    let payload = catch_unwind(AssertUnwindSafe(|| {
                        panic!("injected fault at (iteration {iteration}, chunk {at})")
                    }))
                    .unwrap_err();
                    failure = Some(ExecError::WorkerPanic {
                        payload: panic_payload_string(&*payload),
                        chunk,
                    });
                    break;
                }
            }
            let out_ref = &mut out;
            let body = catch_unwind(AssertUnwindSafe(|| {
                for &v in &verts[lo..hi] {
                    for e in g.out_edges(v) {
                        let n = g.edge_dest(e);
                        let w = g.edge_weight(e);
                        // The condition runs for every edge even when the
                        // destination is already marked; the bitmap only
                        // gates output insertion.
                        if condition(v, n, e, w) && (!UNIQUE || seen.set(n as usize)) {
                            out_ref.push(n); // alloc-ok: pooled output vec, capacity retained across iterations
                        }
                    }
                }
            }));
            if let Err(payload) = body {
                failure = Some(ExecError::WorkerPanic {
                    payload: panic_payload_string(&*payload),
                    chunk,
                });
                break;
            }
            lo = hi;
            chunk += 1;
        }
        if UNIQUE {
            // A dedup bit is only ever set after its vertex was pushed into
            // `out` (the `&&` short-circuits before `seen.set` on a
            // panicking condition), so walking the partial output restores
            // full bitmap clearness on the error path too.
            for &v in &out {
                scratch.seen.clear(v as usize);
            }
        }
        if let Some(e) = failure {
            out.clear();
            scratch.put_vec(out);
            ctx.put_scratch(scratch);
            return Err(e);
        }
        emit(ctx, f.len(), out.len(), &[]);
        ctx.put_scratch(scratch);
        return Ok(SparseFrontier::from_vec(out));
    }

    let result: Result<(), ExecError> = {
        let AdvanceScratch {
            offsets,
            chunk_sums,
            buffers,
            seen,
            ..
        } = &mut *scratch;
        buffers.ensure_workers(ctx.num_threads());
        let seen = &*seen;
        let view = buffers.view();
        let hooks = ctx.chunk_hooks();
        if P::IS_SYNCHRONIZED {
            // Bulk-synchronous: edge-balanced division, barrier at the end
            // of the parallel-for. Hooks fire at work-chunk boundaries; a
            // captured panic drains the remaining chunks before surfacing.
            try_for_each_edge_balanced_with(
                ctx,
                g,
                f.as_slice(),
                offsets,
                chunk_sums,
                hooks,
                |tid, v, e| {
                    let n = g.edge_dest(e);
                    let w = g.edge_weight(e);
                    if condition(v, n, e, w) && (!UNIQUE || seen.set(n as usize)) {
                        // SAFETY: `tid` is this worker's own id; the pool runs
                        // each worker id on exactly one thread per region.
                        unsafe { view.push(tid, n) }; // alloc-ok: worker buffer keeps its capacity; steady state is alloc-free (tests/zero_alloc.rs)
                    }
                },
            )
        } else {
            // Asynchronous: vertices drain through the work-queue engine;
            // no barrier other than final quiescence. The seed vec makes
            // this the dynamic-scheduling comparison path, not the BSP hot
            // loop.
            let seeds: Vec<VertexId> = f.iter().collect(); // alloc-ok: async seed vec
            try_run_async(ctx.pool(), seeds, hooks, |v: VertexId, pusher| {
                for e in g.out_edges(v) {
                    let n = g.edge_dest(e);
                    let w = g.edge_weight(e);
                    if condition(v, n, e, w) && (!UNIQUE || seen.set(n as usize)) {
                        // SAFETY: `pusher.worker()` is the engine worker's
                        // own stable id — one thread per worker id.
                        unsafe { view.push(pusher.worker(), n) }; // alloc-ok: worker buffer keeps its capacity across iterations
                    }
                }
            })
            .map(|_| ())
        }
    };

    // Per-worker push distribution, read between the parallel region and
    // the drain (which empties the slots). Allocates only when a sink asked
    // for detail.
    let per_worker = if result.is_ok() && detail && ctx.obs().is_some() {
        scratch.buffers.slot_lens()
    } else {
        Vec::new() // alloc-ok: Vec::new never allocates; detail collection is gated above
    };
    // Drain and bitmap restore run on the error path too: whatever the
    // partial expansion pushed is exactly the set of dedup bits it set (a
    // worker that panics does so in `condition`, *before* `seen.set`), so
    // draining into `out` and clearing by that walk restores clearness.
    let mut out = scratch.take_vec();
    scratch.buffers.drain_into(&mut out);
    if UNIQUE {
        // Restore bitmap clearness by walking the (sparse) output rather
        // than re-zeroing all n bits.
        let seen = &scratch.seen;
        let out_ref: &[VertexId] = &out;
        ctx.pool()
            .parallel_for(0..out_ref.len(), Schedule::Static, |i| {
                seen.clear(out_ref[i] as usize);
            });
    }
    match result {
        Ok(()) => {
            emit(ctx, f.len(), out.len(), &per_worker);
            ctx.put_scratch(scratch);
            Ok(SparseFrontier::from_vec(out))
        }
        Err(e) => {
            out.clear();
            scratch.put_vec(out);
            ctx.put_scratch(scratch);
            Err(e)
        }
    }
}

/// Literal port of Listing 3: a single mutex guards `output.add_vertex`.
/// Semantically identical to [`neighbors_expand`]; kept as the paper's
/// exact construction and as the contention baseline for benches.
pub fn neighbors_expand_mutex<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let m = Mutex::new(SparseFrontier::new());
    let expand = |v: VertexId| {
        // For all edges of vertex v.
        for e in g.out_edges(v) {
            let n = g.edge_dest(e);
            let w = g.edge_weight(e);
            // If expand condition is true, add the neighbor into the
            // output frontier.
            if condition(v, n, e, w) {
                m.lock().add_vertex(n);
            }
        }
    };
    if P::IS_PARALLEL {
        ctx.pool()
            .parallel_for(0..f.len(), Schedule::Dynamic(16), |i| {
                expand(f.get_active_vertex(i))
            });
    } else {
        for v in f.iter() {
            expand(v);
        }
    }
    // Synchronized here and return output.
    m.into_inner()
}

/// Push expansion into a **dense** output frontier. Insertion is atomic and
/// idempotent, so no uniquify pass is ever needed; the natural output
/// representation when the next frontier is expected to be large.
pub fn expand_push_dense<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    f: &SparseFrontier,
    condition: F,
) -> DenseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    // Recycled through the context's dense pool: steady-state dense-push
    // iterations reuse a parked bitmap (cleared in word stores) instead of
    // allocating O(n/64) words per call.
    let output = ctx.take_dense_frontier(g.num_vertices());
    let detail = ctx.obs_wants_detail();
    let admitted = Counter::new();
    let body = |v: VertexId, e: EdgeId| {
        let n = g.edge_dest(e);
        let w = g.edge_weight(e);
        if condition(v, n, e, w) {
            if detail {
                admitted.add(1);
            }
            output.insert(n);
        }
    };
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for v in f.iter() {
            for e in g.out_edges(v) {
                body(v, e);
            }
        }
    } else {
        for_each_edge_balanced(ctx, g, f.as_slice(), |_tid, v, e| body(v, e));
    }
    if let Some(sink) = ctx.obs() {
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::AdvanceDense,
            policy: P::NAME,
            frontier_in: f.len(),
            edges_inspected: if detail { frontier_out_edges(g, f) } else { 0 },
            admitted: admitted.get() as u64,
            output_len: output.len(),
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    output
}

/// Configuration of a pull-direction expansion.
#[derive(Default)]
pub struct PullConfig {
    /// Stop scanning a destination's in-neighbors after the first admitting
    /// edge (correct for reachability-style conditions like BFS; wrong for
    /// conditions that must see every edge, like SSSP relaxation).
    pub early_exit: bool,
}

/// Pull-direction expansion (§III-C): every *candidate* destination scans
/// its **in**-neighbors for active sources instead of active sources
/// scattering to destinations.
///
/// For each vertex `dst` with `candidate(dst)` true, and each in-edge
/// `(src → dst)` with weight `w` where `input.contains(src)`, evaluates
/// `condition(src, dst, w)`; if it returns `true`, `dst` enters the output
/// frontier (and with `early_exit` the scan of `dst` stops).
///
/// Requires the CSC representation (`Graph::with_csc()`); membership tests
/// against the input are O(1) because the input is dense — this is why
/// direction-optimizing traversal switches representation when it switches
/// direction.
///
/// Returns the output frontier and the number of in-edges scanned — the
/// honest work measure for push-vs-pull comparisons (a pull iteration's
/// cost is the scan, not just the admitting edges).
pub fn expand_pull_counted<P, G, W, C, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    cfg: PullConfig,
    candidate: C,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: InEdgeWeights<W> + Sync,
    W: EdgeValue,
    C: Fn(VertexId) -> bool + Sync,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    // Recycled bitmap, same contract as `expand_push_dense`.
    let output = ctx.take_dense_frontier(n);
    let scanned = essentials_parallel::atomics::Counter::new();
    let scan = |dst: VertexId| {
        if !candidate(dst) {
            return;
        }
        let srcs = g.in_neighbors(dst);
        let ws = g.in_neighbor_weights(dst);
        let mut local_scans = 0usize;
        for (k, &src) in srcs.iter().enumerate() {
            local_scans += 1;
            if input.contains(src) && condition(src, dst, ws[k]) {
                output.insert(dst);
                if cfg.early_exit {
                    break;
                }
            }
        }
        scanned.add(local_scans);
    };
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        for dst in 0..n as VertexId {
            scan(dst);
        }
    } else {
        ctx.pool()
            .parallel_for(0..n, Schedule::Dynamic(256), |i| scan(i as VertexId));
    }
    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::Pull,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: scanned.get() as u64,
            // Each output vertex was admitted by at least one scanned edge;
            // the scan is the honest work measure, so per-edge admission is
            // not separately counted here.
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, scanned.get())
}

/// [`expand_pull_counted`] without the work counter.
pub fn expand_pull<P, G, W, C, F>(
    policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    cfg: PullConfig,
    candidate: C,
    condition: F,
) -> DenseFrontier
where
    P: ExecutionPolicy,
    G: InEdgeWeights<W> + Sync,
    W: EdgeValue,
    C: Fn(VertexId) -> bool + Sync,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    expand_pull_counted(policy, ctx, g, input, cfg, candidate, condition).0
}

/// Masked pull: [`expand_pull_counted`] where the candidate set is a
/// **bitmap**, iterated word-parallel, instead of a predicate probed for all
/// `n` destinations.
///
/// `candidates` holds the vertices that could still be admitted (for BFS:
/// the unvisited set). The scan decodes only its set words — all-zero words
/// cost one load per 64 vertices, and settled destinations are never
/// touched. The caller keeps the mask current between iterations with
/// [`DenseFrontier::and_not`]`(output)`, retiring this iteration's
/// admissions 64 at a time; that maintenance is how the unvisited mass
/// shrinks as the traversal settles, turning late pull iterations from
/// O(n + in-edges) full scans into O(remaining candidates).
///
/// Returns the output frontier (recycled through the context's dense pool)
/// and the number of in-edges scanned.
pub fn expand_pull_masked<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    candidates: &DenseFrontier,
    cfg: PullConfig,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: InEdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    debug_assert_eq!(candidates.capacity(), n);
    let output = ctx.take_dense_frontier(n);
    let scanned = essentials_parallel::atomics::Counter::new();
    let scan = |dst: VertexId| {
        let srcs = g.in_neighbors(dst);
        let ws = g.in_neighbor_weights(dst);
        let mut local_scans = 0usize;
        for (k, &src) in srcs.iter().enumerate() {
            local_scans += 1;
            if input.contains(src) && condition(src, dst, ws[k]) {
                output.insert(dst);
                if cfg.early_exit {
                    break;
                }
            }
        }
        scanned.add(local_scans);
    };
    let mask = candidates.bits();
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        mask.for_each_set(|i| scan(i as VertexId));
    } else {
        // Workers take disjoint *word* ranges of the mask and decode their
        // own chunks — the parallel form of the word-at-a-time scan. 4 words
        // per grab = 256 candidate slots, small enough to balance skewed
        // in-degree, large enough to amortize the queue.
        ctx.pool()
            .parallel_for(0..mask.num_words(), Schedule::Dynamic(4), |wi| {
                mask.for_each_set_in_words(wi, wi + 1, &mut |i| scan(i as VertexId));
            });
    }
    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::Pull,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: scanned.get() as u64,
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, scanned.get())
}

/// Edge-to-vertex advance: applies `condition(src, dst, edge, w)` to every
/// active edge and emits the destinations that pass — the second half of
/// an edge-centric program (§III-C). Pairs with [`expand_to_edges`], which
/// turns a vertex frontier into its out-edge set.
pub fn advance_edges<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    f: &EdgeFrontier,
    condition: F,
) -> SparseFrontier
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, EdgeId, W) -> bool + Sync,
{
    let apply = |ae: &essentials_frontier::edge::ActiveEdge| -> Option<VertexId> {
        let dst = g.edge_dest(ae.edge);
        let w = g.edge_weight(ae.edge);
        condition(ae.src, dst, ae.edge, w).then_some(dst)
    };
    let emit = |ctx: &Context, output_len: usize| {
        if let Some(sink) = ctx.obs() {
            sink.on_advance(&AdvanceEvent {
                kind: OpKind::AdvanceEdges,
                policy: P::NAME,
                frontier_in: f.len(),
                // Every active edge is inspected exactly once.
                edges_inspected: f.len() as u64,
                admitted: output_len as u64,
                output_len,
                dedup_hits: 0,
                per_worker: &[],
            });
        }
    };
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let out: SparseFrontier = f.as_slice().iter().filter_map(apply).collect(); // alloc-ok: serial fallback path
        emit(ctx, out.len());
        return out;
    }
    let collector = Collector::new(ctx.num_threads());
    ctx.pool()
        .parallel_for_with(0..f.len(), Schedule::Dynamic(256), |tid, i| {
            if let Some(dst) = apply(&f.as_slice()[i]) {
                collector.push(tid, dst); // alloc-ok: collector buffers amortize; transform output is a fresh frontier by contract
            }
        });
    let out = collector.into_frontier();
    emit(ctx, out.len());
    out
}

/// Vertex-to-edge advance: the active *edges* of a vertex frontier
/// (§III-C's edge-centric frontier type).
pub fn expand_to_edges<P, G>(_policy: P, ctx: &Context, g: &G, f: &SparseFrontier) -> EdgeFrontier
where
    P: ExecutionPolicy,
    G: OutNeighbors + Sync,
{
    if !P::IS_PARALLEL || ctx.num_threads() == 1 {
        let mut out = EdgeFrontier::new();
        for v in f.iter() {
            for e in g.out_edges(v) {
                out.add_edge(v, e);
            }
        }
        return out;
    }
    let buffers: Vec<Mutex<Vec<(VertexId, EdgeId)>>> = (0..ctx.num_threads()) // alloc-ok: edge-frontier materialization is the mutex baseline, not the steady-state pipeline
        .map(|_| Mutex::new(Vec::new())) // alloc-ok: see above
        .collect(); // alloc-ok: see above
    for_each_edge_balanced(ctx, g, f.as_slice(), |tid, v, e| {
        buffers[tid].lock().push((v, e)); // alloc-ok: mutex-baseline path, measured against the lock-free pipeline
    });
    let mut out = EdgeFrontier::new();
    for b in buffers {
        for (v, e) in b.into_inner() {
            out.add_edge(v, e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::{Coo, Graph, GraphBase};
    use essentials_parallel::execution;

    fn weighted_diamond() -> Graph<f32> {
        Graph::from_coo(&Coo::from_edges(
            4,
            [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0)],
        ))
        .with_csc()
    }

    #[test]
    fn push_expand_finds_all_admitted_destinations() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::single(0);
        let mut out = neighbors_expand(execution::seq, &ctx, &g, &f, |_, _, _, _| true);
        out.uniquify();
        assert_eq!(out.as_slice(), &[1, 2]);
    }

    #[test]
    fn condition_filters_edges() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::single(0);
        let out = neighbors_expand(execution::seq, &ctx, &g, &f, |_, _, _, w| w < 2.0);
        assert_eq!(out.as_slice(), &[1]);
    }

    #[test]
    fn policy_equivalence_across_all_three_policies() {
        let g = weighted_diamond();
        let ctx = Context::new(4);
        let f = SparseFrontier::from_vec(vec![0, 1, 2]);
        let run = |frontier: SparseFrontier| {
            let mut a = neighbors_expand(execution::seq, &ctx, &g, &frontier, |_, _, _, _| true);
            let mut b = neighbors_expand(execution::par, &ctx, &g, &frontier, |_, _, _, _| true);
            let mut c =
                neighbors_expand(execution::par_nosync, &ctx, &g, &frontier, |_, _, _, _| {
                    true
                });
            let mut d =
                neighbors_expand_mutex(execution::par, &ctx, &g, &frontier, |_, _, _, _| true);
            for f in [&mut a, &mut b, &mut c, &mut d] {
                f.uniquify();
            }
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(a, d);
            a
        };
        let out = run(f);
        assert_eq!(out.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn unique_expand_matches_expand_plus_uniquify() {
        let g = weighted_diamond();
        let ctx = Context::new(4);
        // 1 and 2 both point at 3 — plain expand emits 3 twice.
        let f = SparseFrontier::from_vec(vec![0, 1, 2]);
        let mut plain = neighbors_expand(execution::par, &ctx, &g, &f, |_, _, _, _| true);
        plain.uniquify();
        for mut unique in [
            neighbors_expand_unique(execution::seq, &ctx, &g, &f, |_, _, _, _| true),
            neighbors_expand_unique(execution::par, &ctx, &g, &f, |_, _, _, _| true),
            neighbors_expand_unique(execution::par_nosync, &ctx, &g, &f, |_, _, _, _| true),
        ] {
            unique.uniquify(); // sorts; already duplicate-free
            assert_eq!(unique, plain);
        }
    }

    #[test]
    fn unique_expand_still_evaluates_condition_per_edge() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(vec![0, 1, 2]);
        for policy_calls in [
            {
                let calls = AtomicUsize::new(0);
                neighbors_expand_unique(execution::seq, &ctx, &g, &f, |_, _, _, _| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    true
                });
                calls.into_inner()
            },
            {
                let calls = AtomicUsize::new(0);
                neighbors_expand_unique(execution::par, &ctx, &g, &f, |_, _, _, _| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    true
                });
                calls.into_inner()
            },
        ] {
            // Every out-edge of 0, 1, 2 — four edges — despite 3 being
            // emitted only once.
            assert_eq!(policy_calls, 4);
        }
    }

    #[test]
    fn unique_expand_bitmap_is_clean_across_calls() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(vec![1, 2]);
        // If bits leaked between calls, the second call would emit nothing.
        for _ in 0..3 {
            let out = neighbors_expand_unique(execution::par, &ctx, &g, &f, |_, _, _, _| true);
            assert_eq!(out.as_slice(), &[3]);
        }
    }

    #[test]
    fn dense_output_collapses_duplicates() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        // 1 and 2 both point at 3.
        let f = SparseFrontier::from_vec(vec![1, 2]);
        let out = expand_push_dense(execution::par, &ctx, &g, &f, |_, _, _, _| true);
        assert_eq!(out.len(), 1);
        assert!(out.contains(3));
    }

    #[test]
    fn pull_matches_push_on_the_same_frontier() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let sparse = SparseFrontier::from_vec(vec![0]);
        let dense_in = essentials_frontier::convert::sparse_to_dense(&sparse, g.num_vertices());

        let mut push = neighbors_expand(execution::seq, &ctx, &g, &sparse, |_, _, _, _| true);
        push.uniquify();
        let pull = expand_pull(
            execution::par,
            &ctx,
            &g,
            &dense_in,
            PullConfig::default(),
            |_| true,
            |_, _, _| true,
        );
        let pull_sparse = essentials_frontier::convert::dense_to_sparse(&pull);
        assert_eq!(push, pull_sparse);
    }

    #[test]
    fn pull_early_exit_still_finds_the_set() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let sparse = SparseFrontier::from_vec(vec![1, 2]);
        let dense_in = essentials_frontier::convert::sparse_to_dense(&sparse, g.num_vertices());
        let pull = expand_pull(
            execution::seq,
            &ctx,
            &g,
            &dense_in,
            PullConfig { early_exit: true },
            |_| true,
            |_, _, _| true,
        );
        assert_eq!(pull.len(), 1);
        assert!(pull.contains(3));
    }

    #[test]
    fn candidate_prunes_pull_scan() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let dense_in = DenseFrontier::new(4);
        dense_in.insert(0);
        let pull = expand_pull(
            execution::seq,
            &ctx,
            &g,
            &dense_in,
            PullConfig::default(),
            |dst| dst != 1, // pretend 1 is already visited
            |_, _, _| true,
        );
        assert_eq!(pull.len(), 1);
        assert!(pull.contains(2));
    }

    #[test]
    fn masked_pull_matches_predicate_pull() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let dense_in = DenseFrontier::new(4);
        dense_in.insert(0);
        // Mask = {0, 2, 3}: vertex 1 is settled and must never be scanned.
        let mask = DenseFrontier::new(4);
        for v in [0, 2, 3] {
            mask.insert(v);
        }
        for (pull, _) in [
            expand_pull_masked(
                execution::seq,
                &ctx,
                &g,
                &dense_in,
                &mask,
                PullConfig::default(),
                |_, _, _| true,
            ),
            expand_pull_masked(
                execution::par,
                &ctx,
                &g,
                &dense_in,
                &mask,
                PullConfig::default(),
                |_, _, _| true,
            ),
        ] {
            let reference = expand_pull(
                execution::seq,
                &ctx,
                &g,
                &dense_in,
                PullConfig::default(),
                |dst| mask.contains(dst),
                |_, _, _| true,
            );
            assert_eq!(
                essentials_frontier::convert::dense_to_sparse(&pull),
                essentials_frontier::convert::dense_to_sparse(&reference)
            );
        }
    }

    #[test]
    fn masked_pull_counts_only_masked_scans() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let dense_in = DenseFrontier::new(4);
        dense_in.insert(1);
        dense_in.insert(2);
        let mask = DenseFrontier::new(4);
        mask.insert(3); // only 3's in-edges (from 1 and 2) may be scanned
        let (out, scanned) = expand_pull_masked(
            execution::seq,
            &ctx,
            &g,
            &dense_in,
            &mask,
            PullConfig::default(),
            |_, _, _| true,
        );
        assert_eq!(scanned, 2);
        assert!(out.contains(3));
    }

    #[test]
    fn dense_outputs_recycle_through_the_context() {
        let g = weighted_diamond();
        let ctx = Context::new(1);
        let f = SparseFrontier::single(0);
        let out = expand_push_dense(execution::seq, &ctx, &g, &f, |_, _, _, _| true);
        let addr = out.bits().words().as_ptr();
        ctx.recycle_dense_frontier(out);
        // Next dense expansion over the same universe reuses the bitmap.
        let out2 = expand_push_dense(execution::seq, &ctx, &g, &f, |_, _, _, _| true);
        assert_eq!(out2.bits().words().as_ptr(), addr);
        assert_eq!(out2.len(), 2);
    }

    #[test]
    fn edge_frontier_expansion() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::from_vec(vec![0, 1]);
        for out in [
            expand_to_edges(execution::seq, &ctx, &g, &f),
            expand_to_edges(execution::par, &ctx, &g, &f),
        ] {
            let mut out = out;
            out.uniquify();
            assert_eq!(out.len(), 3);
            assert_eq!(out.sources(), vec![0, 1]);
        }
    }

    #[test]
    fn empty_frontier_expands_to_empty() {
        let g = weighted_diamond();
        let ctx = Context::new(2);
        let f = SparseFrontier::new();
        assert!(neighbors_expand(execution::par, &ctx, &g, &f, |_, _, _, _| true).is_empty());
        assert!(expand_push_dense(execution::par, &ctx, &g, &f, |_, _, _, _| true).is_empty());
    }
}
