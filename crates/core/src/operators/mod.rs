//! Parallel operators — essential component 3.
//!
//! "A high-performance graph analytics implementation relies on efficient
//! parallel operators that transform, expand, or contract the frontiers or
//! graphs" (§IV-C). Every operator here is generic over an
//! [`essentials_parallel::ExecutionPolicy`]; its observable result is
//! identical for `seq`, `par`, and `par_nosync` (tested as policy
//! equivalence), while its execution changes from a plain loop to a
//! bulk-synchronous parallel-for to barrier-free asynchronous draining.

pub mod advance;
pub mod blocked;
pub mod compressed;
pub mod compute;
pub mod direction;
pub mod filter;
pub mod intersect;
pub mod reduce;
