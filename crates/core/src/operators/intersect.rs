//! Sorted-adjacency intersection — the operator behind triangle counting
//! and clustering coefficients.
//!
//! CSR rows are destination-sorted (see `Csr::from_coo`), so two adjacency
//! lists intersect by linear merge, or by galloping (exponential) search
//! when their lengths are wildly different — the skewed case power-law
//! graphs hit constantly.

use essentials_graph::VertexId;

/// Linear-merge intersection count of two sorted slices.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping intersection: for each element of the shorter list, find it in
/// the longer by exponential + binary search. O(|short| · log |long|),
/// which beats the merge when |long| ≫ |short|.
pub fn intersect_count_gallop(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0;
    let mut base = 0usize; // everything before base is < all remaining x
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential probe: find a window [prev, hi) guaranteed to contain
        // the first element >= x.
        let mut step = 1;
        let mut prev = base;
        let mut probe = base;
        while probe < long.len() && long[probe] < x {
            prev = probe + 1;
            probe += step;
            step <<= 1;
        }
        let hi = probe.min(long.len());
        let idx = prev + long[prev..hi].partition_point(|&y| y < x);
        if idx < long.len() && long[idx] == x {
            count += 1;
            base = idx + 1;
        } else {
            base = idx;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_common_elements() {
        assert_eq!(intersect_count(&[1, 3, 5, 7], &[3, 4, 5, 6, 7]), 3);
        assert_eq!(intersect_count(&[], &[1, 2]), 0);
        assert_eq!(intersect_count(&[2], &[2]), 1);
    }

    #[test]
    fn gallop_agrees_with_merge() {
        let a: Vec<VertexId> = (0..2000).step_by(3).collect();
        let b: Vec<VertexId> = (0..2000).step_by(7).collect();
        assert_eq!(intersect_count(&a, &b), intersect_count_gallop(&a, &b));
        // Skewed sizes.
        let small: Vec<VertexId> = vec![5, 600, 1500];
        assert_eq!(
            intersect_count(&small, &a),
            intersect_count_gallop(&small, &a)
        );
    }

    #[test]
    fn gallop_handles_disjoint_and_identical() {
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (100..200).collect();
        assert_eq!(intersect_count_gallop(&a, &b), 0);
        assert_eq!(intersect_count_gallop(&a, &a), 100);
    }

    #[test]
    fn gallop_exhaustive_small_cases() {
        // Cross-check on all subsets of a small universe.
        let universe: Vec<VertexId> = (0..8).collect();
        for mask_a in 0u32..256 {
            for mask_b in [0u32, 1, 37, 170, 255] {
                let pick = |mask: u32| -> Vec<VertexId> {
                    universe
                        .iter()
                        .copied()
                        .filter(|&v| mask >> v & 1 == 1)
                        .collect()
                };
                let (a, b) = (pick(mask_a), pick(mask_b));
                assert_eq!(
                    intersect_count(&a, &b),
                    intersect_count_gallop(&a, &b),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }
}
