//! Propagation-blocked gather and pull operators (DESIGN.md §12).
//!
//! Full-frontier pull iterations (PageRank, HITS) read a source value per
//! edge at a random address, so once the rank vector outgrows the cache
//! every edge is a miss. Propagation blocking restructures the iteration:
//! contributions are *binned* by destination cache block first, then each
//! bin is flushed into a destination range small enough to stay resident.
//! Both passes stream sequentially through memory; the only random access
//! left is confined to one bin-sized window at a time.
//!
//! Two operators share the machinery:
//!
//! * [`BlockedGather`] — a reusable binned layout for full-frontier
//!   gathers. Built once per run (counting sort of the edge list into
//!   bin-major segments), then [`BlockedGather::gather`] replays it every
//!   iteration with fresh source values, allocation-free.
//! * [`expand_blocked_pull`] — a frontier-masked pull with the same
//!   signature family as `expand_pull_masked`, for direction-optimized
//!   traversals whose dense iterations dominate.
//!
//! Determinism: bins are fixed disjoint destination ranges, each flushed
//! by exactly one worker in ascending entry order, and entry order is
//! fixed by the layout (source-chunk-ascending, i.e. source-ascending)
//! independent of the worker count. Results are therefore bit-identical
//! across thread counts, unlike an atomic scatter.

use std::sync::atomic::{AtomicUsize, Ordering};

use essentials_frontier::DenseFrontier;
use essentials_graph::{EdgeValue, EdgeWeights, InNeighbors, OutNeighbors, VertexId};
use essentials_obs::{AdvanceEvent, OpKind};
use essentials_parallel::{ExecutionPolicy, Schedule};

use crate::context::Context;
use crate::operators::advance::PullConfig;

/// Sources per fixed layout chunk. One chunk of `f64` source values is
/// 32 KiB — L1-resident — so the value-fill pass reads its random source
/// window from L1 while streaming the entry arrays.
const SRC_CHUNK: usize = 4096;

/// Bitmap words per fixed chunk on the masked path (64 words = 4096
/// source slots, mirroring [`SRC_CHUNK`]).
pub(crate) const WORD_CHUNK: usize = 64;

/// Most worker segments the chunk scheduler tracks on the stack.
const MAX_SEGMENTS: usize = 64;

/// Tuning for the blocked operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedConfig {
    /// log2 of the destinations per bin. The flush working set is
    /// `8 << bin_bits` bytes of destination data; the default of 15
    /// (32 Ki destinations, 256 KiB) fits comfortably in an L2 slice.
    pub bin_bits: u32,
}

impl Default for BlockedConfig {
    fn default() -> Self {
        BlockedConfig { bin_bits: 15 }
    }
}

impl BlockedConfig {
    pub(crate) fn clamped_bits(self) -> u32 {
        self.bin_bits.clamp(4, 31)
    }
}

/// Which adjacency a [`BlockedGather`] scatters along.
///
/// `OutEdges` computes `out[v] = Σ src_val(u)` over edges `u → v` — the
/// CSR-side scatter equivalent of a CSC pull, so PageRank's blocked pull
/// needs no CSC at all. `InEdges` runs the transpose (HITS scatters
/// authority scores back along in-edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherDirection {
    /// Scatter each vertex's value to its out-neighbors.
    OutEdges,
    /// Scatter each vertex's value to its in-neighbors (requires CSC).
    InEdges,
}

/// Shared-pointer shim for disjoint-index writes from a parallel region.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
impl<T> SendPtr<T> {
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: only used to write disjoint indices from within a joined
// parallel region; the underlying borrow outlives the region.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Runs `f(chunk)` for every chunk in `0..nchunks`, claiming chunks from
/// per-worker segment cursors (preferring each worker's placement segment
/// before sweeping the rest) so flushes land on the worker that owns the
/// destination range when the pool carries a [`Placement`].
///
/// This exists because `parallel_for` falls back to a sequential loop
/// below its cutoff (2048 items) — correct for fine-grained loops, wrong
/// for coarse chunk loops where each of ~dozens of items is thousands of
/// edges of work. Every chunk is executed exactly once regardless of
/// worker count; `f` must tolerate concurrent invocation on distinct
/// chunks.
pub(crate) fn for_each_chunk<F>(ctx: &Context, parallel: bool, nchunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = ctx.num_threads();
    if !parallel || workers == 1 || nchunks <= 1 {
        for c in 0..nchunks {
            f(c);
        }
        return;
    }
    if workers <= MAX_SEGMENTS {
        // Segment boundaries over the chunk space: the pool's placement
        // rescaled when present, an even split otherwise.
        let placement = ctx.pool().placement();
        let mut bounds = [0usize; MAX_SEGMENTS + 1];
        match placement.as_deref() {
            Some(p) if p.workers() == workers && !p.is_empty() => {
                for (w, b) in bounds.iter_mut().enumerate().take(workers) {
                    *b = p.scaled_segment(w, nchunks).start;
                }
                bounds[workers] = nchunks;
            }
            _ => {
                let seg = nchunks.div_ceil(workers);
                for (w, b) in bounds.iter_mut().enumerate().take(workers + 1) {
                    *b = (w * seg).min(nchunks);
                }
            }
        }
        let cursors: [AtomicUsize; MAX_SEGMENTS] = std::array::from_fn(|w| {
            AtomicUsize::new(if w < workers { bounds[w] } else { usize::MAX })
        });
        let cursors = &cursors;
        let bounds = &bounds;
        ctx.pool().run(|tid| {
            // Own segment first, then sweep the others round-robin: the
            // cursors are claim tickets, so each chunk runs exactly once
            // even when several workers sweep the same drained segment.
            for k in 0..workers {
                let w = (tid + k) % workers;
                loop {
                    let c = cursors[w].fetch_add(1, Ordering::Relaxed);
                    if c >= bounds[w + 1] {
                        break;
                    }
                    f(c);
                }
            }
        });
        return;
    }
    // Degenerate worker counts: single shared cursor.
    let next = AtomicUsize::new(0);
    let next = &next;
    ctx.pool().run(|_tid| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        f(c);
    });
}

/// A destination-binned edge layout for allocation-free blocked gathers.
///
/// Construction runs a parallel counting sort of every edge `(u, v)` into
/// bin-major, source-chunk-ascending segments: `dsts`/`srcs` hold the
/// edge endpoints, `offsets[b * nchunks + c]` the start of bin `b`'s
/// entries contributed by source chunk `c`. Each iteration then calls
/// [`gather`](Self::gather), which never touches the graph again — it
/// streams the fixed layout.
///
/// All buffers come from the context's scratch pools and return there via
/// [`finish`](Self::finish), so a build-gather-finish cycle is
/// allocation-free once the pools are warm.
pub struct BlockedGather {
    n: usize,
    m: usize,
    nbins: usize,
    nchunks: usize,
    bin_bits: u32,
    /// `nbins * nchunks + 1` exclusive prefix offsets into `dsts`/`srcs`.
    offsets: Vec<usize>,
    dsts: Vec<u32>,
    srcs: Vec<u32>,
    /// Per-iteration contribution values, `vals[k] = src_val(srcs[k])`.
    vals: Vec<f64>,
}

impl BlockedGather {
    /// Builds the layout from the CSR: entry `(u, v)` for every out-edge
    /// `u → v`.
    pub fn over_out_edges<P, G>(_policy: P, ctx: &Context, g: &G, cfg: BlockedConfig) -> Self
    where
        P: ExecutionPolicy,
        G: OutNeighbors + Sync,
    {
        Self::build::<P, _>(ctx, g.num_vertices(), cfg, |u| g.out_neighbors(u))
    }

    /// Builds the layout from the CSC: entry `(u, v)` for every in-edge
    /// `v → u` — the transpose of [`Self::over_out_edges`].
    pub fn over_in_edges<P, G>(_policy: P, ctx: &Context, g: &G, cfg: BlockedConfig) -> Self
    where
        P: ExecutionPolicy,
        G: InNeighbors + Sync,
    {
        Self::build::<P, _>(ctx, g.num_vertices(), cfg, |u| g.in_neighbors(u))
    }

    fn build<'g, P, F>(ctx: &Context, n: usize, cfg: BlockedConfig, targets: F) -> Self
    where
        P: ExecutionPolicy,
        F: Fn(VertexId) -> &'g [VertexId] + Sync,
    {
        let parallel = P::IS_PARALLEL && ctx.num_threads() > 1;
        let bin_bits = cfg.clamped_bits();
        let nbins = n.div_ceil(1usize << bin_bits);
        let nchunks = n.div_ceil(SRC_CHUNK);
        let cells = nbins * nchunks;

        let mut s = ctx.take_scratch();
        let mut offsets = s.take_usize();
        let mut cursors = s.take_usize();
        let mut dsts = s.take_u32();
        let mut srcs = s.take_u32();
        let vals = s.take_f64();
        ctx.put_scratch(s);

        offsets.resize(cells + 1, 0); // alloc-ok: cold growth, pooled across runs
        cursors.resize(cells, 0); // alloc-ok: cold growth, pooled across runs
        cursors[..].fill(0);

        // Count pass: cell (bin, chunk) counts edges from source chunk
        // `chunk` into bin `bin`. Cells of one chunk column are written
        // only by the worker running that chunk, so writes are disjoint
        // and need no atomics.
        {
            let cptr = SendPtr(cursors.as_mut_ptr());
            let cptr = &cptr;
            let targets = &targets;
            for_each_chunk(ctx, parallel, nchunks, |c| {
                let lo = c * SRC_CHUNK;
                let hi = ((c + 1) * SRC_CHUNK).min(n);
                for u in lo..hi {
                    for &d in targets(u as VertexId) {
                        let cell = ((d as usize) >> bin_bits) * nchunks + c;
                        // SAFETY: column `c` of the count matrix is owned
                        // by this chunk invocation; `for_each_chunk` runs
                        // each chunk exactly once.
                        unsafe { *cptr.get().add(cell) += 1 };
                    }
                }
            });
        }

        // Exclusive prefix scan over the ~(nbins * nchunks) cells —
        // trivially serial next to the two edge-order passes.
        let mut acc = 0usize;
        for i in 0..cells {
            offsets[i] = acc;
            acc += cursors[i];
        }
        offsets[cells] = acc;
        let m = acc;

        dsts.resize(m, 0); // alloc-ok: cold growth, pooled across runs
        srcs.resize(m, 0); // alloc-ok: cold growth, pooled across runs

        // Fill pass: same traversal, writing each edge at its cell cursor.
        cursors.copy_from_slice(&offsets[..cells]);
        {
            let cptr = SendPtr(cursors.as_mut_ptr());
            let dptr = SendPtr(dsts.as_mut_ptr());
            let sptr = SendPtr(srcs.as_mut_ptr());
            let (cptr, dptr, sptr) = (&cptr, &dptr, &sptr);
            let targets = &targets;
            for_each_chunk(ctx, parallel, nchunks, |c| {
                let lo = c * SRC_CHUNK;
                let hi = ((c + 1) * SRC_CHUNK).min(n);
                for u in lo..hi {
                    for &d in targets(u as VertexId) {
                        let cell = ((d as usize) >> bin_bits) * nchunks + c;
                        // SAFETY: the cell cursor (column-disjoint, see
                        // count pass) hands out unique slots within this
                        // cell's segment, so the entry writes are
                        // unaliased across workers.
                        unsafe {
                            let k = *cptr.get().add(cell);
                            *cptr.get().add(cell) = k + 1;
                            *dptr.get().add(k) = d;
                            *sptr.get().add(k) = u as u32;
                        }
                    }
                }
            });
        }

        let mut s = ctx.take_scratch();
        s.put_usize(cursors);
        ctx.put_scratch(s);

        BlockedGather {
            n,
            m,
            nbins,
            nchunks,
            bin_bits,
            offsets,
            dsts,
            srcs,
            vals,
        }
    }

    /// Number of binned edge entries (the edge count of the adjacency the
    /// layout was built over).
    pub fn num_entries(&self) -> usize {
        self.m
    }

    /// Number of destination bins.
    pub fn num_bins(&self) -> usize {
        self.nbins
    }

    /// One blocked gather iteration:
    /// `out[v] = finalize(v, Σ src_val(u) over layout entries (u, v))`.
    ///
    /// Two streaming passes: the *fill* writes `vals[k] =
    /// src_val(srcs[k])` (each layout segment reads sources from one
    /// [`SRC_CHUNK`] window, so the random reads stay cache-resident),
    /// then the *flush* accumulates each bin's contiguous entries into
    /// its destination window and finalizes it. Every `out` slot is
    /// overwritten; slots with no incoming entries get `finalize(v, 0.0)`.
    ///
    /// Deterministic across thread counts: per destination, entries are
    /// accumulated in ascending source order (the layout order), matching
    /// a sequential CSC pull term-for-term.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the vertex count the layout
    /// was built over.
    pub fn gather<P, F, Z>(
        &mut self,
        _policy: P,
        ctx: &Context,
        src_val: F,
        finalize: Z,
        out: &mut [f64],
    ) where
        P: ExecutionPolicy,
        F: Fn(usize) -> f64 + Sync,
        Z: Fn(usize, f64) -> f64 + Sync,
    {
        assert_eq!(out.len(), self.n, "gather output length must match layout");
        let parallel = P::IS_PARALLEL && ctx.num_threads() > 1;
        if self.vals.len() != self.m {
            self.vals.resize(self.m, 0.0); // alloc-ok: first iteration only; pooled
        }

        // Fill pass: flat, embarrassingly parallel.
        if parallel {
            let vptr = SendPtr(self.vals.as_mut_ptr());
            let vptr = &vptr;
            let srcs = &self.srcs;
            ctx.pool()
                .parallel_for(0..self.m, Schedule::Dynamic(SRC_CHUNK), |k| {
                    // SAFETY: k is visited exactly once (parallel_for
                    // contract); the borrow outlives the joined loop.
                    unsafe { *vptr.get().add(k) = src_val(srcs[k] as usize) };
                });
        } else {
            for k in 0..self.m {
                self.vals[k] = src_val(self.srcs[k] as usize);
            }
        }

        // Flush pass: one bin = one disjoint destination window, entries
        // contiguous and source-ascending.
        let bin_size = 1usize << self.bin_bits;
        let optr = SendPtr(out.as_mut_ptr());
        let optr = &optr;
        let (n, nchunks) = (self.n, self.nchunks);
        let (offsets, dsts, vals) = (&self.offsets, &self.dsts, &self.vals);
        let finalize = &finalize;
        for_each_chunk(ctx, parallel, self.nbins, |b| {
            let v_lo = b * bin_size;
            let v_hi = ((b + 1) * bin_size).min(n);
            let k_lo = offsets[b * nchunks];
            let k_hi = offsets[(b + 1) * nchunks];
            // SAFETY: bin `b` exclusively owns destination slots
            // `v_lo..v_hi`; every `dsts[k]` in the bin's entry range lies
            // in that window by construction, so all writes through the
            // shared pointer are disjoint across bins.
            unsafe {
                for v in v_lo..v_hi {
                    *optr.get().add(v) = 0.0;
                }
                for k in k_lo..k_hi {
                    *optr.get().add(dsts[k] as usize) += vals[k];
                }
                for v in v_lo..v_hi {
                    let acc = *optr.get().add(v);
                    *optr.get().add(v) = finalize(v, acc);
                }
            }
        });

        if let Some(sink) = ctx.obs() {
            sink.on_advance(&AdvanceEvent {
                kind: OpKind::GatherBlocked,
                policy: P::NAME,
                frontier_in: self.n,
                edges_inspected: self.m as u64,
                admitted: self.m as u64,
                output_len: self.n,
                dedup_hits: 0,
                per_worker: &[],
            });
        }
    }

    /// Returns every pooled buffer to the context's scratch pools so the
    /// next layout (or any numeric consumer) reuses the capacity.
    pub fn finish(self, ctx: &Context) {
        let mut s = ctx.take_scratch();
        s.put_usize(self.offsets);
        s.put_u32(self.dsts);
        s.put_u32(self.srcs);
        s.put_f64(self.vals);
        ctx.put_scratch(s);
    }
}

/// Frontier-masked pull expansion through propagation blocking.
///
/// Semantically equivalent to
/// [`expand_pull_masked`](crate::operators::advance::expand_pull_masked)
/// — the output is the set of `dst ∈ candidates` with an edge `src → dst`
/// from an active `src` whose `condition(src, dst, w)` holds — but driven
/// from the CSR side: active sources' out-edges are binned by destination
/// block, then each bin flushes with cache-resident candidate/output
/// probes. The condition sees exactly the edges whose source is active
/// (order differs from the CSC scan; side-effectful conditions must be
/// commutative, as everywhere in the advance family). With
/// `cfg.early_exit`, at most one admitting edge per destination is
/// evaluated *after* admission within a bin, mirroring the CSC scan's
/// per-destination break.
///
/// The returned scan count is the number of binned entries — out-edges of
/// active sources — where the CSC path counts in-edges of candidates.
///
/// Unlike [`BlockedGather`], the bin layout is rebuilt per call (the
/// active set changes every iteration); all buffers are pooled, so
/// steady-state calls stay allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn expand_blocked_pull<P, G, W, F>(
    _policy: P,
    ctx: &Context,
    g: &G,
    input: &DenseFrontier,
    candidates: &DenseFrontier,
    cfg: PullConfig,
    bcfg: BlockedConfig,
    condition: F,
) -> (DenseFrontier, usize)
where
    P: ExecutionPolicy,
    G: EdgeWeights<W> + Sync,
    W: EdgeValue,
    F: Fn(VertexId, VertexId, W) -> bool + Sync,
{
    let n = g.num_vertices();
    debug_assert_eq!(candidates.capacity(), n);
    assert!(
        g.num_edges() <= u32::MAX as usize,
        "expand_blocked_pull packs edge ids into u32 entries"
    );
    let output = ctx.take_dense_frontier(n);
    let parallel = P::IS_PARALLEL && ctx.num_threads() > 1;
    let bin_bits = bcfg.clamped_bits();
    let nbins = n.div_ceil(1usize << bin_bits);
    let words = input.bits().num_words();
    let nchunks = words.div_ceil(WORD_CHUNK);
    let cells = nbins * nchunks;

    let mut s = ctx.take_scratch();
    let mut offsets = s.take_usize();
    let mut cursors = s.take_usize();
    let mut entries = s.take_u32();
    ctx.put_scratch(s);

    offsets.resize(cells + 1, 0); // alloc-ok: cold growth, pooled across calls
    cursors.resize(cells, 0); // alloc-ok: cold growth, pooled across calls
    cursors[..].fill(0);
    let bits = input.bits();

    // Count pass over active sources, chunked by bitmap words.
    {
        let cptr = SendPtr(cursors.as_mut_ptr());
        let cptr = &cptr;
        for_each_chunk(ctx, parallel, nchunks, |c| {
            let w_lo = c * WORD_CHUNK;
            let w_hi = ((c + 1) * WORD_CHUNK).min(words);
            bits.for_each_set_in_words(w_lo, w_hi, &mut |src| {
                for e in g.out_edges(src as VertexId) {
                    let cell = ((g.edge_dest(e) as usize) >> bin_bits) * nchunks + c;
                    // SAFETY: column `c` of the count matrix is owned by
                    // this chunk invocation (see BlockedGather::build).
                    unsafe { *cptr.get().add(cell) += 1 };
                }
            });
        });
    }

    let mut acc = 0usize;
    for i in 0..cells {
        offsets[i] = acc;
        acc += cursors[i];
    }
    offsets[cells] = acc;
    let m = acc;

    // Fill pass: stride-3 entries (dst, src, edge) at the cell cursors.
    entries.resize(3 * m, 0); // alloc-ok: cold growth, pooled across calls
    cursors.copy_from_slice(&offsets[..cells]);
    {
        let cptr = SendPtr(cursors.as_mut_ptr());
        let eptr = SendPtr(entries.as_mut_ptr());
        let (cptr, eptr) = (&cptr, &eptr);
        for_each_chunk(ctx, parallel, nchunks, |c| {
            let w_lo = c * WORD_CHUNK;
            let w_hi = ((c + 1) * WORD_CHUNK).min(words);
            bits.for_each_set_in_words(w_lo, w_hi, &mut |src| {
                for e in g.out_edges(src as VertexId) {
                    let d = g.edge_dest(e);
                    let cell = ((d as usize) >> bin_bits) * nchunks + c;
                    // SAFETY: column-disjoint cursors hand out unique
                    // entry slots (see BlockedGather::build).
                    unsafe {
                        let k = *cptr.get().add(cell);
                        *cptr.get().add(cell) = k + 1;
                        let at = eptr.get().add(3 * k);
                        *at = d;
                        *at.add(1) = src as u32;
                        *at.add(2) = e as u32;
                    }
                }
            });
        });
    }

    // Flush: each bin probes candidates/output within one cache-resident
    // destination window. `output` insertion is atomic (bitmap), so
    // cross-bin writes need no coordination.
    {
        let output = &output;
        let (offsets, entries) = (&offsets, &entries);
        let condition = &condition;
        for_each_chunk(ctx, parallel, nbins, |b| {
            for k in offsets[b * nchunks]..offsets[(b + 1) * nchunks] {
                let dst = entries[3 * k];
                if cfg.early_exit && output.contains(dst) {
                    continue;
                }
                if !candidates.contains(dst) {
                    continue;
                }
                let src = entries[3 * k + 1];
                let e = entries[3 * k + 2] as essentials_graph::EdgeId;
                if condition(src, dst, g.edge_weight(e)) {
                    output.insert(dst);
                }
            }
        });
    }

    let mut s = ctx.take_scratch();
    s.put_usize(offsets);
    s.put_usize(cursors);
    s.put_u32(entries);
    ctx.put_scratch(s);

    if let Some(sink) = ctx.obs() {
        let out_len = output.len();
        sink.on_advance(&AdvanceEvent {
            kind: OpKind::PullBlocked,
            policy: P::NAME,
            frontier_in: input.len(),
            edges_inspected: m as u64,
            admitted: out_len as u64,
            output_len: out_len,
            dedup_hits: 0,
            per_worker: &[],
        });
    }
    (output, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::advance::expand_pull_masked;
    use essentials_graph::{Graph, GraphBase, GraphBuilder};
    use essentials_parallel::execution;

    fn ring_with_chords(n: usize) -> Graph<f32> {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            let n32 = n as VertexId;
            b = b.edge(v, (v + 1) % n32, 1.0);
            b = b.edge(v, (v * 7 + 3) % n32, 1.0);
        }
        b.deduplicate().with_csc().build()
    }

    fn naive_out_gather(g: &Graph<f32>, val: impl Fn(usize) -> f64) -> Vec<f64> {
        let n = g.num_vertices();
        let mut out = vec![0.0; n];
        for u in 0..n as VertexId {
            for &d in g.out_neighbors(u) {
                out[d as usize] += val(u as usize);
            }
        }
        out
    }

    #[test]
    fn blocked_gather_matches_naive_scatter_exactly() {
        let g = ring_with_chords(300);
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let cfg = BlockedConfig { bin_bits: 5 };
            let mut bg = BlockedGather::over_out_edges(execution::par, &ctx, &g, cfg);
            assert_eq!(bg.num_entries(), g.num_edges());
            let mut out = vec![-1.0; g.num_vertices()];
            let val = |u: usize| 1.0 / (u + 1) as f64;
            bg.gather(execution::par, &ctx, val, |_, acc| acc, &mut out);
            bg.finish(&ctx);
            assert_eq!(out, naive_out_gather(&g, val), "threads={threads}");
        }
    }

    #[test]
    fn blocked_gather_finalize_applies_per_vertex() {
        let g = ring_with_chords(64);
        let ctx = Context::new(2);
        let cfg = BlockedConfig { bin_bits: 4 };
        let mut bg = BlockedGather::over_out_edges(execution::par, &ctx, &g, cfg);
        let mut out = vec![0.0; g.num_vertices()];
        bg.gather(
            execution::par,
            &ctx,
            |_| 1.0,
            |v, acc| v as f64 + 0.5 * acc,
            &mut out,
        );
        bg.finish(&ctx);
        let naive = naive_out_gather(&g, |_| 1.0);
        for v in 0..g.num_vertices() {
            assert_eq!(out[v], v as f64 + 0.5 * naive[v]);
        }
    }

    #[test]
    fn in_edge_gather_is_the_transpose() {
        // u → v edges: InEdges gather over the CSC sends each vertex's
        // value to its in-neighbors, i.e. out[u] += val(v) per edge u → v.
        let g = ring_with_chords(100);
        let ctx = Context::new(3);
        let cfg = BlockedConfig { bin_bits: 4 };
        let mut bg = BlockedGather::over_in_edges(execution::par, &ctx, &g, cfg);
        let mut out = vec![0.0; g.num_vertices()];
        let val = |v: usize| (v % 13) as f64;
        bg.gather(execution::par, &ctx, val, |_, acc| acc, &mut out);
        bg.finish(&ctx);
        let mut naive = vec![0.0; g.num_vertices()];
        for u in 0..g.num_vertices() as VertexId {
            for &d in g.out_neighbors(u) {
                naive[u as usize] += val(d as usize);
            }
        }
        assert_eq!(out, naive);
    }

    #[test]
    fn gather_is_bit_identical_across_thread_counts() {
        let g = ring_with_chords(500);
        let val = |u: usize| 0.1 + 1.0 / (u + 3) as f64;
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1, 2, 8] {
            let ctx = Context::new(threads);
            let cfg = BlockedConfig { bin_bits: 6 };
            let mut bg = BlockedGather::over_out_edges(execution::par, &ctx, &g, cfg);
            let mut out = vec![0.0; g.num_vertices()];
            bg.gather(
                execution::par,
                &ctx,
                val,
                |_, acc| 0.15 + 0.85 * acc,
                &mut out,
            );
            bg.finish(&ctx);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads={threads}"),
            }
        }
    }

    #[test]
    fn empty_graph_gathers_nothing() {
        let g: Graph<f32> = GraphBuilder::new(0).with_csc().build();
        let ctx = Context::new(2);
        let mut bg =
            BlockedGather::over_out_edges(execution::par, &ctx, &g, BlockedConfig::default());
        let mut out: Vec<f64> = vec![];
        bg.gather(execution::par, &ctx, |_| 1.0, |_, acc| acc, &mut out);
        bg.finish(&ctx);
    }

    #[test]
    fn blocked_pull_matches_masked_pull_output_set() {
        let g = ring_with_chords(400);
        let n = g.num_vertices();
        for threads in [1, 4] {
            let ctx = Context::new(threads);
            let input = DenseFrontier::new(n);
            for v in (0..n as VertexId).filter(|v| v % 3 == 0) {
                input.insert(v);
            }
            let candidates = DenseFrontier::new(n);
            for v in (0..n as VertexId).filter(|v| v % 2 == 0) {
                candidates.insert(v);
            }
            let cond = |src: VertexId, dst: VertexId, _w: f32| !(src + dst).is_multiple_of(5);
            let (masked, _) = expand_pull_masked(
                execution::par,
                &ctx,
                &g,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                cond,
            );
            let (blocked, scanned) = expand_blocked_pull(
                execution::par,
                &ctx,
                &g,
                &input,
                &candidates,
                PullConfig { early_exit: false },
                BlockedConfig { bin_bits: 5 },
                cond,
            );
            let mut a: Vec<VertexId> = masked.iter().collect();
            let mut b: Vec<VertexId> = blocked.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
            // Scan count is the out-edges of the active set.
            let expected: usize = input.iter().map(|v| g.out_degree(v)).sum();
            assert_eq!(scanned, expected);
        }
    }

    #[test]
    fn blocked_pull_early_exit_still_finds_every_reachable_candidate() {
        let g = ring_with_chords(200);
        let n = g.num_vertices();
        let ctx = Context::new(4);
        let input = DenseFrontier::new(n);
        input.set_all();
        let candidates = DenseFrontier::new(n);
        candidates.set_all();
        let (out, _) = expand_blocked_pull(
            execution::par,
            &ctx,
            &g,
            &input,
            &candidates,
            PullConfig { early_exit: true },
            BlockedConfig { bin_bits: 4 },
            |_, _, _| true,
        );
        // Every vertex with an in-edge is admitted exactly once.
        let with_in: usize = (0..n as VertexId).filter(|&v| g.in_degree(v) > 0).count();
        assert_eq!(out.len(), with_in);
    }
}
