//! Reusable scratch memory for the frontier pipeline.
//!
//! A steady-state BSP iteration (expand → collect → dedup) used to allocate
//! on every superstep: a degree-offset vector in the load balancer, one
//! `Vec` per worker in the collector, an O(n) bitmap in `uniquify`, and the
//! output frontier itself. [`AdvanceScratch`] owns all four, grown on demand
//! and never shrunk, so after warm-up the advance path touches the allocator
//! zero times.
//!
//! The scratch checks in and out of the [`crate::Context`] through a single
//! [`SwapSlot`] — no lock, no allocation. If two algorithms on one context
//! overlap (the slot is empty when the second asks), the loser simply
//! allocates a fresh scratch and the two instances rotate through the slot
//! afterwards; correctness never depends on winning the swap. The slot's
//! atomic protocol (and its memory orderings) live in [`crate::slot`],
//! where they are tested by exhaustive interleaving enumeration.

use crate::slot::SwapSlot;
use essentials_frontier::{DenseFrontier, SparseFrontier, WorkerBuffers};
use essentials_graph::VertexId;
use essentials_parallel::atomics::AtomicBitset;

/// Bound on pooled output vectors; algorithms juggle at most a current and
/// a next frontier plus a couple of temporaries.
const MAX_SPARE_FRONTIERS: usize = 4;

/// Bound on pooled dense (bitmap) frontiers. Pull/dense-push iterations hold
/// a current, a next, and possibly an unvisited-candidates bitmap.
const MAX_SPARE_DENSE: usize = 4;

/// Bound on each pooled numeric-buffer kind (`f64` rank vectors, `u32`
/// bin-entry arrays, `usize` offset/cursor tables). The blocked gather
/// holds a handful of each across a run; six covers every concurrent
/// holder plus one spare.
const MAX_SPARE_NUMERIC: usize = 6;

/// All reusable memory one advance/filter iteration needs.
pub struct AdvanceScratch {
    /// Degree prefix-sum of the input frontier (load balancer).
    pub(crate) offsets: Vec<usize>,
    /// Per-worker partial sums for the parallel scan.
    pub(crate) chunk_sums: Vec<usize>,
    /// Lock-free per-worker output buffers.
    pub(crate) buffers: WorkerBuffers,
    /// Dedup bitmap for fused-unique expansion. Bits are cleared after each
    /// use by walking the (sparse) output, so the bitmap stays O(n) in
    /// memory but O(|output|) in per-iteration time.
    pub(crate) seen: AtomicBitset,
    /// Recycled output vectors (frontier pool).
    spare: Vec<Vec<VertexId>>,
    /// Recycled dense frontiers (bitmap pool). Capacity-keyed: a pooled
    /// bitmap is only handed out for the vertex universe it was built for,
    /// so reuse is exact and clearing stays O(n/64) word stores.
    spare_dense: Vec<DenseFrontier>,
    /// Recycled `f64` buffers (rank double-buffers, blocked-gather values).
    spare_f64: Vec<Vec<f64>>,
    /// Recycled `u32` buffers (blocked-gather destination/source entries,
    /// multi-source level tables).
    spare_u32: Vec<Vec<u32>>,
    /// Recycled `u64` buffers (multi-source visited/frontier mask words).
    spare_u64: Vec<Vec<u64>>,
    /// Recycled `usize` buffers (blocked-gather offsets and cursors).
    spare_usize: Vec<Vec<usize>>,
}

impl AdvanceScratch {
    /// Empty scratch sized for `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        AdvanceScratch {
            offsets: Vec::new(),    // alloc-ok: Vec::new never allocates (cold constructor)
            chunk_sums: Vec::new(), // alloc-ok: see above
            buffers: WorkerBuffers::new(workers),
            seen: AtomicBitset::new(0),
            spare: Vec::new(),       // alloc-ok: see above
            spare_dense: Vec::new(), // alloc-ok: see above
            spare_f64: Vec::new(),   // alloc-ok: see above
            spare_u32: Vec::new(),   // alloc-ok: see above
            spare_u64: Vec::new(),   // alloc-ok: see above
            spare_usize: Vec::new(), // alloc-ok: see above
        }
    }

    /// A cleared `f64` buffer, reusing the largest pooled capacity. The
    /// caller resizes to its working length; steady state (same graph, same
    /// operator) always finds a buffer that already fits.
    pub(crate) fn take_f64(&mut self) -> Vec<f64> {
        take_spare(&mut self.spare_f64)
    }

    /// Returns an `f64` buffer to the pool (dropped when the pool is full).
    pub(crate) fn put_f64(&mut self, v: Vec<f64>) {
        put_spare(&mut self.spare_f64, v);
    }

    /// A cleared `u32` buffer from the pool ([`Self::take_f64`] semantics).
    pub(crate) fn take_u32(&mut self) -> Vec<u32> {
        take_spare(&mut self.spare_u32)
    }

    /// Returns a `u32` buffer to the pool.
    pub(crate) fn put_u32(&mut self, v: Vec<u32>) {
        put_spare(&mut self.spare_u32, v);
    }

    /// A cleared `u64` buffer from the pool ([`Self::take_f64`] semantics).
    /// The multi-source traversals draw their per-vertex mask words from
    /// here.
    pub(crate) fn take_u64(&mut self) -> Vec<u64> {
        take_spare(&mut self.spare_u64)
    }

    /// Returns a `u64` buffer to the pool.
    pub(crate) fn put_u64(&mut self, v: Vec<u64>) {
        put_spare(&mut self.spare_u64, v);
    }

    /// A cleared `usize` buffer from the pool ([`Self::take_f64`]
    /// semantics).
    pub(crate) fn take_usize(&mut self) -> Vec<usize> {
        take_spare(&mut self.spare_usize)
    }

    /// Returns a `usize` buffer to the pool.
    pub(crate) fn put_usize(&mut self, v: Vec<usize>) {
        put_spare(&mut self.spare_usize, v);
    }

    /// Makes the dedup bitmap cover at least `n` vertices. All bits of the
    /// returned bitmap are clear (the fused-unique path restores clearness
    /// after every use; growth allocates a fresh zeroed bitmap).
    pub(crate) fn ensure_seen(&mut self, n: usize) -> &AtomicBitset {
        if self.seen.len() < n {
            self.seen = AtomicBitset::new(n);
        }
        &self.seen
    }

    /// A cleared output vector, reusing pooled capacity when available.
    pub(crate) fn take_vec(&mut self) -> Vec<VertexId> {
        let mut v = self.spare.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a vector to the pool (dropped if the pool is full).
    pub(crate) fn put_vec(&mut self, v: Vec<VertexId>) {
        if self.spare.len() < MAX_SPARE_FRONTIERS && v.capacity() > 0 {
            self.spare.push(v); // alloc-ok: cold pool-return; spine bounded by MAX_SPARE_FRONTIERS
        }
    }

    /// An empty dense frontier over `n` vertices, reusing a pooled bitmap of
    /// exactly that capacity when one exists (cleared in O(n/64) word
    /// stores, no allocation). Mismatched capacities allocate fresh — the
    /// universe is fixed per graph, so steady state always hits the pool.
    pub(crate) fn take_dense(&mut self, n: usize) -> DenseFrontier {
        match self.spare_dense.iter().position(|d| d.capacity() == n) {
            Some(i) => {
                let d = self.spare_dense.swap_remove(i);
                d.clear();
                d
            }
            None => DenseFrontier::new(n),
        }
    }

    /// Returns a dense frontier to the pool (dropped if the pool is full).
    pub(crate) fn put_dense(&mut self, d: DenseFrontier) {
        if self.spare_dense.len() < MAX_SPARE_DENSE && d.capacity() > 0 {
            self.spare_dense.push(d); // alloc-ok: cold pool-return; spine bounded by MAX_SPARE_DENSE
        }
    }
}

/// Pops the largest-capacity pooled buffer (cleared), or an empty vector.
/// Largest-first keeps one warm maximal buffer circulating per user even
/// when differently sized temporaries share the pool.
fn take_spare<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    let best = pool
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| v.capacity())
        .map(|(i, _)| i);
    match best {
        Some(i) => {
            let mut v = pool.swap_remove(i);
            v.clear();
            v
        }
        None => Vec::new(), // alloc-ok: Vec::new never allocates (cold miss)
    }
}

/// Returns a buffer to a bounded pool (dropped when full or capacity-less).
fn put_spare<T>(pool: &mut Vec<Vec<T>>, v: Vec<T>) {
    if pool.len() < MAX_SPARE_NUMERIC && v.capacity() > 0 {
        pool.push(v); // alloc-ok: cold pool-return; spine bounded by MAX_SPARE_NUMERIC
    }
}

/// Lock-free single-slot exchanger for the scratch: scratch-specific policy
/// (lazy construction, worker-count growth, replace-keeps-newest) layered on
/// the generic [`SwapSlot`] protocol.
///
/// Public so a serving layer can keep a *pool* of slots and hand each
/// admitted request its own via [`crate::Context::with_parts`]; the slot
/// API itself stays crate-internal — outside code only creates slots and
/// threads them through contexts.
pub struct ScratchSlot {
    slot: SwapSlot<AdvanceScratch>,
}

impl Default for ScratchSlot {
    fn default() -> Self {
        ScratchSlot::new()
    }
}

impl ScratchSlot {
    /// An empty slot; the first `take` lazily builds the scratch.
    pub fn new() -> Self {
        ScratchSlot {
            slot: SwapSlot::new(),
        }
    }

    /// Takes the parked scratch, or builds a fresh one if the slot is empty
    /// (first use, or another algorithm holds it right now).
    pub(crate) fn take(&self, workers: usize) -> Box<AdvanceScratch> {
        match self.slot.take() {
            Some(mut s) => {
                s.buffers.ensure_workers(workers);
                s
            }
            None => Box::new(AdvanceScratch::new(workers)), // alloc-ok: first-use or contended miss; steady state takes the parked scratch
        }
    }

    /// Parks the scratch for the next taker. If another instance got parked
    /// meanwhile, the incoming (most recently used, cache-warm) one replaces
    /// it and the older one is freed.
    pub(crate) fn put(&self, scratch: Box<AdvanceScratch>) {
        drop(self.slot.put(scratch));
    }

    /// Recycles a frontier's storage into the parked scratch's vector pool.
    /// A no-op (the vector is dropped) when the slot is empty.
    pub(crate) fn recycle(&self, f: SparseFrontier, workers: usize) {
        let mut s = self.take(workers);
        s.put_vec(f.into_vec());
        self.put(s);
    }

    /// Recycles a dense frontier's bitmap into the parked scratch's pool
    /// (the dense mirror of [`Self::recycle`]).
    pub(crate) fn recycle_dense(&self, f: DenseFrontier, workers: usize) {
        let mut s = self.take(workers);
        s.put_dense(f);
        self.put(s);
    }

    /// A dense frontier over `n` vertices from the parked scratch's pool
    /// (fresh allocation if the slot is empty or no pooled bitmap matches).
    pub(crate) fn take_dense(&self, n: usize, workers: usize) -> DenseFrontier {
        let mut s = self.take(workers);
        let d = s.take_dense(n);
        self.put(s);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_round_trips_the_same_allocation() {
        let slot = ScratchSlot::new();
        let mut s = slot.take(4);
        s.offsets.reserve(1000);
        let cap = s.offsets.capacity();
        let addr = s.offsets.as_ptr();
        slot.put(s);
        let s2 = slot.take(4);
        assert_eq!(s2.offsets.capacity(), cap);
        assert_eq!(s2.offsets.as_ptr(), addr);
    }

    #[test]
    fn empty_slot_allocates_fresh() {
        let slot = ScratchSlot::new();
        let a = slot.take(2);
        let b = slot.take(2); // slot empty while `a` is out
        assert_eq!(b.buffers.workers(), 2);
        slot.put(a);
        slot.put(b); // replaces, freeing the older one — must not leak/crash
    }

    #[test]
    fn seen_bitmap_grows_monotonically() {
        let mut s = AdvanceScratch::new(2);
        assert_eq!(s.ensure_seen(100).len(), 100);
        assert_eq!(s.ensure_seen(50).len(), 100);
        assert_eq!(s.ensure_seen(200).len(), 200);
    }

    #[test]
    fn dense_pool_matches_capacity_exactly() {
        let mut s = AdvanceScratch::new(1);
        let d = DenseFrontier::new(100);
        d.insert(7);
        let addr = d.bits().words().as_ptr();
        s.put_dense(d);
        // Wrong universe: fresh allocation, pooled one stays parked.
        assert_eq!(s.take_dense(50).capacity(), 50);
        // Right universe: same words, cleared.
        let got = s.take_dense(100);
        assert_eq!(got.bits().words().as_ptr(), addr);
        assert!(got.is_empty());
        assert!(!got.contains(7));
        for _ in 0..10 {
            s.put_dense(DenseFrontier::new(8));
        }
        assert!(s.spare_dense.len() <= MAX_SPARE_DENSE);
    }

    #[test]
    fn numeric_pools_prefer_largest_capacity_and_stay_bounded() {
        let mut s = AdvanceScratch::new(1);
        s.put_f64(Vec::with_capacity(16));
        let mut big = Vec::with_capacity(1024);
        big.push(1.0);
        let addr = big.as_ptr();
        s.put_f64(big);
        let got = s.take_f64();
        assert_eq!(got.as_ptr(), addr, "largest pooled buffer comes back first");
        assert!(got.is_empty());
        for _ in 0..12 {
            s.put_u32(Vec::with_capacity(4));
            s.put_usize(Vec::with_capacity(4));
        }
        assert!(s.spare_u32.len() <= MAX_SPARE_NUMERIC);
        assert!(s.spare_usize.len() <= MAX_SPARE_NUMERIC);
        // A cold miss hands out an (allocation-free) empty vector.
        let mut empty = AdvanceScratch::new(1);
        assert_eq!(empty.take_usize().capacity(), 0);
    }

    #[test]
    fn vec_pool_bounds_and_reuses() {
        let mut s = AdvanceScratch::new(1);
        let mut v = Vec::with_capacity(64);
        v.push(1);
        let addr = v.as_ptr();
        s.put_vec(v);
        let got = s.take_vec();
        assert!(got.is_empty());
        assert_eq!(got.as_ptr(), addr);
        for _ in 0..10 {
            s.put_vec(Vec::with_capacity(8));
        }
        assert!(s.spare.len() <= MAX_SPARE_FRONTIERS);
    }
}
