//! `essentials-core` — the paper's primary contribution: an abstraction for
//! native-graph analytics built from four essential components.
//!
//! 1. **Graph data structure** — `essentials-graph` (multiple simultaneous
//!    representations behind one API).
//! 2. **Frontiers** — `essentials-frontier` (sparse / dense / queue, one
//!    query interface).
//! 3. **Operators** — [`operators`]: traversals and transformations over
//!    graphs and frontiers, generic over
//!    [`ExecutionPolicy`](essentials_parallel::ExecutionPolicy) so the same
//!    operator runs sequentially, bulk-synchronously, or asynchronously
//!    with identical semantics (§III-A).
//! 4. **Loop structure / convergence** — [`enactor`]: the iterative
//!    while-loop of Listing 4 with pluggable convergence conditions.
//!
//! [`load_balance`] holds the work-division machinery the paper locates in
//! operators ("this is where the bulk of optimizations can be introduced",
//! §IV-C), and [`context`] carries the thread pool through an algorithm.

#![warn(missing_docs)]

pub mod context;
pub mod enactor;
pub mod load_balance;
pub mod operators;
pub mod scratch;
pub mod slot;

pub use context::{resolve_threads, Context};
pub use enactor::{Enactor, IterProgress, LoopStats, DEFAULT_ITERATION_CAP};
pub use scratch::{AdvanceScratch, ScratchSlot};
pub use slot::SwapSlot;

/// The observability layer the operators emit into (re-exported so
/// algorithm crates need no separate dependency).
pub use essentials_obs as obs;

/// Everything a typical algorithm needs, in one import.
pub mod prelude {
    pub use crate::context::{resolve_threads, Context};
    pub use crate::enactor::{Enactor, IterProgress, LoopStats, DEFAULT_ITERATION_CAP};
    pub use crate::load_balance::{for_each_edge_balanced, for_each_vertex_balanced};
    pub use crate::operators::advance::{
        advance_edges, expand_pull, expand_pull_counted, expand_pull_masked, expand_push_dense,
        expand_to_edges, neighbors_expand, neighbors_expand_mutex, neighbors_expand_unique,
        try_neighbors_expand, try_neighbors_expand_unique, PullConfig,
    };
    pub use crate::operators::blocked::{
        expand_blocked_pull, BlockedConfig, BlockedGather, GatherDirection,
    };
    pub use crate::operators::compressed::{
        expand_blocked_pull_compressed, expand_pull_counted_compressed,
        expand_pull_masked_compressed, expand_push_dense_compressed, neighbors_expand_compressed,
        neighbors_expand_unique_compressed,
    };
    pub use crate::operators::compute::{
        fill_indexed, fill_indexed_into, foreach_active, foreach_vertex, try_foreach_vertex,
    };
    pub use crate::operators::direction::{
        advance_adaptive, advance_adaptive_compressed, AdaptiveAdvance, AdaptiveConfig,
        BlockedPullPolicy, CompressedPullPolicy, Direction, DirectionPolicy,
    };
    pub use crate::operators::filter::{filter, try_filter, uniquify, uniquify_with_bitmap};
    pub use crate::operators::intersect::{intersect_count, intersect_count_gallop};
    pub use crate::operators::reduce::{count_if, max_f64, reduce, sum_f64};
    pub use crate::scratch::{AdvanceScratch, ScratchSlot};
    pub use essentials_frontier::{
        Collector, DenseFrontier, EdgeFrontier, Frontier, QueueFrontier, SparseFrontier,
        VertexFrontier,
    };
    pub use essentials_graph::{
        Ccsr, CcsrView, CompressedGraph, CompressedGraphView, Coo, Csr, DecodeEdgeWeights,
        DecodeInEdgeWeights, DecodeInNeighbors, DecodeOutNeighbors, EdgeId, EdgeValue, EdgeWeights,
        Graph, GraphBase, GraphBuilder, InNeighbors, NeighborDecoder, OutNeighbors, VertexId,
        INVALID_VERTEX,
    };
    pub use essentials_obs::{
        CounterTotals, CountersSink, NullSink, ObsSink, Summary, TeeSink, TraceSink,
    };
    pub use essentials_parallel::{
        execution, BudgetReason, CancelToken, ExecError, ExecutionPolicy, FaultPlan, Par,
        ParNosync, Progress, RunBudget, Schedule, Seq, ThreadPool,
    };
}
