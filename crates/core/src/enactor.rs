//! Loop structure and convergence conditions — essential component 4.
//!
//! Listing 4's skeleton — `while (f.size() != 0) { f = operator(...); }` —
//! generalized: the [`Enactor`] owns the iteration bookkeeping (iteration
//! counter, frontier-size trace, iteration cap) and the convergence
//! condition, so algorithms write only the per-iteration operator
//! composition. Two shapes cover the suite:
//!
//! * [`Enactor::run`] — frontier-driven: converge when the frontier
//!   empties (traversal algorithms: BFS, SSSP, …);
//! * [`Enactor::run_until`] — state-driven: converge when a caller
//!   predicate holds (fixed-point algorithms: PageRank, HITS, coloring).
//!
//! An enactor built with [`Enactor::for_ctx`] emits one
//! [`IterSpan`](essentials_obs::IterSpan) per iteration — wall time and
//! frontier in/out sizes — into the context's observability sink.

use std::sync::Arc;
use std::time::Instant;

use essentials_frontier::Frontier;
use essentials_obs::{AbortEvent, IterSpan, LoopKind, ObsSink};
use essentials_parallel::{ExecError, FaultPlan, Progress, RunBudget};

use crate::context::Context;

/// Iteration cap applied to state-driven ([`Enactor::run_until`] /
/// [`Enactor::try_run_until`]) loops that set no explicit cap: a
/// non-converging fixpoint stops here instead of spinning forever. The
/// fallible loop reports the hit as [`ExecError::Diverged`]; the infallible
/// loop sets [`LoopStats::hit_iteration_cap`]. Frontier-driven loops
/// terminate structurally (the frontier empties) and are not defaulted.
pub const DEFAULT_ITERATION_CAP: usize = 100_000;

/// Statistics recorded by an enacted loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Number of iterations (supersteps) executed.
    pub iterations: usize,
    /// Per-iteration work trace: the frontier size after each [`Enactor::run`]
    /// iteration, or the size the step reported via
    /// [`IterProgress::report_work`] for each [`Enactor::run_until`]
    /// iteration (0 for steps that report nothing). Always
    /// `iterations` entries long. Benches use this as the workload trace.
    pub frontier_trace: Vec<usize>,
    /// True if the loop stopped because it hit the iteration cap rather
    /// than converging.
    pub hit_iteration_cap: bool,
}

/// Per-iteration progress reporter handed to [`Enactor::run_until`] steps.
///
/// Fixpoint loops have no frontier for the enactor to measure, so the step
/// closure reports its own work size (vertices touched, messages exchanged,
/// residual count — whatever the algorithm's natural unit is); the enactor
/// records it in [`LoopStats::frontier_trace`] and the iteration span.
#[derive(Debug, Default)]
pub struct IterProgress {
    work: usize,
}

impl IterProgress {
    /// Reports this iteration's work size. Last call wins.
    #[inline]
    pub fn report_work(&mut self, work: usize) {
        self.work = work;
    }

    /// The reported work size (0 if never reported).
    #[inline]
    pub fn work(&self) -> usize {
        self.work
    }
}

/// The iterative loop with a convergence condition.
#[derive(Clone, Default)]
pub struct Enactor {
    max_iterations: Option<usize>,
    obs: Option<Arc<dyn ObsSink>>,
    budget: RunBudget,
    fault: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for Enactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enactor")
            .field("max_iterations", &self.max_iterations)
            .field("obs", &self.obs.as_ref().map(|_| "Arc<dyn ObsSink>"))
            .field("budget", &self.budget)
            .finish()
    }
}

impl Enactor {
    /// An enactor with no iteration cap and no observability.
    pub fn new() -> Self {
        Enactor::default()
    }

    /// An enactor wired to `ctx`'s observability sink (if any): every
    /// iteration emits an [`IterSpan`]. It also inherits the context's
    /// [`RunBudget`] and fault plan, which the fallible loops
    /// ([`Enactor::try_run`] / [`Enactor::try_run_until`]) check at
    /// iteration boundaries. Algorithms construct their enactor this way so
    /// `Context::with_obs` and `Context::with_budget` reach loop level.
    pub fn for_ctx(ctx: &Context) -> Self {
        Enactor {
            max_iterations: None,
            obs: ctx.obs().cloned(),
            budget: ctx.budget().clone(),
            fault: ctx.fault_plan().cloned(),
        }
    }

    /// Caps the number of iterations (a safety net for non-monotone
    /// conditions; a cap hit is reported in [`LoopStats`]).
    pub fn max_iterations(mut self, k: usize) -> Self {
        self.max_iterations = Some(k);
        self
    }

    #[inline]
    fn cap(&self) -> usize {
        self.max_iterations.unwrap_or(usize::MAX)
    }

    /// The fixpoint-loop cap: the explicit cap if set, otherwise
    /// [`DEFAULT_ITERATION_CAP`].
    #[inline]
    fn fixpoint_cap(&self) -> usize {
        self.max_iterations.unwrap_or(DEFAULT_ITERATION_CAP)
    }

    /// Publishes the iteration to the fault plan (fault coordinates are
    /// keyed by `(iteration, chunk)`) and checks the run budget. On a
    /// budget stop, emits the abort event and builds the typed error with
    /// the progress gathered so far.
    #[inline]
    fn check_budget(&self, stats: &LoopStats) -> Result<(), ExecError> {
        if let Some(plan) = &self.fault {
            plan.set_iteration(stats.iterations);
        }
        if self.budget.is_unlimited() {
            return Ok(());
        }
        match self.budget.check_iteration(stats.iterations) {
            Ok(()) => Ok(()),
            Err(reason) => {
                let err = ExecError::Budget {
                    reason,
                    progress: progress_of(stats),
                };
                self.emit_abort(&err, stats.iterations);
                Err(err)
            }
        }
    }

    /// Emits an [`AbortEvent`] when a sink is attached.
    #[inline]
    fn emit_abort(&self, err: &ExecError, iteration: usize) {
        if let Some(sink) = &self.obs {
            sink.on_abort(&AbortEvent {
                kind: err.kind(),
                iteration,
            });
        }
    }

    /// Emits an iteration span when a sink is attached. Timing is only
    /// taken when the sink exists, so uninstrumented loops skip the clock
    /// reads entirely.
    #[inline]
    fn emit_span(
        &self,
        iteration: usize,
        started: Option<Instant>,
        frontier_in: usize,
        frontier_out: usize,
        loop_kind: LoopKind,
    ) {
        if let (Some(sink), Some(t0)) = (&self.obs, started) {
            sink.on_iteration(&IterSpan {
                iteration,
                wall_ns: t0.elapsed().as_nanos() as u64,
                frontier_in,
                frontier_out,
                loop_kind,
            });
        }
    }

    /// Pre-sizes the work trace for capped fixpoint loops so the
    /// per-iteration `push` never reallocates mid-run — part of the
    /// steady-state zero-allocation contract (DESIGN.md §12). Bounded so a
    /// pathological explicit cap cannot demand an absurd reservation.
    #[inline]
    fn reserve_trace(&self, stats: &mut LoopStats) {
        if let Some(k) = self.max_iterations {
            stats.frontier_trace.reserve(k.min(4096)); // alloc-ok: once per run
        }
    }

    /// Frontier-driven loop: runs `step(iteration, frontier)` until the
    /// frontier is empty. Returns the final (empty) frontier and stats.
    pub fn run<S, F>(&self, init: S, mut step: F) -> (S, LoopStats)
    where
        S: Frontier,
        F: FnMut(usize, S) -> S,
    {
        let mut frontier = init;
        let mut stats = LoopStats::default();
        while !frontier.is_empty() {
            if stats.iterations >= self.cap() {
                stats.hit_iteration_cap = true;
                break;
            }
            let frontier_in = frontier.len();
            let started = self.obs.as_ref().map(|_| Instant::now());
            frontier = step(stats.iterations, frontier);
            self.emit_span(
                stats.iterations,
                started,
                frontier_in,
                frontier.len(),
                LoopKind::Frontier,
            );
            stats.iterations += 1;
            stats.frontier_trace.push(frontier.len());
        }
        (frontier, stats)
    }

    /// State-driven loop: runs `step(iteration, &mut state, &mut progress)`
    /// until it returns `true` (converged). Returns the state and stats;
    /// each iteration's [`IterProgress`] report lands in
    /// [`LoopStats::frontier_trace`]. With no explicit cap,
    /// [`DEFAULT_ITERATION_CAP`] applies (reported via
    /// [`LoopStats::hit_iteration_cap`]).
    pub fn run_until<T, F>(&self, mut state: T, mut step: F) -> (T, LoopStats)
    where
        F: FnMut(usize, &mut T, &mut IterProgress) -> bool,
    {
        let mut stats = LoopStats::default();
        self.reserve_trace(&mut stats);
        loop {
            if stats.iterations >= self.fixpoint_cap() {
                stats.hit_iteration_cap = true;
                break;
            }
            let mut progress = IterProgress::default();
            let started = self.obs.as_ref().map(|_| Instant::now());
            let converged = step(stats.iterations, &mut state, &mut progress);
            self.emit_span(
                stats.iterations,
                started,
                progress.work(),
                progress.work(),
                LoopKind::Fixpoint,
            );
            stats.iterations += 1;
            stats.frontier_trace.push(progress.work());
            if converged {
                break;
            }
        }
        (state, stats)
    }

    /// Fallible frontier-driven loop: like [`Enactor::run`], but the step
    /// returns `Result` (typically from a `try_*` operator), the context's
    /// [`RunBudget`] is checked before every iteration, and the current
    /// iteration is published to the fault plan. Budget errors carry the
    /// partial-progress stats gathered so far; errors raised by the step
    /// pass through with their progress enriched.
    pub fn try_run<S, F>(&self, init: S, mut step: F) -> Result<(S, LoopStats), ExecError>
    where
        S: Frontier,
        F: FnMut(usize, S) -> Result<S, ExecError>,
    {
        let mut frontier = init;
        let mut stats = LoopStats::default();
        while !frontier.is_empty() {
            if stats.iterations >= self.cap() {
                stats.hit_iteration_cap = true;
                break;
            }
            self.check_budget(&stats)?;
            let frontier_in = frontier.len();
            let started = self.obs.as_ref().map(|_| Instant::now());
            frontier = match step(stats.iterations, frontier) {
                Ok(next) => next,
                Err(e) => {
                    let e = e.with_progress(progress_of(&stats));
                    self.emit_abort(&e, stats.iterations);
                    return Err(e);
                }
            };
            self.emit_span(
                stats.iterations,
                started,
                frontier_in,
                frontier.len(),
                LoopKind::Frontier,
            );
            stats.iterations += 1;
            stats.frontier_trace.push(frontier.len());
        }
        Ok((frontier, stats))
    }

    /// Fallible state-driven loop: like [`Enactor::run_until`], with the
    /// budget checked at iteration boundaries and the iteration published
    /// to the fault plan. A fixpoint that reaches [`DEFAULT_ITERATION_CAP`]
    /// without an explicit cap is reported as [`ExecError::Diverged`] — a
    /// loop that was *given* a cap hits it normally
    /// ([`LoopStats::hit_iteration_cap`], algorithms decide what that
    /// means).
    pub fn try_run_until<T, F>(
        &self,
        mut state: T,
        mut step: F,
    ) -> Result<(T, LoopStats), ExecError>
    where
        F: FnMut(usize, &mut T, &mut IterProgress) -> Result<bool, ExecError>,
    {
        let mut stats = LoopStats::default();
        self.reserve_trace(&mut stats);
        loop {
            if stats.iterations >= self.fixpoint_cap() {
                if self.max_iterations.is_none() {
                    let err = ExecError::Diverged {
                        iteration: stats.iterations,
                        detail: format!(
                            "fixpoint loop did not converge within the default cap of {DEFAULT_ITERATION_CAP} iterations"
                        ),
                    };
                    self.emit_abort(&err, stats.iterations);
                    return Err(err);
                }
                stats.hit_iteration_cap = true;
                break;
            }
            self.check_budget(&stats)?;
            let mut progress = IterProgress::default();
            let started = self.obs.as_ref().map(|_| Instant::now());
            let converged = match step(stats.iterations, &mut state, &mut progress) {
                Ok(done) => done,
                Err(e) => {
                    let e = e.with_progress(progress_of(&stats));
                    self.emit_abort(&e, stats.iterations);
                    return Err(e);
                }
            };
            self.emit_span(
                stats.iterations,
                started,
                progress.work(),
                progress.work(),
                LoopKind::Fixpoint,
            );
            stats.iterations += 1;
            stats.frontier_trace.push(progress.work());
            if converged {
                break;
            }
        }
        Ok((state, stats))
    }
}

/// The partial-progress view of a [`LoopStats`] attached to budget errors.
fn progress_of(stats: &LoopStats) -> Progress {
    Progress {
        iterations: stats.iterations,
        work_trace: stats.frontier_trace.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_frontier::SparseFrontier;
    use essentials_obs::{Record, TraceSink};

    #[test]
    fn frontier_loop_runs_until_empty() {
        // Shrink the frontier by one per iteration.
        let init = SparseFrontier::from_vec(vec![0, 1, 2, 3]);
        let (f, stats) = Enactor::new().run(init, |_, f| {
            let mut v = f.into_vec();
            v.pop();
            SparseFrontier::from_vec(v)
        });
        assert!(f.is_empty());
        assert_eq!(stats.iterations, 4);
        assert_eq!(stats.frontier_trace, vec![3, 2, 1, 0]);
        assert!(!stats.hit_iteration_cap);
    }

    #[test]
    fn empty_initial_frontier_means_zero_iterations() {
        let (_, stats) = Enactor::new().run(SparseFrontier::new(), |_, f| f);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iteration_cap_reported() {
        let init = SparseFrontier::single(0);
        let (_, stats) = Enactor::new()
            .max_iterations(5)
            .run(init, |_, f| f /* never shrinks */);
        assert_eq!(stats.iterations, 5);
        assert!(stats.hit_iteration_cap);
    }

    #[test]
    fn state_loop_converges_on_predicate() {
        let (x, stats) = Enactor::new().run_until(1.0f64, |_, x, _| {
            *x /= 2.0;
            *x < 0.01
        });
        assert!(x < 0.01);
        assert_eq!(stats.iterations, 7);
    }

    #[test]
    fn state_loop_trace_records_reported_work() {
        let (_, stats) = Enactor::new().run_until(0usize, |i, x, progress| {
            *x += 1;
            progress.report_work(10 * (i + 1));
            *x == 3
        });
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.frontier_trace, vec![10, 20, 30]);
    }

    #[test]
    fn state_loop_trace_defaults_to_zero_without_reports() {
        let (_, stats) = Enactor::new().run_until(0usize, |_, x, _| {
            *x += 1;
            *x == 2
        });
        // One entry per iteration even when the step reports nothing.
        assert_eq!(stats.frontier_trace, vec![0, 0]);
    }

    #[test]
    fn obs_enactor_emits_one_span_per_iteration() {
        let trace = Arc::new(TraceSink::new());
        let ctx = Context::sequential().with_obs(trace.clone());
        let init = SparseFrontier::from_vec(vec![0, 1]);
        let (_, stats) = Enactor::for_ctx(&ctx).run(init, |_, f| {
            let mut v = f.into_vec();
            v.pop();
            SparseFrontier::from_vec(v)
        });
        let spans: Vec<_> = trace
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Iteration(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), stats.iterations);
        assert_eq!(spans[0].frontier_in, 2);
        assert_eq!(spans[0].frontier_out, 1);
        assert_eq!(spans[0].loop_kind, LoopKind::Frontier);

        let (_, stats) = Enactor::for_ctx(&ctx).run_until(0usize, |_, x, p| {
            *x += 1;
            p.report_work(7);
            *x == 2
        });
        let fixpoint_spans: Vec<_> = trace
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Iteration(s) if s.loop_kind == LoopKind::Fixpoint => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(fixpoint_spans.len(), stats.iterations);
        assert_eq!(fixpoint_spans[0].frontier_in, 7);
    }
}
