//! Loop structure and convergence conditions — essential component 4.
//!
//! Listing 4's skeleton — `while (f.size() != 0) { f = operator(...); }` —
//! generalized: the [`Enactor`] owns the iteration bookkeeping (iteration
//! counter, frontier-size trace, iteration cap) and the convergence
//! condition, so algorithms write only the per-iteration operator
//! composition. Two shapes cover the suite:
//!
//! * [`Enactor::run`] — frontier-driven: converge when the frontier
//!   empties (traversal algorithms: BFS, SSSP, …);
//! * [`Enactor::run_until`] — state-driven: converge when a caller
//!   predicate holds (fixed-point algorithms: PageRank, HITS, coloring).

use essentials_frontier::Frontier;

/// Statistics recorded by an enacted loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Number of iterations (supersteps) executed.
    pub iterations: usize,
    /// Frontier size after each iteration (empty for `run_until` unless the
    /// step reports sizes itself). Benches use this as the workload trace.
    pub frontier_trace: Vec<usize>,
    /// True if the loop stopped because it hit the iteration cap rather
    /// than converging.
    pub hit_iteration_cap: bool,
}

/// The iterative loop with a convergence condition.
#[derive(Debug, Clone)]
pub struct Enactor {
    max_iterations: usize,
}

impl Default for Enactor {
    fn default() -> Self {
        Enactor::new()
    }
}

impl Enactor {
    /// An enactor with no iteration cap.
    pub fn new() -> Self {
        Enactor {
            max_iterations: usize::MAX,
        }
    }

    /// Caps the number of iterations (a safety net for non-monotone
    /// conditions; a cap hit is reported in [`LoopStats`]).
    pub fn max_iterations(mut self, k: usize) -> Self {
        self.max_iterations = k;
        self
    }

    /// Frontier-driven loop: runs `step(iteration, frontier)` until the
    /// frontier is empty. Returns the final (empty) frontier and stats.
    pub fn run<S, F>(&self, init: S, mut step: F) -> (S, LoopStats)
    where
        S: Frontier,
        F: FnMut(usize, S) -> S,
    {
        let mut frontier = init;
        let mut stats = LoopStats::default();
        while !frontier.is_empty() {
            if stats.iterations >= self.max_iterations {
                stats.hit_iteration_cap = true;
                break;
            }
            frontier = step(stats.iterations, frontier);
            stats.iterations += 1;
            stats.frontier_trace.push(frontier.len());
        }
        (frontier, stats)
    }

    /// State-driven loop: runs `step(iteration, &mut state)` until it
    /// returns `true` (converged). Returns the state and stats.
    pub fn run_until<T, F>(&self, mut state: T, mut step: F) -> (T, LoopStats)
    where
        F: FnMut(usize, &mut T) -> bool,
    {
        let mut stats = LoopStats::default();
        loop {
            if stats.iterations >= self.max_iterations {
                stats.hit_iteration_cap = true;
                break;
            }
            let converged = step(stats.iterations, &mut state);
            stats.iterations += 1;
            if converged {
                break;
            }
        }
        (state, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_frontier::SparseFrontier;

    #[test]
    fn frontier_loop_runs_until_empty() {
        // Shrink the frontier by one per iteration.
        let init = SparseFrontier::from_vec(vec![0, 1, 2, 3]);
        let (f, stats) = Enactor::new().run(init, |_, f| {
            let mut v = f.into_vec();
            v.pop();
            SparseFrontier::from_vec(v)
        });
        assert!(f.is_empty());
        assert_eq!(stats.iterations, 4);
        assert_eq!(stats.frontier_trace, vec![3, 2, 1, 0]);
        assert!(!stats.hit_iteration_cap);
    }

    #[test]
    fn empty_initial_frontier_means_zero_iterations() {
        let (_, stats) = Enactor::new().run(SparseFrontier::new(), |_, f| f);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iteration_cap_reported() {
        let init = SparseFrontier::single(0);
        let (_, stats) = Enactor::new()
            .max_iterations(5)
            .run(init, |_, f| f /* never shrinks */);
        assert_eq!(stats.iterations, 5);
        assert!(stats.hit_iteration_cap);
    }

    #[test]
    fn state_loop_converges_on_predicate() {
        let (x, stats) = Enactor::new().run_until(1.0f64, |_, x| {
            *x /= 2.0;
            *x < 0.01
        });
        assert!(x < 0.01);
        assert_eq!(stats.iterations, 7);
    }
}
