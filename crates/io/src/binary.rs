//! Compact binary CSR snapshots.
//!
//! A small, versioned, explicitly little-endian codec built on `bytes`
//! (no serialization-format crate is in the approved dependency set, so
//! the layout is spelled out by hand and checked by round-trip and
//! corruption tests):
//!
//! ```text
//! magic  "ESNT"    4 bytes
//! version u32      currently 1
//! n       u64      vertices
//! m       u64      edges
//! offsets (n+1)×u64
//! cols    m×u32
//! weights m×f32
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use essentials_graph::Csr;

use crate::IoError;

const MAGIC: &[u8; 4] = b"ESNT";
const VERSION: u32 = 1;

/// Serializes a CSR to bytes.
pub fn write_binary(g: &Csr<f32>) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut buf = BytesMut::with_capacity(16 + (n + 1) * 8 + m * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for &o in g.row_offsets() {
        buf.put_u64_le(o as u64);
    }
    for &c in g.column_indices() {
        buf.put_u32_le(c);
    }
    for &w in g.values() {
        buf.put_f32_le(w);
    }
    buf.freeze()
}

/// Deserializes a CSR from bytes, validating structure.
pub fn read_binary(mut data: &[u8]) -> Result<Csr<f32>, IoError> {
    let need = |data: &[u8], n: usize, what: &str| -> Result<(), IoError> {
        if data.remaining() < n {
            Err(IoError::Parse(format!("truncated snapshot reading {what}")))
        } else {
            Ok(())
        }
    };
    need(data, 8, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Parse(
            "bad magic (not an essentials snapshot)".into(),
        ));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(IoError::Parse(format!(
            "unsupported snapshot version {version}"
        )));
    }
    need(data, 16, "dimensions")?;
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    // Checked sizes: corrupted dimensions must error, not overflow or OOM.
    let offsets_bytes = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(|| IoError::Parse("vertex count overflows".into()))?;
    need(data, offsets_bytes, "offsets")?;
    let offsets: Vec<usize> = (0..=n).map(|_| data.get_u64_le() as usize).collect();
    let col_bytes = m
        .checked_mul(4)
        .ok_or_else(|| IoError::Parse("edge count overflows".into()))?;
    need(data, col_bytes, "columns")?;
    let cols: Vec<u32> = (0..m).map(|_| data.get_u32_le()).collect();
    need(data, col_bytes, "weights")?;
    let vals: Vec<f32> = (0..m).map(|_| data.get_f32_le()).collect();
    if offsets.last() != Some(&m) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(IoError::Parse("inconsistent offsets".into()));
    }
    if cols.iter().any(|&c| c as usize >= n) {
        return Err(IoError::Parse("column index out of range".into()));
    }
    if vals.iter().any(|v| v.is_nan()) {
        return Err(IoError::Parse("NaN weight in snapshot".into()));
    }
    Ok(Csr::from_raw(offsets, cols, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Coo;

    fn sample() -> Csr<f32> {
        Csr::from_coo(&Coo::from_edges(
            5,
            [(0, 1, 1.0f32), (0, 4, 2.0), (3, 2, 0.5), (4, 0, 9.0)],
        ))
    }

    #[test]
    fn round_trip_is_exact() {
        let g = sample();
        let bytes = write_binary(&g);
        let back = read_binary(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::<f32>::empty(0);
        assert_eq!(read_binary(&write_binary(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = write_binary(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(read_binary(&bytes).is_err());
        let mut bytes = write_binary(&sample()).to_vec();
        bytes[4] = 99;
        assert!(read_binary(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = write_binary(&sample());
        for cut in [0, 3, 10, 30, bytes.len() - 1] {
            assert!(
                read_binary(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_columns() {
        let g = sample();
        let mut bytes = write_binary(&g).to_vec();
        // Column array starts after header(8)+dims(16)+offsets(6*8)=72.
        bytes[72..76].copy_from_slice(&100u32.to_le_bytes());
        assert!(read_binary(&bytes).is_err());
    }
}
