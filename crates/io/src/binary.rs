//! Compact binary CSR snapshots and the compressed-adjacency container.
//!
//! Two small, versioned, explicitly little-endian codecs built on `bytes`
//! (no serialization-format crate is in the approved dependency set, so
//! the layouts are spelled out by hand and checked by round-trip and
//! corruption tests). Both carry a total-length field in the header and
//! an FNV-1a checksum footer, so a truncated or foreign file fails with a
//! typed [`IoError`] before any offset is trusted — the property the
//! mmap loader ([`crate::mmap`]) depends on.
//!
//! Raw CSR snapshot (`ESNT`, version 2):
//!
//! ```text
//! magic    "ESNT"   4 bytes
//! version  u32      currently 2
//! total    u64      whole-file length, footer included
//! n        u64      vertices
//! m        u64      edges
//! offsets  (n+1)×u64
//! cols     m×u32
//! weights  m×f32
//! checksum u64      FNV-1a over everything above
//! ```
//!
//! Version 1 (no `total`, no checksum) is still read for old snapshots.
//!
//! Compressed container (`ESNC`, version 1) — see [`crate::mmap`] for the
//! section layout and the alignment rules the writer maintains.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use essentials_graph::{Ccsr, CompressedGraph, Csr, GraphBase};

use crate::mmap::{fnv1a, ContainerWeight, CCSR_MAGIC, CCSR_VERSION, FLAG_HAS_IN, FLAG_WEIGHTED};
use crate::IoError;

const MAGIC: &[u8; 4] = b"ESNT";
const VERSION: u32 = 2;

/// Serializes a CSR to bytes (current version, checksummed).
pub fn write_binary(g: &Csr<f32>) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let total = 4 + 4 + 8 + 16 + (n + 1) * 8 + m * 8 + 8;
    let mut buf = BytesMut::with_capacity(total);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(total as u64);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for &o in g.row_offsets() {
        buf.put_u64_le(o as u64);
    }
    for &c in g.column_indices() {
        buf.put_u32_le(c);
    }
    for &w in g.values() {
        buf.put_f32_le(w);
    }
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    buf.freeze()
}

/// Deserializes a CSR from bytes, validating framing (magic, version,
/// length, checksum) before structure (offsets, columns, weights).
pub fn read_binary(data: &[u8]) -> Result<Csr<f32>, IoError> {
    let full: &[u8] = data;
    let full_len = data.len();
    let mut data = data;
    // Byte offsets in errors play the role line numbers play in the text
    // readers: they say where the read stopped, not just that it did.
    let need = |data: &[u8], n: usize, what: &'static str| -> Result<(), IoError> {
        if data.remaining() < n {
            Err(IoError::Truncated {
                what,
                offset: full_len - data.remaining(),
            })
        } else {
            Ok(())
        }
    };
    need(data, 8, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Foreign {
            expected: "ESNT snapshot",
            found: magic,
        });
    }
    let version = data.get_u32_le();
    if version != VERSION && version != 1 {
        return Err(IoError::UnsupportedVersion(version));
    }
    if version == VERSION {
        need(data, 8, "length field")?;
        let total = data.get_u64_le() as usize;
        if total > full_len {
            return Err(IoError::Truncated {
                what: "snapshot body",
                offset: full_len,
            });
        }
        if total < full_len {
            return Err(IoError::Parse(format!(
                "trailing bytes: header says {total}, file has {full_len}"
            )));
        }
        // Footer checksum covers everything before it, header included.
        // full_len >= 16 here (magic + version + length field consumed).
        let footer_at = full_len - 8;
        let footer = u64::from_le_bytes(
            <[u8; 8]>::try_from(&full[footer_at..])
                .map_err(|_| IoError::Parse("footer slice".into()))?,
        );
        let actual = fnv1a(&full[..footer_at]);
        if actual != footer {
            return Err(IoError::Checksum {
                expected: footer,
                actual,
            });
        }
    }
    need(data, 16, "dimensions")?;
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    // Checked sizes: corrupted dimensions must error, not overflow or OOM.
    let offsets_bytes = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(|| IoError::Parse("vertex count overflows".into()))?;
    need(data, offsets_bytes, "offsets")?;
    let offsets: Vec<usize> = (0..=n).map(|_| data.get_u64_le() as usize).collect();
    let col_bytes = m
        .checked_mul(4)
        .ok_or_else(|| IoError::Parse("edge count overflows".into()))?;
    need(data, col_bytes, "columns")?;
    let cols: Vec<u32> = (0..m).map(|_| data.get_u32_le()).collect();
    need(data, col_bytes, "weights")?;
    let vals: Vec<f32> = (0..m).map(|_| data.get_f32_le()).collect();
    if offsets.last() != Some(&m) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(IoError::Parse("inconsistent offsets".into()));
    }
    if cols.iter().any(|&c| c as usize >= n) {
        return Err(IoError::Parse("column index out of range".into()));
    }
    if vals.iter().any(|v| v.is_nan()) {
        return Err(IoError::Parse("NaN weight in snapshot".into()));
    }
    Ok(Csr::from_raw(offsets, cols, vals))
}

// ---------------------------------------------------------------------------
// Compressed container writer (the reader lives in `crate::mmap`, where it
// shares the section-layout math with the zero-copy mapped path).
// ---------------------------------------------------------------------------

/// Pads `buf` with zero bytes to the next 8-byte boundary, so every
/// section the mmap loader casts to `&[u64]` starts aligned.
fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn put_direction<W: ContainerWeight>(buf: &mut Vec<u8>, c: &Ccsr<W>) {
    let (edge_offsets, byte_offsets, bytes, values) = c.sections();
    for &o in edge_offsets {
        buf.put_u64_le(o);
    }
    for &o in byte_offsets {
        buf.put_u64_le(o);
    }
    buf.put_slice(bytes);
    pad8(buf);
    if W::WEIGHTED {
        W::put_values(buf, values);
        pad8(buf);
    }
}

/// Serializes a compressed graph to the `ESNC` container format.
///
/// The result is what [`crate::mmap::CompressedContainer`] opens: write it
/// to disk with `std::fs::write` and map it back without materializing
/// raw CSR. Unweighted graphs (`W = ()`) carry no value section at all.
pub fn write_compressed_binary<W: ContainerWeight>(g: &CompressedGraph<W>) -> Bytes {
    let out = g.out_ccsr();
    let n = out.num_vertices() as u64;
    let m = out.num_edges() as u64;
    let mut flags = 0u32;
    if g.in_ccsr().is_some() {
        flags |= FLAG_HAS_IN;
    }
    if W::WEIGHTED {
        flags |= FLAG_WEIGHTED;
    }
    let mut buf: Vec<u8> = Vec::new();
    buf.put_slice(CCSR_MAGIC);
    buf.put_u32_le(CCSR_VERSION);
    buf.put_u32_le(flags);
    buf.put_u32_le(0); // reserved; keeps n at an 8-aligned offset
    buf.put_u64_le(n);
    buf.put_u64_le(m);
    // Placeholder for the total length; patched once sections are laid out.
    let total_at = buf.len();
    buf.put_u64_le(0);
    put_direction(&mut buf, out);
    if let Some(in_) = g.in_ccsr() {
        put_direction(&mut buf, in_);
    }
    let total = (buf.len() + 8) as u64;
    buf[total_at..total_at + 8].copy_from_slice(&total.to_le_bytes());
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    Bytes::from(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Coo;

    fn sample() -> Csr<f32> {
        Csr::from_coo(&Coo::from_edges(
            5,
            [(0, 1, 1.0f32), (0, 4, 2.0), (3, 2, 0.5), (4, 0, 9.0)],
        ))
    }

    #[test]
    fn round_trip_is_exact() {
        let g = sample();
        let bytes = write_binary(&g);
        let back = read_binary(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::<f32>::empty(0);
        assert_eq!(read_binary(&write_binary(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = write_binary(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(read_binary(&bytes), Err(IoError::Foreign { .. })));
        let mut bytes = write_binary(&sample()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            read_binary(&bytes),
            Err(IoError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere_with_typed_error() {
        let bytes = write_binary(&sample());
        for cut in [0, 3, 10, 30, bytes.len() - 1] {
            assert!(
                matches!(read_binary(&bytes[..cut]), Err(IoError::Truncated { .. })),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn rejects_single_bit_corruption_via_checksum() {
        let g = sample();
        let clean = write_binary(&g).to_vec();
        // Flip one bit in the middle of the column section; the length is
        // untouched, so only the checksum can catch it.
        let mut bytes = clean.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(read_binary(&bytes), Err(IoError::Checksum { .. })));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = write_binary(&sample()).to_vec();
        bytes.extend_from_slice(b"junk");
        assert!(read_binary(&bytes).is_err());
    }

    #[test]
    fn rejects_out_of_range_columns() {
        let g = sample();
        let bytes = write_binary(&g).to_vec();
        // Column section starts after magic(4)+version(4)+total(8)+
        // dims(16)+offsets(6*8) = 80; patch a column and re-checksum so
        // the structural check, not the checksum, is what fires.
        let mut bytes = bytes;
        bytes[80..84].copy_from_slice(&100u32.to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(read_binary(&bytes), Err(IoError::Parse(_))));
    }

    #[test]
    fn legacy_v1_snapshots_still_read() {
        // Hand-roll the version-1 layout (no length field, no checksum).
        let g = sample();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(g.num_vertices() as u64);
        buf.put_u64_le(g.num_edges() as u64);
        for &o in g.row_offsets() {
            buf.put_u64_le(o as u64);
        }
        for &c in g.column_indices() {
            buf.put_u32_le(c);
        }
        for &w in g.values() {
            buf.put_f32_le(w);
        }
        assert_eq!(read_binary(&buf).unwrap(), g);
    }
}
