//! mmap-backed loading of compressed-adjacency containers.
//!
//! The `ESNC` container holds the sections of a [`Ccsr`] (per direction:
//! edge offsets, byte offsets, coded byte stream, optional `f32` weights)
//! at 8-byte-aligned offsets, so a read-only memory map of the file can be
//! reinterpreted as the `&[u64]`/`&[u8]` slices a [`CcsrView`] borrows —
//! no materialization, no copy, and a scale-26 graph starts traversing as
//! fast as the page cache can fault. Layout:
//!
//! ```text
//! magic    "ESNC"   4 bytes
//! version  u32      currently 1
//! flags    u32      bit 0: has in-direction; bit 1: f32 weights
//! reserved u32      zero
//! n        u64      vertices
//! m        u64      edges
//! total    u64      whole-file length, footer included
//! per direction (out, then in when flagged):
//!   edge_offsets (n+1)×u64
//!   byte_offsets (n+1)×u64
//!   bytes        byte_offsets[n] bytes, zero-padded to 8
//!   values       m×f32, zero-padded to 8 (only when flagged)
//! checksum u64      FNV-1a over everything above
//! ```
//!
//! Validation order is framing first (magic, version, length, checksum),
//! then structure ([`CcsrView::try_new`] re-checks every invariant the
//! decoder indexes by), so a truncated or foreign file yields a typed
//! [`IoError`] before any offset is trusted. The zero-copy path is gated
//! on `unix` + little-endian targets; everywhere else (and in
//! [`CompressedContainer::from_bytes`]) the sections are decoded into
//! owned vectors with explicit `from_le_bytes`, which is also the
//! endian-portable fallback.

use std::ops::Range;
use std::path::Path;

use bytes::BufMut;

use essentials_graph::{CcsrView, CompressedGraphView, EdgeValue};

use crate::IoError;

pub(crate) const CCSR_MAGIC: &[u8; 4] = b"ESNC";
pub(crate) const CCSR_VERSION: u32 = 1;
pub(crate) const FLAG_HAS_IN: u32 = 1;
pub(crate) const FLAG_WEIGHTED: u32 = 2;

const HEADER_LEN: usize = 40;
const FOOTER_LEN: usize = 8;

/// FNV-1a over `bytes`; the footer checksum of both binary formats.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for () {}
    impl Sealed for f32 {}
}

/// Weight types the container can carry: `()` (no value section) and
/// `f32` (the weight type of every weighted algorithm in the repo).
/// Sealed — the on-disk format enumerates its cases.
pub trait ContainerWeight: EdgeValue + sealed::Sealed {
    /// Whether a value section is present for this weight type.
    const WEIGHTED: bool;
    /// Appends the value section, little-endian.
    fn put_values(buf: &mut Vec<u8>, values: &[Self]);
    /// Decodes the value section into an owned vector (endian-portable).
    fn read_values(bytes: &[u8]) -> Vec<Self>;
    /// Reinterprets a mapped value section in place. Callers guarantee
    /// the slice is 4-byte aligned and its length a multiple of the
    /// element size; only meaningful on little-endian targets.
    fn cast_values(bytes: &[u8]) -> &[Self];
    /// Value-level validation (e.g. the NaN rejection the raw snapshot
    /// reader performs).
    fn validate_values(values: &[Self]) -> Result<(), IoError>;
}

impl ContainerWeight for () {
    const WEIGHTED: bool = false;
    fn put_values(_buf: &mut Vec<u8>, _values: &[Self]) {}
    fn read_values(_bytes: &[u8]) -> Vec<Self> {
        Vec::new()
    }
    fn cast_values(_bytes: &[u8]) -> &[Self] {
        &[]
    }
    fn validate_values(_values: &[Self]) -> Result<(), IoError> {
        Ok(())
    }
}

impl ContainerWeight for f32 {
    const WEIGHTED: bool = true;
    fn put_values(buf: &mut Vec<u8>, values: &[Self]) {
        for &v in values {
            buf.put_f32_le(v);
        }
    }
    fn read_values(bytes: &[u8]) -> Vec<Self> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
    fn cast_values(bytes: &[u8]) -> &[Self] {
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
        debug_assert_eq!(bytes.len() % 4, 0);
        // SAFETY: the layout parser hands in a section that starts at an
        // 8-aligned offset of a page-aligned mapping and whose length is
        // 4·m; every f32 bit pattern is a valid value (NaNs are rejected
        // separately by `validate_values`).
        unsafe { core::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
    }
    fn validate_values(values: &[Self]) -> Result<(), IoError> {
        if values.iter().any(|v| v.is_nan()) {
            return Err(IoError::Parse("NaN weight in container".into()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Layout parsing (shared by the mapped and owned paths)
// ---------------------------------------------------------------------------

struct Header {
    flags: u32,
    n: usize,
    m: usize,
}

/// Byte ranges of one direction's sections. `bytes` is the exact coded
/// length; the next section starts at its 8-padded end.
struct DirRanges {
    edge_offsets: Range<usize>,
    byte_offsets: Range<usize>,
    bytes: Range<usize>,
    values: Range<usize>,
}

fn le_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

fn le_u64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

fn pad8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

/// Validates framing (magic, version, length, checksum) and returns the
/// header. Everything after this reads checksum-verified bytes.
fn parse_frame(data: &[u8], weighted: bool) -> Result<Header, IoError> {
    if data.len() < HEADER_LEN + FOOTER_LEN {
        return Err(IoError::Truncated {
            what: "container header",
            offset: data.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&data[..4]);
    if &magic != CCSR_MAGIC {
        return Err(IoError::Foreign {
            expected: "ESNC container",
            found: magic,
        });
    }
    let version = le_u32(data, 4);
    if version != CCSR_VERSION {
        return Err(IoError::UnsupportedVersion(version));
    }
    let flags = le_u32(data, 8);
    let n = le_u64(data, 16) as usize;
    let m = le_u64(data, 24) as usize;
    let total = le_u64(data, 32) as usize;
    if total > data.len() {
        return Err(IoError::Truncated {
            what: "container body",
            offset: data.len(),
        });
    }
    if total < data.len() {
        return Err(IoError::Parse(format!(
            "trailing bytes: header says {total}, file has {}",
            data.len()
        )));
    }
    let footer_at = data.len() - FOOTER_LEN;
    let footer = le_u64(data, footer_at);
    let actual = fnv1a(&data[..footer_at]);
    if actual != footer {
        return Err(IoError::Checksum {
            expected: footer,
            actual,
        });
    }
    if (flags & FLAG_WEIGHTED != 0) != weighted {
        return Err(IoError::Parse(format!(
            "weight mismatch: container {} weighted, caller expects the opposite",
            if flags & FLAG_WEIGHTED != 0 {
                "is"
            } else {
                "is not"
            },
        )));
    }
    Ok(Header { flags, n, m })
}

/// Walks one direction's sections starting at `pos` (8-aligned), bounds-
/// checking each against `body_end`. Returns the ranges and the position
/// after the direction.
fn parse_dir(
    data: &[u8],
    head: &Header,
    weighted: bool,
    mut pos: usize,
    body_end: usize,
) -> Result<(DirRanges, usize), IoError> {
    let offsets_len = head
        .n
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .ok_or_else(|| IoError::Parse("vertex count overflows".into()))?;
    let take = |pos: &mut usize, len: usize, what: &'static str| -> Result<Range<usize>, IoError> {
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= body_end)
            .ok_or(IoError::Truncated {
                what,
                offset: body_end,
            })?;
        let r = *pos..end;
        *pos = pad8(end);
        Ok(r)
    };
    let edge_offsets = take(&mut pos, offsets_len, "edge offsets")?;
    let byte_offsets = take(&mut pos, offsets_len, "byte offsets")?;
    // The coded-stream length is the terminal byte offset; the section was
    // just bounds-checked, so this read is in verified territory.
    let coded_len = le_u64(data, byte_offsets.end - 8) as usize;
    let bytes = take(&mut pos, coded_len, "coded neighbor stream")?;
    let values = if weighted {
        let len = head
            .m
            .checked_mul(4)
            .ok_or_else(|| IoError::Parse("edge count overflows".into()))?;
        take(&mut pos, len, "edge weights")?
    } else {
        pos..pos
    };
    Ok((
        DirRanges {
            edge_offsets,
            byte_offsets,
            bytes,
            values,
        },
        pos,
    ))
}

fn parse_layout(
    data: &[u8],
    head: &Header,
    weighted: bool,
) -> Result<(DirRanges, Option<DirRanges>), IoError> {
    let body_end = data.len() - FOOTER_LEN;
    let (out, pos) = parse_dir(data, head, weighted, HEADER_LEN, body_end)?;
    let (in_, pos) = if head.flags & FLAG_HAS_IN != 0 {
        let (d, p) = parse_dir(data, head, weighted, pos, body_end)?;
        (Some(d), p)
    } else {
        (None, pos)
    };
    if pos != body_end {
        return Err(IoError::Parse(format!(
            "section layout ends at byte {pos}, footer starts at {body_end}"
        )));
    }
    Ok((out, in_))
}

// ---------------------------------------------------------------------------
// Backings
// ---------------------------------------------------------------------------

/// One direction's sections decoded into owned storage.
struct OwnedDir<W> {
    edge_offsets: Vec<u64>,
    byte_offsets: Vec<u64>,
    bytes: Vec<u8>,
    values: Vec<W>,
}

fn read_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect()
}

fn copy_dir<W: ContainerWeight>(data: &[u8], r: &DirRanges) -> OwnedDir<W> {
    OwnedDir {
        edge_offsets: read_u64s(&data[r.edge_offsets.clone()]),
        byte_offsets: read_u64s(&data[r.byte_offsets.clone()]),
        bytes: data[r.bytes.clone()].to_vec(),
        values: W::read_values(&data[r.values.clone()]),
    }
}

#[cfg(all(unix, target_endian = "little"))]
mod map_region {
    use std::os::unix::io::AsRawFd;

    use crate::IoError;

    use core::ffi::{c_int, c_void};

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only, private memory mapping of a whole file.
    pub(super) struct MapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — no thread can write
    // through it, so sharing the region (and slices derived from it)
    // across threads is sound. Concurrent truncation of the underlying
    // file by another process can still SIGBUS a load (the usual mmap
    // caveat, documented on `CompressedContainer::open`), but that is not
    // a data race.
    unsafe impl Send for MapRegion {}
    // SAFETY: as above — the region is never written through.
    unsafe impl Sync for MapRegion {}

    impl MapRegion {
        pub(super) fn map(file: &std::fs::File, len: usize) -> Result<Self, IoError> {
            // SAFETY: addr = null lets the kernel choose the placement;
            // len > 0 is guaranteed by the caller's header-size check; the
            // fd is open for reading and outlives the call (the mapping
            // itself keeps the pages alive after the fd closes).
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(IoError::Io(std::io::Error::last_os_error()));
            }
            Ok(MapRegion { ptr, len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is exactly the region mmap returned,
            // valid for reads until munmap in Drop; u8 has no alignment
            // or validity requirements.
            unsafe { core::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MapRegion {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact pair mmap returned, unmapped
            // exactly once here; no slice borrowed from `bytes` can
            // outlive `self`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Backing<W> {
    Owned {
        out: OwnedDir<W>,
        in_: Option<OwnedDir<W>>,
    },
    #[cfg(all(unix, target_endian = "little"))]
    Mapped {
        region: map_region::MapRegion,
        out: DirRanges,
        in_: Option<DirRanges>,
    },
}

#[cfg(all(unix, target_endian = "little"))]
fn u64_slice<'a>(base: &'a [u8], r: &Range<usize>) -> &'a [u64] {
    debug_assert_eq!(r.start % 8, 0);
    debug_assert_eq!((r.end - r.start) % 8, 0);
    // SAFETY: every section starts at an 8-aligned offset of a
    // page-aligned mapping (maintained by the writer's padding and
    // checked by the layout parser), the range is in bounds of `base`,
    // and u64 has no invalid bit patterns. Little-endian reinterpretation
    // is exact on the targets this path compiles for.
    unsafe {
        core::slice::from_raw_parts(
            base[r.start..r.end].as_ptr().cast::<u64>(),
            (r.end - r.start) / 8,
        )
    }
}

// ---------------------------------------------------------------------------
// The container
// ---------------------------------------------------------------------------

/// An opened `ESNC` compressed-graph container.
///
/// On unix little-endian targets [`CompressedContainer::open`] memory-maps
/// the file read-only and [`CompressedContainer::view`] borrows the
/// mapped sections directly — opening a scale-26 container is O(validate),
/// not O(copy). Elsewhere (and via [`CompressedContainer::from_bytes`])
/// the sections are decoded into owned vectors.
///
/// The usual mmap caveat applies: the file must not be truncated or
/// rewritten by another process while the container is open; the
/// checksum is verified at open time, not per access.
pub struct CompressedContainer<W: ContainerWeight> {
    n: usize,
    m: usize,
    backing: Backing<W>,
}

impl<W: ContainerWeight> CompressedContainer<W> {
    /// Opens a container file, mapping it when the platform allows.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let path = path.as_ref();
        #[cfg(all(unix, target_endian = "little"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len < HEADER_LEN + FOOTER_LEN {
                return Err(IoError::Truncated {
                    what: "container header",
                    offset: len,
                });
            }
            let region = map_region::MapRegion::map(&file, len)?;
            let head = parse_frame(region.bytes(), W::WEIGHTED)?;
            let (out, in_) = parse_layout(region.bytes(), &head, W::WEIGHTED)?;
            let container = CompressedContainer {
                n: head.n,
                m: head.m,
                backing: Backing::Mapped { region, out, in_ },
            };
            // Structural validation once at open; `view` repeats it only
            // because the borrow cannot be stored self-referentially.
            container.view()?;
            Ok(container)
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            let data = std::fs::read(path)?;
            Self::from_bytes(&data)
        }
    }

    /// Decodes a container from an in-memory byte slice into owned
    /// sections (no mapping; always available).
    pub fn from_bytes(data: &[u8]) -> Result<Self, IoError> {
        let head = parse_frame(data, W::WEIGHTED)?;
        let (out, in_) = parse_layout(data, &head, W::WEIGHTED)?;
        let container = CompressedContainer {
            n: head.n,
            m: head.m,
            backing: Backing::Owned {
                out: copy_dir(data, &out),
                in_: in_.as_ref().map(|r| copy_dir(data, r)),
            },
        };
        container.view()?;
        Ok(container)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges (per direction).
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// True when the backing is a zero-copy memory map.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Owned { .. } => false,
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { .. } => true,
        }
    }

    /// Borrows the container as the view every decode-aware operator and
    /// algorithm entry point accepts. Re-runs the cheap structural
    /// validation ([`CcsrView::try_new`]); `open`/`from_bytes` already
    /// proved it passes, so failures here mean the backing was modified
    /// externally.
    pub fn view(&self) -> Result<CompressedGraphView<'_, W>, IoError> {
        let (out, in_) = match &self.backing {
            Backing::Owned { out, in_ } => {
                let ov = self.owned_view(out)?;
                let iv = match in_ {
                    Some(d) => Some(self.owned_view(d)?),
                    None => None,
                };
                (ov, iv)
            }
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { region, out, in_ } => {
                let base = region.bytes();
                let ov = self.mapped_view(base, out)?;
                let iv = match in_ {
                    Some(r) => Some(self.mapped_view(base, r)?),
                    None => None,
                };
                (ov, iv)
            }
        };
        CompressedGraphView::try_new(out, in_).map_err(IoError::Parse)
    }

    fn owned_view<'a>(&self, d: &'a OwnedDir<W>) -> Result<CcsrView<'a, W>, IoError> {
        W::validate_values(&d.values)?;
        CcsrView::try_new(
            self.n,
            self.m,
            &d.edge_offsets,
            &d.byte_offsets,
            &d.bytes,
            &d.values,
        )
        .map_err(IoError::Parse)
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn mapped_view<'a>(&self, base: &'a [u8], r: &DirRanges) -> Result<CcsrView<'a, W>, IoError> {
        let values = W::cast_values(&base[r.values.clone()]);
        W::validate_values(values)?;
        CcsrView::try_new(
            self.n,
            self.m,
            u64_slice(base, &r.edge_offsets),
            u64_slice(base, &r.byte_offsets),
            &base[r.bytes.clone()],
            values,
        )
        .map_err(IoError::Parse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::write_compressed_binary;
    use essentials_graph::{CompressedGraph, Coo, DecodeInNeighbors, DecodeOutNeighbors, Graph};
    use essentials_parallel::ThreadPool;

    fn sample() -> Graph<f32> {
        Graph::from_coo(&Coo::from_edges(
            6,
            [
                (0, 1, 1.0f32),
                (0, 4, 2.0),
                (1, 2, 0.5),
                (2, 0, 0.25),
                (3, 2, 0.5),
                (4, 0, 9.0),
                (5, 5, 1.5),
            ],
        ))
        .with_csc()
    }

    fn adjacency<G: DecodeOutNeighbors>(g: &G) -> Vec<Vec<u32>> {
        (0..g.num_vertices() as u32)
            .map(|v| g.out_decoder(v).collect())
            .collect()
    }

    #[test]
    fn weighted_container_round_trips_owned() {
        let pool = ThreadPool::new(2);
        let g = sample();
        let cg = CompressedGraph::from_graph(&pool, &g);
        let bytes = write_compressed_binary(&cg);
        let back = CompressedContainer::<f32>::from_bytes(&bytes).unwrap();
        assert_eq!(back.num_vertices(), 6);
        let view = back.view().unwrap();
        assert_eq!(adjacency(&view), adjacency(&cg.view()));
        for v in 0..6u32 {
            let a: Vec<u32> = view.in_decoder(v).collect();
            let b: Vec<u32> = cg.view().in_decoder(v).collect();
            assert_eq!(a, b, "in-neighbors of {v}");
        }
    }

    #[test]
    fn unweighted_container_has_no_value_section() {
        let pool = ThreadPool::new(2);
        let g: Graph<()> = Graph::from_coo(&Coo::from_edges(
            4,
            [(0, 1, ()), (1, 2, ()), (2, 3, ()), (3, 0, ())],
        ));
        let cg = CompressedGraph::from_graph(&pool, &g);
        let bytes = write_compressed_binary(&cg);
        let back = CompressedContainer::<()>::from_bytes(&bytes).unwrap();
        assert_eq!(adjacency(&back.view().unwrap()), adjacency(&cg.view()));
        // Opening with the wrong weight expectation is a typed refusal.
        assert!(CompressedContainer::<f32>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn container_rejects_framing_damage() {
        let pool = ThreadPool::new(2);
        let cg = CompressedGraph::from_graph(&pool, &sample());
        let clean = write_compressed_binary(&cg).to_vec();

        let mut foreign = clean.clone();
        foreign[0] = b'Z';
        assert!(matches!(
            CompressedContainer::<f32>::from_bytes(&foreign),
            Err(IoError::Foreign { .. })
        ));

        let mut versioned = clean.clone();
        versioned[4] = 42;
        assert!(matches!(
            CompressedContainer::<f32>::from_bytes(&versioned),
            Err(IoError::UnsupportedVersion(42))
        ));

        for cut in [0, HEADER_LEN, clean.len() / 2, clean.len() - 1] {
            assert!(
                matches!(
                    CompressedContainer::<f32>::from_bytes(&clean[..cut]),
                    Err(IoError::Truncated { .. })
                ),
                "cut at {cut} must be a typed truncation"
            );
        }

        let mut flipped = clean.clone();
        let mid = clean.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            CompressedContainer::<f32>::from_bytes(&flipped),
            Err(IoError::Checksum { .. })
        ));

        let mut trailing = clean.clone();
        trailing.extend_from_slice(b"oops");
        assert!(CompressedContainer::<f32>::from_bytes(&trailing).is_err());
    }

    #[test]
    fn open_maps_and_round_trips_through_a_file() {
        let pool = ThreadPool::new(2);
        let g = sample();
        let cg = CompressedGraph::from_graph(&pool, &g);
        let bytes = write_compressed_binary(&cg);
        let dir = std::env::temp_dir().join(format!("essentials-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.esnc");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = CompressedContainer::<f32>::open(&path).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            assert!(
                mapped.is_mapped(),
                "unix little-endian must take the mmap path"
            );
        }
        assert_eq!(adjacency(&mapped.view().unwrap()), adjacency(&cg.view()));
        drop(mapped);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
