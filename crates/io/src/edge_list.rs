//! Plain-text edge lists: `src dst [weight]` per line, `#` comments —
//! the SNAP dataset convention. Vertex count is `max id + 1` unless a
//! larger hint is given.

use std::io::{BufRead, Write};

use essentials_graph::{Coo, VertexId};

use crate::IoError;

/// Reads an edge list. `min_vertices` lets callers reserve isolated
/// trailing vertices that no edge mentions.
pub fn read_edge_list<R: BufRead>(reader: R, min_vertices: usize) -> Result<Coo<f32>, IoError> {
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let src: usize = parse(it.next(), lineno, t)?;
        let dst: usize = parse(it.next(), lineno, t)?;
        let w: f32 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| IoError::Parse(format!("line {}: bad weight: {e}", lineno + 1)))?,
            None => 1.0,
        };
        if w.is_nan() {
            return Err(IoError::Parse(format!("line {}: NaN weight", lineno + 1)));
        }
        max_id = max_id.max(src).max(dst);
        edges.push((src as VertexId, dst as VertexId, w));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_id + 1).max(min_vertices)
    };
    Ok(Coo::from_edges(n, edges))
}

fn parse(tok: Option<&str>, lineno: usize, line: &str) -> Result<usize, IoError> {
    tok.ok_or_else(|| IoError::Parse(format!("line {}: truncated: {line}", lineno + 1)))?
        .parse()
        .map_err(|e| IoError::Parse(format!("line {}: bad id: {e}", lineno + 1)))
}

/// Writes `src dst weight` lines.
pub fn write_edge_list<W: Write>(mut w: W, coo: &Coo<f32>) -> std::io::Result<()> {
    writeln!(
        w,
        "# essentials-rs edge list: {} vertices",
        coo.num_vertices()
    )?;
    for (s, d, v) in coo.iter() {
        writeln!(w, "{s} {d} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let coo = Coo::from_edges(3, [(0, 1, 2.0f32), (1, 2, 1.0)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &coo).unwrap();
        let back = read_edge_list(&buf[..], 0).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn default_weight_is_one_and_comments_skipped() {
        let input = "# snap style\n0 1\n2 0 3.5\n";
        let coo = read_edge_list(input.as_bytes(), 0).unwrap();
        let edges: Vec<_> = coo.iter().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (2, 0, 3.5)]);
        assert_eq!(coo.num_vertices(), 3);
    }

    #[test]
    fn min_vertices_hint_reserves_isolated_tail() {
        let coo = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(coo.num_vertices(), 10);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let coo = read_edge_list("# nothing\n".as_bytes(), 0).unwrap();
        assert_eq!(coo.num_vertices(), 0);
        assert_eq!(coo.num_edges(), 0);
    }

    #[test]
    fn bad_lines_error_with_line_numbers() {
        let err = read_edge_list("0 1\nx y\n".as_bytes(), 0).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
